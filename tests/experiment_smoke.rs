//! Smoke tests of every experiment's underlying path at reduced scale —
//! guarantees the bench binaries cannot bit-rot silently.

use summit_dlv3_repro::mpi_profiles::{allreduce_sweep, size_ladder};
use summit_dlv3_repro::prelude::*;

#[test]
fn t1_path_single_gpu_numbers() {
    let gpu = GpuModel::v100();
    let dl = gpu.throughput(&deeplab_paper(), 8);
    let rn = gpu.throughput(&resnet50(224), 32);
    assert!((6.0..7.4).contains(&dl));
    assert!((270.0..330.0).contains(&rn));
}

#[test]
fn f2_path_osu_sweep() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(12));
    let sizes = size_ladder(1 << 12, 1 << 22);
    for backend in Backend::all() {
        let pts = allreduce_sweep(&backend.profile(), &machine, 12, &sizes);
        assert_eq!(pts.len(), sizes.len());
        assert!(pts.iter().all(|p| p.latency_us > 0.0));
        assert!(pts.last().unwrap().latency_us > pts[0].latency_us);
    }
}

#[test]
fn f4_f5_paths_knob_sweeps_have_effects() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    let run = |config: HorovodConfig| {
        StepSim::new(&machine, MpiProfile::spectrum_default(), config, &model, &gpu, 1, 48, 2020)
            .simulate_training(2)
            .throughput
    };
    let fusion_off = run(HorovodConfig::default().with_fusion(0));
    let fusion_default = run(HorovodConfig::default());
    assert!(fusion_default > fusion_off, "fusion must help the default backend");
    let slow_cycle = run(HorovodConfig::default().with_cycle(50e-3));
    assert!(fusion_default > slow_cycle, "50 ms cycles must hurt");
}

#[test]
fn t7_path_autotuner_improves_default() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    let objective = Objective::new(&machine, &model, &gpu, 1, 48, 2, 2020);
    let report = coordinate_descent(&KnobSpace::small(), &objective, Candidate::paper_default(), 2);
    assert!(report.best.throughput >= report.trajectory[0].throughput);
    assert_eq!(report.best.candidate.backend, Backend::Mvapich2Gdr);
}

#[test]
fn a10_path_overlap_accounting_is_consistent() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(24));
    let model = deeplab_paper();
    let sim = StepSim::new(
        &machine,
        MpiProfile::mvapich2_gdr(),
        HorovodConfig::default(),
        &model,
        &GpuModel::v100(),
        1,
        24,
        2020,
    );
    let b = sim.simulate_step(0, None);
    assert!(b.step_time >= b.compute_time);
    assert!((b.step_time - b.compute_time - b.exposed_comm).abs() < 1e-12);
    assert!(b.comm_busy > 0.0);
    // Overlap means the step is shorter than compute + serialized comm.
    assert!(b.step_time < b.compute_time + b.comm_busy);
}

#[test]
fn timeline_trace_path() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(12));
    let model = deeplab_paper();
    let sim = StepSim::new(
        &machine,
        MpiProfile::nccl(),
        HorovodConfig::default(),
        &model,
        &GpuModel::v100(),
        1,
        12,
        2020,
    );
    let mut tl = Timeline::default();
    let step = sim.simulate_step(0, Some(&mut tl));
    assert!(!tl.spans.is_empty());
    let json = tl.to_chrome_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    // Spans must fit within the step.
    for s in &tl.spans {
        assert!(s.end <= step.step_time + 1e-9, "span past step end: {s:?}");
    }
}

#[test]
fn mixed_eager_and_rendezvous_in_one_step() {
    // Regression guard for the executor's matching: a step where one op
    // is an eager send and another is a rendezvous recv must complete
    // with the eager op unblocking immediately.
    use summit_dlv3_repro::summit_sim::{Executor, Op, Program};
    let machine = Machine::new(MachineConfig::summit(1));
    let exec = Executor::dense(&machine, 6);
    let mut p = vec![Program::new(); 6];
    p[0].step(vec![
        Op::Send {
            peer: 1,
            bytes: 512,
            tag: 0,
            path: DataPath::Gdr,
            overhead: SimTime::ZERO,
            rate_cap: f64::INFINITY,
            eager: true,
        },
        Op::recv(2, 1),
    ]);
    p[1].step(vec![Op::recv(0, 0)]);
    p[2].step(vec![Op::send(0, 2048, 1, DataPath::Gdr, SimTime::ZERO)]);
    let rep = exec.run(p);
    assert!(rep.makespan > SimTime::ZERO);
    assert!(rep.rank_finish[1] > SimTime::ZERO);
}

#[test]
fn f14_path_input_pipeline_composes_with_step_sim() {
    use summit_dlv3_repro::trainer::InputPipeline;
    let machine = Machine::new(MachineConfig::summit_for_gpus(12));
    let model = deeplab_paper();
    let r = StepSim::new(
        &machine,
        MpiProfile::mvapich2_gdr(),
        HorovodConfig::default(),
        &model,
        &GpuModel::v100(),
        2,
        12,
        2020,
    )
    .simulate_training(2);
    let pipe = InputPipeline::summit_voc();
    let eff = pipe.effective_step_time(r.mean_step_time, 12);
    assert!(eff >= r.mean_step_time);
    let mut starved = pipe;
    starved.cpu_workers = 1;
    assert!(starved.effective_step_time(r.mean_step_time, 12) > eff);
}
