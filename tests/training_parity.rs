//! Integration of the real training path: the claim-C6 parity property
//! (distributed ≡ serial) across allreduce algorithms and worker counts,
//! end to end through data generation, the conv net, the optimizer and
//! the threaded collectives.

use summit_dlv3_repro::collectives::{Algorithm, CodecKind};
use summit_dlv3_repro::trainer::real::{train, DataConfig, NetConfig, TrainConfig};

fn cfg(workers: usize, batch_per_worker: usize, steps: usize) -> TrainConfig {
    let data = DataConfig { height: 12, width: 12, ..DataConfig::default() };
    let net =
        NetConfig { height: 12, width: 12, cin: 3, hidden1: 5, hidden2: 8, n_classes: 4, k: 3 };
    TrainConfig {
        data,
        net,
        workers,
        batch_per_worker,
        steps,
        base_lr: 0.4,
        lr_scale: 1.0,
        warmup_steps: 5,
        momentum: 0.9,
        weight_decay: 0.0,
        accumulation_steps: 1,
        algo: Algorithm::Ring,
        fp16_gradients: false,
        codec: CodecKind::None,
        error_feedback: false,
        augment: false,
        eval_every: 0,
        eval_samples: 24,
        seed: 2020,
        faults: None,
        checkpoint: None,
        trace: None,
        pipeline: false,
    }
}

#[test]
fn learns_the_task() {
    let r = train(&cfg(2, 3, 60));
    assert!(r.final_miou > 0.6, "mIoU after 60 steps = {:.3}", r.final_miou);
    assert!(r.final_pixel_accuracy > r.final_miou, "accuracy bounds mIoU from above here");
}

#[test]
fn worker_count_does_not_change_the_math() {
    // Same global batch (6) split 1/2/3/6 ways: parameters agree to
    // float-reassociation noise, mIoU to the same decision boundary.
    let runs: Vec<(usize, usize)> = vec![(1, 6), (2, 3), (3, 2), (6, 1)];
    let results: Vec<_> = runs.iter().map(|&(w, b)| train(&cfg(w, b, 30))).collect();
    let reference = &results[0];
    for ((w, _), r) in runs.iter().zip(&results).skip(1) {
        let max_dev = reference
            .final_params
            .iter()
            .zip(&r.final_params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 2e-2, "{w} workers deviate by {max_dev}");
        assert!(
            (reference.final_miou - r.final_miou).abs() < 0.05,
            "{w} workers: mIoU {:.3} vs serial {:.3}",
            r.final_miou,
            reference.final_miou
        );
    }
}

#[test]
fn allreduce_algorithm_does_not_change_the_result() {
    let algos =
        [Algorithm::Ring, Algorithm::RecursiveDoubling, Algorithm::Rabenseifner, Algorithm::Tree];
    let results: Vec<_> = algos
        .iter()
        .map(|&a| {
            let mut c = cfg(4, 2, 25);
            c.algo = a;
            train(&c)
        })
        .collect();
    for (a, r) in algos.iter().zip(&results).skip(1) {
        let max_dev = results[0]
            .final_params
            .iter()
            .zip(&r.final_params)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 2e-2, "{a} deviates by {max_dev}");
    }
}

#[test]
fn training_is_reproducible_end_to_end() {
    let a = train(&cfg(4, 2, 20));
    let b = train(&cfg(4, 2, 20));
    assert_eq!(a.final_params, b.final_params, "bitwise reproducibility");
    assert_eq!(a.final_miou, b.final_miou);
}

#[test]
fn lr_scaling_recipe_behaves() {
    // With warmup + poly decay, a 4-worker run with scaled LR should
    // still converge (no divergence from the larger effective LR).
    let mut c = cfg(4, 2, 60);
    c.lr_scale = 1.5;
    c.warmup_steps = 10;
    let r = train(&c);
    assert!(r.final_miou > 0.5, "scaled-LR run must still converge: {:.3}", r.final_miou);
    // And the unscaled run converges too — scaling did not break training.
    let r1 = train(&cfg(4, 2, 60));
    assert!((r.final_miou - r1.final_miou).abs() < 0.35, "scaled LR within reach of base");
}
