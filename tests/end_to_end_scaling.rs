//! End-to-end integration: the paper's headline numbers must hold across
//! the whole stack (machine → collectives → MPI personality → Horovod
//! runtime → trainer sweep).
//!
//! Paper targets (abstract): tuned 92 % efficiency at 132 GPUs, default
//! ≈ 68 %, +23.9 points, 1.3× speedup. The assertions use bands, not
//! exact values — the claim is the shape, pinned within a few points.

use summit_dlv3_repro::prelude::*;
use summit_metrics::scaling::compare_at;

fn sweep(cand: Candidate, counts: &[usize]) -> ScalingSeries {
    let machine = Machine::new(MachineConfig::summit_for_gpus(132));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    let spec = SweepSpec {
        machine: &machine,
        profile: cand.backend.profile(),
        config: cand.config,
        model: &model,
        gpu: &gpu,
        batch_per_gpu: 1,
        steps: 3,
        seed: 2020,
    };
    spec.sweep("s", counts)
}

fn tuned_candidate() -> Candidate {
    Candidate {
        backend: Backend::Mvapich2Gdr,
        config: HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
    }
}

#[test]
fn headline_claims_hold_at_132_gpus() {
    let counts = [132usize];
    let default = sweep(Candidate::paper_default(), &counts);
    let tuned = sweep(tuned_candidate(), &counts);
    let (et, ed, delta, speedup) = compare_at(&tuned, &default, 132).expect("both measured");

    assert!(
        (0.88..=0.96).contains(&et),
        "tuned efficiency at 132 GPUs = {:.3}, paper says 0.92",
        et
    );
    assert!(
        (0.62..=0.75).contains(&ed),
        "default efficiency at 132 GPUs = {:.3}, paper says ~0.681",
        ed
    );
    assert!(
        (19.0..=29.0).contains(&delta),
        "efficiency delta = {:.1} points, paper says 23.9",
        delta
    );
    assert!((1.22..=1.48).contains(&speedup), "speedup = {:.2}x, paper says 1.3x", speedup);
}

#[test]
fn tuned_scaling_is_monotone_and_near_linear_throughout() {
    let counts = [6usize, 24, 96];
    let tuned = sweep(tuned_candidate(), &counts);
    let mut last = 0.0;
    for (n, eff) in tuned.efficiencies() {
        let thr = tuned.throughput_at(n).unwrap();
        assert!(thr > last, "throughput must grow with GPUs");
        assert!(eff > 0.9, "tuned efficiency at {n} = {eff:.3}");
        last = thr;
    }
}

#[test]
fn default_efficiency_decays_with_scale() {
    let counts = [24usize, 96, 132];
    let default = sweep(Candidate::paper_default(), &counts);
    let effs: Vec<f64> = default.efficiencies().iter().map(|&(_, e)| e).collect();
    assert!(effs[0] > effs[1] && effs[1] > effs[2], "default decays: {effs:?}");
}

#[test]
fn backend_swap_alone_recovers_most_of_the_gap() {
    // MV2 with *default* Horovod knobs already gets close to tuned — the
    // paper's point that the MPI library dominates.
    let counts = [96usize];
    let mv2_default = sweep(
        Candidate { backend: Backend::Mvapich2Gdr, config: HorovodConfig::default() },
        &counts,
    );
    let spectrum_default = sweep(Candidate::paper_default(), &counts);
    let tuned = sweep(tuned_candidate(), &counts);
    let e_mv2 = mv2_default.efficiencies()[0].1;
    let e_spec = spectrum_default.efficiencies()[0].1;
    let e_tuned = tuned.efficiencies()[0].1;
    assert!(e_mv2 > e_spec + 0.1, "backend swap is the big lever");
    assert!(e_tuned >= e_mv2 - 0.01, "tuning does not regress the backend swap");
}
