//! Cross-crate integration of the collectives layer: the same schedules
//! must be numerically correct (threaded executor), structurally valid,
//! and time sensibly under every MPI personality.

use summit_dlv3_repro::collectives::{
    exec_thread, reference, simulate_dense, Algorithm, LeaderAlgo, ReduceOp,
};
use summit_dlv3_repro::mpi_profiles::MpiProfile;
use summit_dlv3_repro::prelude::*;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Tree,
        Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Ring },
        Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Rabenseifner },
    ]
}

#[test]
fn every_algorithm_correct_at_awkward_sizes() {
    for algo in all_algorithms() {
        for (n, e) in [(13usize, 7usize), (6, 1), (9, 100), (18, 31)] {
            let s = algo.build(n, e);
            s.verify_allreduce().unwrap_or_else(|err| panic!("{algo} n={n} e={e}: {err:?}"));
            let ins: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..e).map(|i| ((r * 19 + i * 7) % 13) as f32 - 6.0).collect())
                .collect();
            let mut bufs = ins.clone();
            exec_thread::allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
            reference::assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }
}

#[test]
fn pooled_executor_matches_reference_for_every_algorithm() {
    // One ExecContext reused across all algorithms and calls: the buffer
    // pool must never change results, and after warm-up it must stop
    // allocating payload buffers entirely.
    let ctx = exec_thread::ExecContext::new();
    for algo in all_algorithms() {
        for (n, e) in [(13usize, 7usize), (9, 100)] {
            let s = algo.build(n, e);
            let ins: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..e).map(|i| ((r * 11 + i * 5) % 17) as f32 - 8.0).collect())
                .collect();
            let mut bufs = ins.clone();
            ctx.allreduce(&s, &mut bufs, ReduceOp::Average).unwrap();
            reference::assert_allreduce_result(&ins, &bufs, ReduceOp::Average, 1e-3);
        }
    }
    // Warm: repeat the last schedule; the pool must be in steady state.
    let algo = Algorithm::Ring;
    let s = algo.build(9, 100);
    let mut bufs: Vec<Vec<f32>> = (0..9).map(|r| vec![r as f32; 100]).collect();
    ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
    let after_warmup = ctx.payload_allocations();
    for _ in 0..4 {
        let mut bufs: Vec<Vec<f32>> = (0..9).map(|r| vec![r as f32; 100]).collect();
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
    }
    assert_eq!(
        ctx.payload_allocations(),
        after_warmup,
        "steady-state allreduce must not allocate payload buffers"
    );
}

#[test]
fn fp16_compressed_allreduce_matches_reference_on_compressed_inputs() {
    // The fp16 path casts gradients down/up around the reduce. Since the
    // reduction itself runs in f32, the pooled threaded allreduce of
    // compressed buffers must agree exactly with the reference reduction
    // of the same compressed inputs — compression commutes with which
    // executor runs the schedule.
    use summit_dlv3_repro::trainer::real::fp16::compress_gradients;
    let ctx = exec_thread::ExecContext::new();
    for algo in all_algorithms() {
        let (n, e) = (6usize, 37usize);
        let s = algo.build(n, e);
        let mut ins: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..e).map(|i| ((r * 7 + i * 3) % 29) as f32 * 0.0137 - 0.19).collect())
            .collect();
        for buf in &mut ins {
            compress_gradients(buf);
        }
        let mut bufs = ins.clone();
        ctx.allreduce(&s, &mut bufs, ReduceOp::Average).unwrap();
        reference::assert_allreduce_result(&ins, &bufs, ReduceOp::Average, 1e-5);
        // And the values really went through half precision: every input
        // must be exactly f16-representable.
        for buf in &ins {
            for &x in buf {
                assert_eq!(x, summit_dlv3_repro::trainer::real::fp16::roundtrip(x));
            }
        }
    }
}

#[test]
fn simulated_times_are_positive_and_ordered_by_personality() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(24));
    let mv2 = MpiProfile::mvapich2_gdr();
    let spec = MpiProfile::spectrum_default();
    for algo in [Algorithm::Ring, Algorithm::Rabenseifner] {
        let sched = algo.build(24, 4 << 20);
        let t_mv2 = simulate_dense(&sched, &machine, &mv2).makespan;
        let t_spec = simulate_dense(&sched, &machine, &spec).makespan;
        assert!(t_mv2 > SimTime::ZERO);
        assert!(
            t_spec > t_mv2,
            "{algo}: Spectrum ({t_spec}) must be slower than MV2-GDR ({t_mv2})"
        );
    }
}

#[test]
fn personality_selection_tables_pick_the_simulated_winner_in_band() {
    // For the three MV2 table bands, the selected algorithm should be at
    // least competitive with the others at a representative size.
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let mv2 = MpiProfile::mvapich2_gdr();
    for bytes in [8u64 << 10, 1 << 20, 64 << 20] {
        let selected = mv2.select_algorithm(bytes);
        let elems = (bytes / 4) as usize;
        let t_selected =
            simulate_dense(&selected.build(48, elems), &machine, &mv2).makespan.as_secs_f64();
        for other in all_algorithms() {
            let t_other =
                simulate_dense(&other.build(48, elems), &machine, &mv2).makespan.as_secs_f64();
            assert!(
                t_selected <= t_other * 1.35,
                "at {bytes} B, table picked {selected} ({t_selected:.2e}s) but {other} is much \
                 faster ({t_other:.2e}s)"
            );
        }
    }
}

#[test]
fn oracle_and_exact_simulation_agree() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let profile = MpiProfile::mvapich2_gdr();
    let oracle = AllreduceOracle::new(profile.clone(), &machine, 48);
    for bytes in [64u64 << 10, 3 << 20, 50 << 20] {
        let exact = profile.allreduce_time(&machine, 48, bytes).as_secs_f64();
        let interp = oracle.time(bytes);
        assert!(
            (interp - exact).abs() / exact < 0.2,
            "oracle {interp:.3e} vs exact {exact:.3e} at {bytes} B"
        );
    }
}

#[test]
fn gradient_sized_allreduce_timing_sanity() {
    // The whole DLv3+ gradient (209 MiB) over 132 GPUs: tuned stack must
    // move it in tens of ms, not seconds (else scaling would be absurd).
    let machine = Machine::new(MachineConfig::summit_for_gpus(132));
    let mv2 = MpiProfile::mvapich2_gdr();
    let t = mv2.allreduce_time(&machine, 132, deeplab_paper().gradient_bytes()).as_secs_f64();
    assert!(t > 5e-3 && t < 0.5, "209 MiB @ 132 GPUs took {t}s");
}
