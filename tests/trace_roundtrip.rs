//! Round-trip the emitted Chrome-trace JSON through the in-repo parser
//! and check the observability layer's end-to-end contract at n = 4:
//! one pid per rank, well-formed metadata events, and the critical-path
//! analyzer reproducing the paper's headline diagnosis (the tuned
//! configuration spends a smaller fraction of the step in allreduce
//! than the default).

use std::sync::Arc;

use summit_dlv3_repro::prelude::*;
use summit_dlv3_repro::trace::{analyze, parse_trace, ChromeEvent, TraceSession};
use summit_dlv3_repro::trainer::real::{train, TrainConfig};

const N_RANKS: usize = 4;

/// 2 nodes x 2 GPUs — the smallest topology where the node injection
/// bandwidth is shared, i.e. where the tuning knobs are visible (see
/// the O16 experiment binary).
fn machine() -> Machine {
    Machine::new(MachineConfig { nodes: 2, gpus_per_node: 2, ..MachineConfig::summit(2) })
}

fn per_rank_events(machine: &Machine, cand: &Candidate) -> Vec<ChromeEvent> {
    let sim = StepSim::new(
        machine,
        cand.backend.profile(),
        cand.config.clone(),
        &deeplab_paper(),
        &GpuModel::v100(),
        1,
        N_RANKS,
        2020,
    );
    let (_, per_rank) = sim.simulate_step_per_rank(0);
    let mut merged = Timeline::default();
    for tl in &per_rank {
        merged.merge(tl);
    }
    merged.to_chrome_events()
}

fn tuned() -> Candidate {
    Candidate {
        backend: Backend::Mvapich2Gdr,
        config: HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
    }
}

#[test]
fn chrome_json_round_trips_with_n_pids_and_metadata() {
    let events = per_rank_events(&machine(), &Candidate::paper_default());
    let json = summit_dlv3_repro::trace::write_trace(&events);
    let parsed = parse_trace(&json).expect("emitted JSON parses");
    assert_eq!(parsed.len(), events.len(), "no events lost in the round trip");

    // Every span field survives the round trip.
    for (a, b) in events.iter().zip(&parsed) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.cat, b.cat);
        assert_eq!(a.ph, b.ph);
        assert_eq!(a.pid, b.pid);
        assert_eq!(a.tid, b.tid);
        assert!((a.ts_us - b.ts_us).abs() < 1e-3 && (a.dur_us - b.dur_us).abs() < 1e-3);
    }

    // n distinct pids on the real events.
    let mut pids: Vec<u32> = parsed.iter().filter(|e| e.ph == 'X').map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), N_RANKS, "one pid per rank: {pids:?}");

    // Well-formed metadata: every pid has a process_name carrying a
    // non-empty args.name, plus named compute and comm lanes.
    for pid in pids {
        let name = parsed
            .iter()
            .find(|e| e.ph == 'M' && e.name == "process_name" && e.pid == pid)
            .and_then(|e| e.meta_name.clone())
            .unwrap_or_default();
        assert_eq!(name, format!("rank {pid}"));
        let lanes: Vec<String> = parsed
            .iter()
            .filter(|e| e.ph == 'M' && e.name == "thread_name" && e.pid == pid)
            .filter_map(|e| e.meta_name.clone())
            .collect();
        assert!(lanes.contains(&"compute".to_string()), "pid {pid} lanes: {lanes:?}");
        assert!(lanes.contains(&"comm".to_string()), "pid {pid} lanes: {lanes:?}");
    }
}

#[test]
fn tuned_config_shrinks_allreduce_fraction() {
    let m = machine();
    let def = analyze(&per_rank_events(&m, &Candidate::paper_default()));
    let tun = analyze(&per_rank_events(&m, &tuned()));
    assert!(def.allreduce_fraction() > 0.1, "default must be comm-heavy here");
    assert!(
        tun.allreduce_fraction() < def.allreduce_fraction(),
        "tuned {:.3} must be below default {:.3}",
        tun.allreduce_fraction(),
        def.allreduce_fraction()
    );
}

#[test]
fn real_training_trace_round_trips() {
    let session = Arc::new(TraceSession::new());
    let mut cfg = TrainConfig::quick(N_RANKS);
    cfg.steps = 2;
    cfg.trace = Some(session.clone());
    train(&cfg);
    let json = session.recorder.to_chrome_json();
    let parsed = parse_trace(&json).expect("recorder JSON parses");
    let mut pids: Vec<u32> = parsed.iter().filter(|e| e.ph == 'X').map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids.len(), N_RANKS, "one pid per worker: {pids:?}");
    assert!(parsed.iter().any(|e| e.cat == "SEND"), "executor spans present");
    let bd = analyze(&parsed);
    assert!(bd.wall_us > 0.0 && bd.ranks.len() == N_RANKS);
}
