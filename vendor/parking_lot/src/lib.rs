//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the `parking_lot` API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`). Poisoning
//! is ignored — a panic while holding the lock does not poison it, which
//! is exactly `parking_lot`'s behavior.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion backed by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock backed by `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicking holder");
    }
}
