//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! workspace uses, backed by `std::sync::mpsc`.
//!
//! Only the surface the collectives executor (and its buffer pool) needs:
//! [`channel::unbounded`], [`channel::bounded`], `send` / `recv` /
//! `try_recv` / `try_send`, and cloneable senders.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    /// Error returned when all senders are gone and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (never blocks for unbounded channels).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Non-blocking send; `Full` only possible for bounded channels.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => {
                    s.send(value).map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
                }
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Channel with a fixed capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
