//! Offline stand-in for `rayon`, covering the combinator surface this
//! workspace uses: `par_iter` / `par_iter_mut` / `into_par_iter` over
//! slices and integer ranges, with `map`, `zip`, `enumerate`, `fold`,
//! `for_each`, `reduce`, and `collect`.
//!
//! Execution model: a terminal operation partitions the index space into
//! one contiguous chunk per available core and runs each chunk on a
//! `std::thread::scope` thread (inline when a single core is available or
//! the input is tiny). Chunk partitioning is deterministic for a given
//! core count, so floating-point reductions are reproducible run-to-run
//! on the same machine — a property the training tests rely on.
//!
//! Unlike real rayon there is no work stealing; the cost model here is
//! "chunks are balanced because items are homogeneous", which holds for
//! every call site in this workspace (per-sample gradient work,
//! element-wise buffer math).

use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ops::Range;

/// Number of worker threads a terminal operation may use.
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Internal indexed source: `get(i)` must be called at most once per
/// index across all threads (chunks partition the index space), which is
/// what makes handing out `&mut` items sound.
///
/// This is an implementation detail; user code only sees
/// [`ParallelIterator`].
#[allow(clippy::len_without_is_empty)]
pub trait Source: Sync {
    type Item: Send;

    fn len(&self) -> usize;

    /// # Safety
    /// Each index in `0..len()` may be claimed at most once.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// Balanced contiguous chunk bounds: chunk `c` of `k` over `len` items.
fn chunk_bounds(len: usize, k: usize, c: usize) -> Range<usize> {
    let base = len / k;
    let rem = len % k;
    let start = c * base + c.min(rem);
    let end = start + base + usize::from(c < rem);
    start..end
}

/// Run `body(chunk_index, index_range)` over a balanced partition of
/// `0..len`, on up to `current_num_threads()` threads. Returns per-chunk
/// results in chunk order.
fn run_chunked<R, F>(len: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let k = current_num_threads().min(len);
    if k <= 1 {
        return vec![body(0, 0..len)];
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(k);
    out.resize_with(k, || None);
    std::thread::scope(|scope| {
        let body = &body;
        let mut handles = Vec::with_capacity(k - 1);
        for c in 1..k {
            handles.push(scope.spawn(move || body(c, chunk_bounds(len, k, c))));
        }
        out[0] = Some(body(0, chunk_bounds(len, k, 0)));
        for (c, h) in handles.into_iter().enumerate() {
            out[c + 1] = Some(h.join().expect("parallel chunk panicked"));
        }
    });
    out.into_iter().map(|r| r.expect("chunk result")).collect()
}

/// Collection target for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<S: Source<Item = T>>(source: S) -> Self;
}

struct PtrSend<T>(*mut T);
unsafe impl<T> Send for PtrSend<T> {}
unsafe impl<T> Sync for PtrSend<T> {}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S: Source<Item = T>>(source: S) -> Self {
        let len = source.len();
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: every slot in 0..len is written exactly once below
        // before the transmute (chunks partition the index space).
        #[allow(clippy::uninit_vec)]
        unsafe {
            out.set_len(len);
        }
        let base = PtrSend(out.as_mut_ptr());
        run_chunked(len, |_, range| {
            let ptr = &base;
            for i in range {
                // SAFETY: disjoint chunks → exclusive slot access; each
                // source index claimed once.
                unsafe {
                    ptr.0.add(i).write(MaybeUninit::new(source.get(i)));
                }
            }
        });
        // SAFETY: all len slots initialized; MaybeUninit<T> and T share layout.
        unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), len, out.capacity())
        }
    }
}

/// The user-facing combinator surface (rayon's `ParallelIterator` +
/// `IndexedParallelIterator`, collapsed).
pub trait ParallelIterator: Source + Sized {
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_chunked(self.len(), |_, range| {
            for i in range {
                // SAFETY: chunks partition the index space.
                f(unsafe { self.get(i) });
            }
        });
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = run_chunked(self.len(), |_, range| {
            let mut acc = identity();
            for i in range {
                // SAFETY: chunks partition the index space.
                acc = op(acc, unsafe { self.get(i) });
            }
            acc
        });
        let mut it = partials.into_iter();
        let first = it.next().unwrap_or_else(&identity);
        it.fold(first, &op)
    }

    /// Per-chunk sequential fold; combine the partials with
    /// [`FoldPartials::reduce`]. This is the allocation-frugal shape the
    /// trainer's hot path uses: one accumulator per thread, not per item.
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> FoldPartials<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
    {
        let partials = run_chunked(self.len(), |_, range| {
            let mut acc = identity();
            for i in range {
                // SAFETY: chunks partition the index space.
                acc = fold_op(acc, unsafe { self.get(i) });
            }
            acc
        });
        FoldPartials { partials }
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    fn count(self) -> usize {
        self.len()
    }
}

impl<S: Source + Sized> ParallelIterator for S {}

/// Result of [`ParallelIterator::fold`]: one accumulator per executed
/// chunk, in deterministic chunk order.
pub struct FoldPartials<A> {
    partials: Vec<A>,
}

impl<A> FoldPartials<A> {
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> A
    where
        ID: Fn() -> A,
        OP: Fn(A, A) -> A,
    {
        let mut it = self.partials.into_iter();
        let first = it.next().unwrap_or_else(identity);
        it.fold(first, op)
    }

    pub fn into_vec(self) -> Vec<A> {
        self.partials
    }
}

// ---------------------------------------------------------------- sources

/// Shared-slice source (`par_iter`).
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Source for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Exclusive-slice source (`par_iter_mut`).
pub struct SliceIterMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint index claims (the Source contract) make concurrent
// `&mut` handouts non-aliasing; T: Send lets items cross threads.
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

impl<'a, T: Send> Source for SliceIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// Shared chunk source (`par_chunks`): item `i` is the `i`-th
/// `size`-element window of the slice (last one may be short).
pub struct SliceChunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Source for SliceChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn get(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.slice.len());
        self.slice.get_unchecked(start..end)
    }
}

/// Exclusive chunk source (`par_chunks_mut`): disjoint windows, so the
/// concurrent `&mut` handouts never alias.
pub struct SliceChunksMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunk windows are disjoint by construction; T: Send lets the
// chunks cross threads.
unsafe impl<T: Send> Sync for SliceChunksMut<'_, T> {}

impl<'a, T: Send> Source for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let start = i * self.size;
        let n = self.size.min(self.len - start);
        std::slice::from_raw_parts_mut(self.ptr.add(start), n)
    }
}

/// Integer-range source (`(a..b).into_par_iter()`).
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl Source for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            unsafe fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}
impl_range_source!(u32, u64, usize, i32, i64);

// ------------------------------------------------------------ combinators

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Source for Map<S, F>
where
    S: Source,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

pub struct Enumerate<S> {
    base: S,
}

impl<S: Source> Source for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        (i, self.base.get(i))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Source, B: Source> Source for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.get(i), self.b.get(i))
    }
}

// ------------------------------------------------------------- entry traits

/// Owned conversion into a parallel iterator (ranges, in this shim).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: Source<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter` on borrowed slices (and, via deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: Source<Item = Self::Item>;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter_mut` on borrowed slices (and, via deref, `Vec`).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    type Iter: Source<Item = Self::Item>;

    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
    }
}

/// `par_chunks` on borrowed slices — the chunked entry point the SIMD
/// reduction kernels use (each chunk is processed by a serial vector
/// loop, so the per-item closure dispatch cost disappears).
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        SliceChunks { slice: self, size }
    }
}

/// `par_chunks_mut` on borrowed slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        SliceChunksMut { ptr: self.as_mut_ptr(), len: self.len(), size, _marker: PhantomData }
    }
}

pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_match() {
        let data = [10, 20, 30, 40];
        let v: Vec<(usize, i32)> = data.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(v, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut data = vec![1i64; 10_000];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn zip_mut_with_shared() {
        let mut dst = vec![1.0f32; 257];
        let src = vec![2.0f32; 257];
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, s)| *d += *s);
        assert!(dst.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn reduce_sums() {
        let total = (0..10_000u64).into_par_iter().map(|i| i).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn reduce_empty_uses_identity() {
        let total = (0..0u64).into_par_iter().map(|i| i).reduce(|| 42, |a, b| a + b);
        assert_eq!(total, 42);
    }

    #[test]
    fn fold_then_reduce_matches_serial() {
        let data: Vec<f64> = (0..5000).map(|i| i as f64 * 0.25).collect();
        let par = data.par_iter().fold(|| 0.0f64, |acc, &x| acc + x).reduce(|| 0.0, |a, b| a + b);
        let serial: f64 = data.iter().sum();
        assert!((par - serial).abs() < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let run =
            || data.par_iter().fold(|| 0.0f32, |acc, &x| acc + x).reduce(|| 0.0, |a, b| a + b);
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn par_chunks_cover_slice_in_order() {
        let data: Vec<u32> = (0..1003).collect();
        let sums: Vec<u32> = data.par_chunks(64).map(|c| c.iter().sum()).collect();
        let serial: Vec<u32> = data.chunks(64).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, serial);
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut dst = vec![1.0f32; 1003];
        let src = vec![2.0f32; 1003];
        dst.par_chunks_mut(64).zip(src.par_chunks(64)).for_each(|(d, s)| {
            for (x, y) in d.iter_mut().zip(s) {
                *x += *y;
            }
        });
        assert!(dst.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn chunk_bounds_partition() {
        for len in [0usize, 1, 7, 100, 101] {
            for k in 1..=8 {
                let mut covered = 0;
                let mut prev_end = 0;
                for c in 0..k.min(len.max(1)) {
                    let r = super::chunk_bounds(len, k.min(len.max(1)), c);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    covered += r.len();
                }
                if len > 0 {
                    assert_eq!(covered, len);
                    assert_eq!(prev_end, len);
                }
            }
        }
    }
}
