//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`prop_oneof!`],
//! [`strategy::Just`], `prop::collection::vec`, `prop::sample::select`,
//! and the `prop_assert*` / `prop_assume!` macros — on top of the
//! vendored `rand`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case panics with the assertion message
//!   (and the case number); inputs are reproducible because each test's
//!   RNG stream is seeded from its module path + name.
//! * **No persistence files**, no forking, no timeout handling.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// RNG handed to strategies — deterministic per test.
    pub type TestRng = StdRng;

    /// A generator of random values (real proptest's `Strategy`, minus
    /// shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Owned trait object — what [`prop_oneof!`] arms are erased to.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Helper for macro type inference: box an arm of [`prop_oneof!`].
    pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2,
        S2: Strategy,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed arms (what [`prop_oneof!`] builds).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size specifications for [`vec`].
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice of one element.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// `prop_assert*` failed; abort the test.
        Fail(String),
    }

    /// Runner configuration (`Config` in real proptest).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; this harness runs on small
            // CI boxes, so default lower — every block in this workspace
            // sets an explicit count anyway.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-test RNG: the stream depends only on the test's
    /// full path, so failures reproduce across runs.
    pub fn rng_for_test(path: &str) -> super::strategy::TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in path.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        super::strategy::TestRng::seed_from_u64(h)
    }
}

/// Run each declared property over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(16).saturating_add(256),
                    "proptest: too many cases rejected by prop_assume!"
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {}: {}", executed + 1, stringify!($name), msg)
                    }
                }
            }
        }
    )*};
}

/// Assert inside a property; fails the case (no shrinking) with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Reject the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` paths (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(usize),
    }

    fn arb_kind() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), (1usize..5).prop_map(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2i64..=2, f in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_hits_every_arm(k in arb_kind()) {
            match k {
                Kind::A => {}
                Kind::B(n) => prop_assert!((1..5).contains(&n)),
            }
        }

        #[test]
        fn select_chooses_from_options(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0usize..10, 0usize..10)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..6).prop_flat_map(|n| {
            prop::collection::vec(0u32..10, n..n + 1)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x is only {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err(), "a false property must panic");
    }
}
