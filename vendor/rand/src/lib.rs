//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships this minimal, API-compatible replacement for the
//! subset of `rand` 0.8 it actually uses: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64 instead of ChaCha12 — different stream, same
//! contract), the [`Rng`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom::shuffle`].
//!
//! Everything is deterministic per seed, `Send + Sync`-friendly, and
//! allocation-free.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's native stream
/// (`rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything observable here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as StandardSample>::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// One round of SplitMix64 (seed expansion).
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for `rand`'s
    /// `StdRng`. Not reproducible against upstream `rand` streams, but
    /// fully deterministic per seed, which is the property the workspace
    /// relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut z);
            }
            // Avoid the all-zero state (unreachable via splitmix, but cheap
            // to guard).
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `rand::seq` API the workspace uses).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, deterministic per generator state.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = r.gen_range(1..=3u8);
            assert!((1..=3).contains(&v));
            seen[v as usize - 1] = true;
            let u = r.gen_range(0..10usize);
            assert!(u < 10);
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all inclusive-range values reachable");
    }

    #[test]
    fn float_means_are_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes the identity");
    }
}
