//! Stateless model checking for small concurrent protocols (vendored,
//! offline).
//!
//! The same niche as `loom` — prove that a concurrent protocol is
//! correct under *every* interleaving that matters, not just the ones a
//! test run happens to hit — built as an explicit checker rather than
//! an instrumented runtime, consistent with this workspace's
//! no-external-dependencies constraint. Two engines over two model
//! traits:
//!
//! * [`Model`] + [`check`] — the original deterministic-step API: BFS
//!   over reachable states with a visited set. Exploration order is
//!   **deterministic by construction** (successors expanded in
//!   ascending thread id, FIFO frontier), so every verdict — including
//!   the schedule reported when [`Options::max_states`] trips — is
//!   stable across runs and machines.
//! * [`NdModel`] + [`check_dpor`] — the scalable engine: depth-first
//!   stateless search with **dynamic partial-order reduction**
//!   (persistent/backtrack sets in the Flanagan–Godefroid style, plus
//!   sleep sets), keyed on the [`Op`] dependence relation. Models may
//!   branch nondeterministically per thread step — that is how the
//!   [`mem`] module's relaxed-memory loads surface every visible write.
//!   A bounded-preemption budget ([`DporOptions::preemption_bound`]) is
//!   available as a fallback when a model is too big to finish
//!   exhaustively. Counterexamples are replayable ([`replay_nd`]) and
//!   shortened by a bounded BFS pass so the printed trace is minimal.
//!
//! Every [`Model`] is automatically an [`NdModel`] (each step is a
//! single branch whose op is [`Model::op`], conservatively "touches
//! everything" by default), so legacy models can run under DPOR
//! unchanged — they just see no reduction until they classify their
//! steps.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

mod dpor;
pub mod mem;

pub use dpor::{check_dpor, check_nd, replay_nd, Choice, DporOptions, DporReport, NdVerdict};
pub use mem::{Mem, MemOrd};

/// A modeled memory location (or parking lot) identifier.
pub type Loc = u16;

/// Wildcard location: dependent with every location. The default
/// [`Model::op`] uses it so unclassified models stay sound under DPOR.
pub const LOC_ANY: Loc = Loc::MAX;

/// The kind of atomic action a thread's next transition performs, used
/// by DPOR to decide which transitions commute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Atomic load of a location.
    Read(Loc),
    /// Atomic store to a location.
    Write(Loc),
    /// Successful compare-exchange (read + write) of a location.
    CasOk(Loc),
    /// Failed compare-exchange (a read) of a location.
    CasFail(Loc),
    /// Thread parks on lot `Loc`.
    Park(Loc),
    /// Thread unparks whoever waits on lot `Loc`.
    Unpark(Loc),
    /// Thread-local computation: independent of everything.
    Local,
}

impl Op {
    fn loc(self) -> Option<Loc> {
        match self {
            Op::Read(l) | Op::Write(l) | Op::CasOk(l) | Op::CasFail(l) => Some(l),
            Op::Park(_) | Op::Unpark(_) | Op::Local => None,
        }
    }

    fn writes(self) -> bool {
        matches!(self, Op::Write(_) | Op::CasOk(_))
    }

    /// The DPOR dependence relation: may the order of two adjacent
    /// steps by different threads affect the outcome?
    pub fn dependent(self, other: Op) -> bool {
        match (self, other) {
            (Op::Local, _) | (_, Op::Local) => false,
            (Op::Park(a), Op::Unpark(b)) | (Op::Unpark(a), Op::Park(b)) => {
                a == b || a == LOC_ANY || b == LOC_ANY
            }
            // Two parks (different threads) or two unparks commute, and
            // park/unpark commute with memory ops.
            (Op::Park(_) | Op::Unpark(_), _) | (_, Op::Park(_) | Op::Unpark(_)) => false,
            (a, b) => match (a.loc(), b.loc()) {
                (Some(la), Some(lb)) => {
                    (la == lb || la == LOC_ANY || lb == LOC_ANY) && (a.writes() || b.writes())
                }
                _ => false,
            },
        }
    }
}

/// The result of offering one atomic step to a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<S> {
    /// The thread took the step; this is the successor state.
    Ready(S),
    /// The thread exists but cannot progress in this state (blocked on
    /// a lock, an empty channel, a condition).
    Blocked,
    /// The thread has terminated in this state.
    Done,
}

/// A concurrent protocol under test with deterministic per-thread steps.
pub trait Model {
    /// Global state: shared memory plus every thread's local state and
    /// program counter. Must be hashable so visited states dedup.
    type State: Clone + Hash + Eq + Debug;

    fn initial(&self) -> Self::State;

    fn n_threads(&self) -> usize;

    /// Attempt one atomic step of thread `tid` from `s`.
    fn step(&self, s: &Self::State, tid: usize) -> Step<Self::State>;

    /// Safety invariant, checked at every reachable state (including
    /// the initial one). Return `Err(reason)` to fail the check.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Classify the next step of `tid` from `s` for DPOR dependence.
    /// The default — a write to the wildcard location — is dependent
    /// with everything, which is always sound and never reduces.
    fn op(&self, _s: &Self::State, _tid: usize) -> Op {
        Op::Write(LOC_ANY)
    }
}

/// The result of offering one step to a thread of an [`NdModel`]:
/// possibly many branches (e.g. a relaxed load observing any of several
/// visible writes), each labeled with its [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Steps<S> {
    /// The enabled branches. Must be non-empty, in deterministic order.
    Ready(Vec<(Op, S)>),
    Blocked,
    Done,
}

/// A protocol whose threads may branch nondeterministically per step —
/// the input language of [`check_dpor`] and [`check_nd`].
pub trait NdModel {
    type State: Clone + Hash + Eq + Debug;

    fn initial(&self) -> Self::State;

    fn n_threads(&self) -> usize;

    /// All branches of one atomic step of `tid` from `s`.
    fn steps(&self, s: &Self::State, tid: usize) -> Steps<Self::State>;

    fn invariant(&self, s: &Self::State) -> Result<(), String>;
}

impl<M: Model> NdModel for M {
    type State = M::State;

    fn initial(&self) -> Self::State {
        Model::initial(self)
    }

    fn n_threads(&self) -> usize {
        Model::n_threads(self)
    }

    fn steps(&self, s: &Self::State, tid: usize) -> Steps<Self::State> {
        match self.step(s, tid) {
            Step::Ready(next) => Steps::Ready(vec![(self.op(s, tid), next)]),
            Step::Blocked => Steps::Blocked,
            Step::Done => Steps::Done,
        }
    }

    fn invariant(&self, s: &Self::State) -> Result<(), String> {
        Model::invariant(self, s)
    }
}

/// Exploration bounds for the BFS engine.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Abort (as [`Verdict::StateLimit`]) after visiting this many
    /// distinct states.
    pub max_states: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { max_states: 1_000_000 }
    }
}

/// Exploration statistics for a passing check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited (the whole reachable space).
    pub states: usize,
    /// Transitions taken (edges of the state graph).
    pub transitions: usize,
    /// Length of the longest shortest-path from the initial state.
    pub depth: usize,
}

/// Why a check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<S> {
    /// The invariant returned `Err` in a reachable state.
    InvariantViolated {
        /// Shortest thread schedule reaching the violating state.
        schedule: Vec<usize>,
        state: S,
        reason: String,
    },
    /// A reachable state where no thread can step but not all are done.
    Deadlock { schedule: Vec<usize>, state: S },
    /// `max_states` was reached before the space was exhausted. The
    /// schedule of the state that tripped the limit is reported — and
    /// because exploration order is deterministic (ascending thread id,
    /// FIFO frontier), it is the *same* schedule on every run.
    StateLimit { visited: usize, schedule: Vec<usize> },
}

impl<S: Debug> std::fmt::Display for Verdict<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::InvariantViolated { schedule, state, reason } => write!(
                f,
                "invariant violated after schedule {schedule:?}: {reason} (state {state:?})"
            ),
            Verdict::Deadlock { schedule, state } => {
                write!(f, "deadlock after schedule {schedule:?} (state {state:?})")
            }
            Verdict::StateLimit { visited, schedule } => {
                write!(f, "state limit hit after {visited} states (frontier at {schedule:?})")
            }
        }
    }
}

/// Exhaustively explore every interleaving of `model`'s threads by BFS.
///
/// Deterministic: states are expanded in FIFO order and successors in
/// ascending thread id, so the reported counterexample — always a
/// shortest schedule — is identical across runs.
pub fn check<M: Model>(model: &M, opts: Options) -> Result<Report, Verdict<M::State>> {
    let initial = model.initial();
    if let Err(reason) = model.invariant(&initial) {
        return Err(Verdict::InvariantViolated { schedule: Vec::new(), state: initial, reason });
    }
    let mut visited: HashSet<M::State> = HashSet::new();
    // parent[s] = (predecessor, tid stepped) for trace reconstruction.
    let mut parent: HashMap<M::State, (M::State, usize)> = HashMap::new();
    let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
    visited.insert(initial.clone());
    queue.push_back((initial, 0));
    let mut transitions = 0usize;
    let mut depth = 0usize;
    while let Some((state, d)) = queue.pop_front() {
        depth = depth.max(d);
        let mut any_ready = false;
        let mut all_done = true;
        for tid in 0..model.n_threads() {
            match model.step(&state, tid) {
                Step::Done => {}
                Step::Blocked => all_done = false,
                Step::Ready(next) => {
                    any_ready = true;
                    all_done = false;
                    transitions += 1;
                    if visited.contains(&next) {
                        continue;
                    }
                    if let Err(reason) = model.invariant(&next) {
                        let mut schedule = trace(&parent, &state);
                        schedule.push(tid);
                        return Err(Verdict::InvariantViolated { schedule, state: next, reason });
                    }
                    visited.insert(next.clone());
                    parent.insert(next.clone(), (state.clone(), tid));
                    if visited.len() > opts.max_states {
                        let mut schedule = trace(&parent, &state);
                        schedule.push(tid);
                        return Err(Verdict::StateLimit { visited: visited.len(), schedule });
                    }
                    queue.push_back((next, d + 1));
                }
            }
        }
        if !any_ready && !all_done {
            return Err(Verdict::Deadlock { schedule: trace(&parent, &state), state });
        }
    }
    Ok(Report { states: visited.len(), transitions, depth })
}

/// Walk the parent map back to the initial state.
fn trace<S: Clone + Hash + Eq>(parent: &HashMap<S, (S, usize)>, end: &S) -> Vec<usize> {
    let mut schedule = Vec::new();
    let mut cur = end.clone();
    while let Some((prev, tid)) = parent.get(&cur) {
        schedule.push(*tid);
        cur = prev.clone();
    }
    schedule.reverse();
    schedule
}

/// Re-run a counterexample schedule from the initial state, returning
/// every intermediate state (for debugging a failed check). Stops early
/// if a scheduled thread cannot step.
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> Vec<M::State> {
    let mut states = vec![Model::initial(model)];
    for &tid in schedule {
        let next = match model.step(&states[states.len() - 1], tid) {
            Step::Ready(next) => next,
            Step::Blocked | Step::Done => break,
        };
        states.push(next);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter. `atomic` uses one-step
    /// fetch_add; otherwise load and store are separate steps — the
    /// classic lost update.
    struct Counter {
        atomic: bool,
    }

    /// (shared counter, per-thread (pc, register))
    type CState = (u32, [(u8, u32); 2]);

    impl Model for Counter {
        type State = CState;

        fn initial(&self) -> CState {
            (0, [(0, 0); 2])
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn step(&self, s: &CState, tid: usize) -> Step<CState> {
            let (shared, mut locals) = (s.0, s.1);
            let (pc, reg) = locals[tid];
            if self.atomic {
                match pc {
                    0 => {
                        locals[tid] = (1, reg);
                        Step::Ready((shared + 1, locals))
                    }
                    _ => Step::Done,
                }
            } else {
                match pc {
                    0 => {
                        locals[tid] = (1, shared); // load
                        Step::Ready((shared, locals))
                    }
                    1 => {
                        locals[tid] = (2, reg);
                        Step::Ready((reg + 1, locals)) // store of stale read
                    }
                    _ => Step::Done,
                }
            }
        }

        fn invariant(&self, s: &CState) -> Result<(), String> {
            let all_done = s.1.iter().all(|&(pc, _)| pc == if self.atomic { 1 } else { 2 });
            if all_done && s.0 != 2 {
                return Err(format!("final counter {} != 2", s.0));
            }
            Ok(())
        }
    }

    #[test]
    fn atomic_counter_passes_exhaustively() {
        let r = check(&Counter { atomic: true }, Options::default()).unwrap();
        assert!(r.states >= 3);
        assert!(r.transitions >= r.states - 1);
    }

    #[test]
    fn split_load_store_race_is_found_with_shortest_trace() {
        let err = check(&Counter { atomic: false }, Options::default()).unwrap_err();
        match err {
            Verdict::InvariantViolated { schedule, state, reason } => {
                assert!(reason.contains("!= 2"));
                assert_eq!(state.0, 1); // the lost update
                                        // Replay reproduces the same final state.
                let states = replay(&Counter { atomic: false }, &schedule);
                assert_eq!(states.last(), Some(&state));
            }
            other => panic!("expected invariant violation, got {other}"),
        }
    }

    /// Two threads take two locks in opposite order: AB vs BA.
    struct OpposedLocks;

    /// (lock_a holder+1 or 0, lock_b holder+1 or 0, pcs)
    type LState = (u8, u8, [u8; 2]);

    impl Model for OpposedLocks {
        type State = LState;

        fn initial(&self) -> LState {
            (0, 0, [0, 0])
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn step(&self, s: &LState, tid: usize) -> Step<LState> {
            fn lock(st: &mut LState, which: usize) -> &mut u8 {
                if which == 0 {
                    &mut st.0
                } else {
                    &mut st.1
                }
            }
            let mut st = *s;
            let me = tid as u8 + 1;
            // Thread 0 takes a then b; thread 1 takes b then a.
            let order = if tid == 0 { [0usize, 1] } else { [1, 0] };
            match st.2[tid] {
                pc @ (0 | 1) => {
                    let which = order[pc as usize];
                    if *lock(&mut st, which) != 0 {
                        return Step::Blocked;
                    }
                    *lock(&mut st, which) = me;
                    st.2[tid] = pc + 1;
                    Step::Ready(st)
                }
                2 => {
                    *lock(&mut st, 0) = 0;
                    *lock(&mut st, 1) = 0;
                    st.2[tid] = 3;
                    Step::Ready(st)
                }
                _ => Step::Done,
            }
        }

        fn invariant(&self, _: &LState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn opposed_lock_order_deadlocks() {
        let err = check(&OpposedLocks, Options::default()).unwrap_err();
        match err {
            Verdict::Deadlock { schedule, state } => {
                assert_eq!(state.2, [1, 1], "both threads hold their first lock");
                assert_eq!(schedule.len(), 2);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn state_limit_is_an_explicit_error() {
        let err = check(&Counter { atomic: false }, Options { max_states: 2 }).unwrap_err();
        assert!(matches!(err, Verdict::StateLimit { .. }));
    }

    #[test]
    fn state_limit_schedule_is_deterministic_across_runs() {
        // Regression for the counterexample-determinism fix: the
        // schedule reported on a StateLimit (and every other verdict)
        // must be identical run over run — no hash-order dependence.
        let runs: Vec<_> = (0..3)
            .map(|_| check(&Counter { atomic: false }, Options { max_states: 4 }).unwrap_err())
            .collect();
        match &runs[0] {
            Verdict::StateLimit { visited, schedule } => {
                assert!(!schedule.is_empty(), "limit verdict must carry a schedule");
                assert_eq!(*visited, 5);
            }
            other => panic!("expected state limit, got {other}"),
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn violation_schedules_are_deterministic_across_runs() {
        let runs: Vec<_> = (0..3)
            .map(|_| check(&Counter { atomic: false }, Options::default()).unwrap_err())
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn op_dependence_relation() {
        use Op::*;
        // Same-location write pairs conflict; reads commute.
        assert!(Write(3).dependent(Read(3)));
        assert!(Write(3).dependent(Write(3)));
        assert!(!Read(3).dependent(Read(3)));
        assert!(!Write(3).dependent(Write(4)));
        // CAS: success is a write, failure is a read.
        assert!(CasOk(1).dependent(CasFail(1)));
        assert!(!CasFail(1).dependent(CasFail(1)));
        assert!(CasOk(1).dependent(CasOk(1)));
        // Park/unpark conflict on the same lot only.
        assert!(Park(0).dependent(Unpark(0)));
        assert!(!Park(0).dependent(Unpark(1)));
        assert!(!Park(0).dependent(Park(0)));
        assert!(!Park(0).dependent(Write(0)));
        // Local is independent of everything; LOC_ANY of everything
        // write-like.
        assert!(!Local.dependent(Write(LOC_ANY)));
        assert!(Write(LOC_ANY).dependent(Read(7)));
        assert!(!Read(LOC_ANY).dependent(Read(7)));
    }
}
