//! Bounded interleaving model checker (vendored, offline).
//!
//! The same niche as `loom` — prove that a small concurrent protocol is
//! correct under *every* thread interleaving, not just the ones a test
//! run happens to hit — but built as an explicit-state checker rather
//! than an instrumented runtime, consistent with this workspace's
//! no-external-dependencies constraint:
//!
//! * A protocol is modeled as a [`Model`]: an explicit `State` plus a
//!   per-thread transition function where each [`Model::step`] is one
//!   atomic action (one atomic RMW, one lock acquisition, one channel
//!   push). Anything that is *two* steps in the real code — a load
//!   followed by a store — must be two steps in the model; that is
//!   exactly where races live.
//! * [`check`] runs breadth-first search over reachable states with a
//!   visited set, so exploration is exhaustive over interleavings while
//!   visiting each distinct state once. Safety invariants are checked
//!   at every reachable state; a state where no thread can step and not
//!   every thread is done is reported as a deadlock.
//! * Counterexamples come back as the shortest thread schedule (BFS
//!   order) reaching the bad state, replayable with [`replay`].
//!
//! Exhaustiveness is bounded only by [`Options::max_states`]; hitting
//! the bound is reported as an explicit error ([`Verdict::StateLimit`])
//! rather than a silent pass.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// The result of offering one atomic step to a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<S> {
    /// The thread took the step; this is the successor state.
    Ready(S),
    /// The thread exists but cannot progress in this state (blocked on
    /// a lock, an empty channel, a condition).
    Blocked,
    /// The thread has terminated in this state.
    Done,
}

/// A concurrent protocol under test.
pub trait Model {
    /// Global state: shared memory plus every thread's local state and
    /// program counter. Must be hashable so visited states dedup.
    type State: Clone + Hash + Eq + Debug;

    fn initial(&self) -> Self::State;

    fn n_threads(&self) -> usize;

    /// Attempt one atomic step of thread `tid` from `s`.
    fn step(&self, s: &Self::State, tid: usize) -> Step<Self::State>;

    /// Safety invariant, checked at every reachable state (including
    /// the initial one). Return `Err(reason)` to fail the check.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Abort (as [`Verdict::StateLimit`]) after visiting this many
    /// distinct states.
    pub max_states: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { max_states: 1_000_000 }
    }
}

/// Exploration statistics for a passing check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited (the whole reachable space).
    pub states: usize,
    /// Transitions taken (edges of the state graph).
    pub transitions: usize,
    /// Length of the longest shortest-path from the initial state.
    pub depth: usize,
}

/// Why a check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<S> {
    /// The invariant returned `Err` in a reachable state.
    InvariantViolated {
        /// Shortest thread schedule reaching the violating state.
        schedule: Vec<usize>,
        state: S,
        reason: String,
    },
    /// A reachable state where no thread can step but not all are done.
    Deadlock { schedule: Vec<usize>, state: S },
    /// `max_states` was reached before the space was exhausted.
    StateLimit { visited: usize },
}

impl<S: Debug> std::fmt::Display for Verdict<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::InvariantViolated { schedule, state, reason } => write!(
                f,
                "invariant violated after schedule {schedule:?}: {reason} (state {state:?})"
            ),
            Verdict::Deadlock { schedule, state } => {
                write!(f, "deadlock after schedule {schedule:?} (state {state:?})")
            }
            Verdict::StateLimit { visited } => {
                write!(f, "state limit hit after {visited} states")
            }
        }
    }
}

/// Exhaustively explore every interleaving of `model`'s threads.
pub fn check<M: Model>(model: &M, opts: Options) -> Result<Report, Verdict<M::State>> {
    let initial = model.initial();
    if let Err(reason) = model.invariant(&initial) {
        return Err(Verdict::InvariantViolated { schedule: Vec::new(), state: initial, reason });
    }
    let mut visited: HashSet<M::State> = HashSet::new();
    // parent[s] = (predecessor, tid stepped) for trace reconstruction.
    let mut parent: HashMap<M::State, (M::State, usize)> = HashMap::new();
    let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
    visited.insert(initial.clone());
    queue.push_back((initial, 0));
    let mut transitions = 0usize;
    let mut depth = 0usize;
    while let Some((state, d)) = queue.pop_front() {
        depth = depth.max(d);
        let mut any_ready = false;
        let mut all_done = true;
        for tid in 0..model.n_threads() {
            match model.step(&state, tid) {
                Step::Done => {}
                Step::Blocked => all_done = false,
                Step::Ready(next) => {
                    any_ready = true;
                    all_done = false;
                    transitions += 1;
                    if visited.contains(&next) {
                        continue;
                    }
                    if let Err(reason) = model.invariant(&next) {
                        let mut schedule = trace(&parent, &state);
                        schedule.push(tid);
                        return Err(Verdict::InvariantViolated { schedule, state: next, reason });
                    }
                    visited.insert(next.clone());
                    parent.insert(next.clone(), (state.clone(), tid));
                    if visited.len() > opts.max_states {
                        return Err(Verdict::StateLimit { visited: visited.len() });
                    }
                    queue.push_back((next, d + 1));
                }
            }
        }
        if !any_ready && !all_done {
            return Err(Verdict::Deadlock { schedule: trace(&parent, &state), state });
        }
    }
    Ok(Report { states: visited.len(), transitions, depth })
}

/// Walk the parent map back to the initial state.
fn trace<S: Clone + Hash + Eq>(parent: &HashMap<S, (S, usize)>, end: &S) -> Vec<usize> {
    let mut schedule = Vec::new();
    let mut cur = end.clone();
    while let Some((prev, tid)) = parent.get(&cur) {
        schedule.push(*tid);
        cur = prev.clone();
    }
    schedule.reverse();
    schedule
}

/// Re-run a counterexample schedule from the initial state, returning
/// every intermediate state (for debugging a failed check). Stops early
/// if a scheduled thread cannot step.
pub fn replay<M: Model>(model: &M, schedule: &[usize]) -> Vec<M::State> {
    let mut states = vec![model.initial()];
    for &tid in schedule {
        let next = match model.step(&states[states.len() - 1], tid) {
            Step::Ready(next) => next,
            Step::Blocked | Step::Done => break,
        };
        states.push(next);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter. `atomic` uses one-step
    /// fetch_add; otherwise load and store are separate steps — the
    /// classic lost update.
    struct Counter {
        atomic: bool,
    }

    /// (shared counter, per-thread (pc, register))
    type CState = (u32, [(u8, u32); 2]);

    impl Model for Counter {
        type State = CState;

        fn initial(&self) -> CState {
            (0, [(0, 0); 2])
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn step(&self, s: &CState, tid: usize) -> Step<CState> {
            let (shared, mut locals) = (s.0, s.1);
            let (pc, reg) = locals[tid];
            if self.atomic {
                match pc {
                    0 => {
                        locals[tid] = (1, reg);
                        Step::Ready((shared + 1, locals))
                    }
                    _ => Step::Done,
                }
            } else {
                match pc {
                    0 => {
                        locals[tid] = (1, shared); // load
                        Step::Ready((shared, locals))
                    }
                    1 => {
                        locals[tid] = (2, reg);
                        Step::Ready((reg + 1, locals)) // store of stale read
                    }
                    _ => Step::Done,
                }
            }
        }

        fn invariant(&self, s: &CState) -> Result<(), String> {
            let all_done = s.1.iter().all(|&(pc, _)| pc == if self.atomic { 1 } else { 2 });
            if all_done && s.0 != 2 {
                return Err(format!("final counter {} != 2", s.0));
            }
            Ok(())
        }
    }

    #[test]
    fn atomic_counter_passes_exhaustively() {
        let r = check(&Counter { atomic: true }, Options::default()).unwrap();
        assert!(r.states >= 3);
        assert!(r.transitions >= r.states - 1);
    }

    #[test]
    fn split_load_store_race_is_found_with_shortest_trace() {
        let err = check(&Counter { atomic: false }, Options::default()).unwrap_err();
        match err {
            Verdict::InvariantViolated { schedule, state, reason } => {
                assert!(reason.contains("!= 2"));
                assert_eq!(state.0, 1); // the lost update
                                        // Replay reproduces the same final state.
                let states = replay(&Counter { atomic: false }, &schedule);
                assert_eq!(states.last(), Some(&state));
            }
            other => panic!("expected invariant violation, got {other}"),
        }
    }

    /// Two threads take two locks in opposite order: AB vs BA.
    struct OpposedLocks;

    /// (lock_a holder+1 or 0, lock_b holder+1 or 0, pcs)
    type LState = (u8, u8, [u8; 2]);

    impl Model for OpposedLocks {
        type State = LState;

        fn initial(&self) -> LState {
            (0, 0, [0, 0])
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn step(&self, s: &LState, tid: usize) -> Step<LState> {
            fn lock(st: &mut LState, which: usize) -> &mut u8 {
                if which == 0 {
                    &mut st.0
                } else {
                    &mut st.1
                }
            }
            let mut st = *s;
            let me = tid as u8 + 1;
            // Thread 0 takes a then b; thread 1 takes b then a.
            let order = if tid == 0 { [0usize, 1] } else { [1, 0] };
            match st.2[tid] {
                pc @ (0 | 1) => {
                    let which = order[pc as usize];
                    if *lock(&mut st, which) != 0 {
                        return Step::Blocked;
                    }
                    *lock(&mut st, which) = me;
                    st.2[tid] = pc + 1;
                    Step::Ready(st)
                }
                2 => {
                    *lock(&mut st, 0) = 0;
                    *lock(&mut st, 1) = 0;
                    st.2[tid] = 3;
                    Step::Ready(st)
                }
                _ => Step::Done,
            }
        }

        fn invariant(&self, _: &LState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn opposed_lock_order_deadlocks() {
        let err = check(&OpposedLocks, Options::default()).unwrap_err();
        match err {
            Verdict::Deadlock { schedule, state } => {
                assert_eq!(state.2, [1, 1], "both threads hold their first lock");
                assert_eq!(schedule.len(), 2);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn state_limit_is_an_explicit_error() {
        let err = check(&Counter { atomic: false }, Options { max_states: 2 }).unwrap_err();
        assert!(matches!(err, Verdict::StateLimit { .. }));
    }
}
