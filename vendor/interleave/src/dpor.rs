//! Depth-first stateless exploration with dynamic partial-order
//! reduction (DPOR).
//!
//! The engine behind [`check_dpor`]: a DFS over thread schedules in the
//! Flanagan–Godefroid style —
//!
//! * **Backtrack (persistent) sets.** When the search discovers that
//!   thread `p`'s next transition is dependent with a transition `t`
//!   executed earlier on the current path, it adds `p` to the backtrack
//!   set of the state `t` was executed from: the reversal `p before t`
//!   belongs to a different Mazurkiewicz trace and must be explored.
//!   Only reversals of *dependent* pairs are scheduled — commuting
//!   interleavings are never enumerated.
//! * **Sleep sets.** After thread `p` is fully explored from a state,
//!   `p` sleeps there: any sibling exploration that would begin with a
//!   transition independent of everything that distinguishes it from
//!   the explored branch is cut. Together with backtrack sets this
//!   removes almost all redundant recombinations of independent steps.
//! * **Bounded preemption fallback.** With
//!   [`DporOptions::preemption_bound`] set, schedules that preempt a
//!   still-enabled thread more than the bound are pruned and the report
//!   is marked incomplete — a budgeted under-approximation for models
//!   too big to finish exhaustively (most real bugs need ≤2
//!   preemptions).
//! * **Shortest-counterexample replay.** A DFS counterexample is an
//!   arbitrary-length path; when one is found, a bounded deterministic
//!   BFS pass re-derives the *shortest* trace to a violation so the
//!   printed schedule is minimal. [`replay_nd`] re-executes a trace
//!   step by step for debugging.
//!
//! Dependence is keyed on the [`Op`] labels models attach to their
//! transitions; a model must label honestly (an op dependence relation
//! that under-approximates real non-commutation would make the
//! reduction unsound). The default [`crate::Model::op`] labels
//! everything as conflicting, which is always sound.

use crate::{NdModel, Op, Report, Steps};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// One scheduling decision: thread `tid` takes its branch `branch`
/// (branch > 0 only for nondeterministic steps, e.g. a relaxed load
/// observing an older write).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Choice {
    pub tid: usize,
    pub branch: usize,
}

/// Exploration bounds for the DPOR engine.
#[derive(Debug, Clone, Copy)]
pub struct DporOptions {
    /// Abort (as [`NdVerdict::Budget`]) after exploring this many nodes.
    pub max_nodes: usize,
    /// If set, prune schedules with more than this many preemptions
    /// (context switches away from a still-enabled thread). `None` ⇒
    /// exhaustive up to DPOR equivalence.
    pub preemption_bound: Option<usize>,
    /// Re-derive the shortest counterexample by bounded BFS before
    /// reporting (on by default).
    pub shorten: bool,
    /// State budget for the shortening pass.
    pub shorten_budget: usize,
}

impl Default for DporOptions {
    fn default() -> Self {
        DporOptions {
            max_nodes: 5_000_000,
            preemption_bound: None,
            shorten: true,
            shorten_budget: 200_000,
        }
    }
}

/// Exploration statistics for a passing DPOR check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DporReport {
    /// DFS nodes visited (state *visits*, not deduplicated states —
    /// the honest cost of the stateless search).
    pub nodes: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Maximal executions (complete interleavings) explored.
    pub traces: usize,
    /// Longest schedule explored.
    pub depth: usize,
    /// Thread choices cut by the preemption bound.
    pub pruned: usize,
    /// True iff nothing was pruned: the model passed exhaustively up to
    /// DPOR equivalence.
    pub complete: bool,
}

/// Why a DPOR (or nondeterministic BFS) check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdVerdict<S> {
    InvariantViolated {
        trace: Vec<Choice>,
        state: S,
        reason: String,
        /// True if the trace was minimized by the BFS shortening pass.
        shortest: bool,
    },
    Deadlock {
        trace: Vec<Choice>,
        state: S,
        shortest: bool,
    },
    /// The node budget was exhausted before the space was.
    Budget {
        explored: usize,
    },
}

fn fmt_trace(trace: &[Choice], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "[")?;
    for (i, c) in trace.iter().enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        if c.branch == 0 {
            write!(f, "{}", c.tid)?;
        } else {
            write!(f, "{}.{}", c.tid, c.branch)?;
        }
    }
    write!(f, "]")
}

impl<S: Debug> std::fmt::Display for NdVerdict<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdVerdict::InvariantViolated { trace, state, reason, shortest } => {
                write!(
                    f,
                    "invariant violated after {}trace ",
                    if *shortest { "shortest " } else { "" }
                )?;
                fmt_trace(trace, f)?;
                write!(f, ": {reason} (state {state:?})")
            }
            NdVerdict::Deadlock { trace, state, shortest } => {
                write!(f, "deadlock after {}trace ", if *shortest { "shortest " } else { "" })?;
                fmt_trace(trace, f)?;
                write!(f, " (state {state:?})")
            }
            NdVerdict::Budget { explored } => {
                write!(f, "node budget hit after {explored} nodes")
            }
        }
    }
}

/// One DFS stack entry: a reached state plus the exploration bookkeeping
/// DPOR needs about it.
struct Frame<S> {
    state: S,
    /// Per tid: the branches of its next step (`None` ⇒ blocked/done).
    steps: Vec<Option<Vec<(Op, S)>>>,
    /// Tids with `Some` steps, ascending.
    enabled: Vec<usize>,
    any_blocked: bool,
    /// Threads whose reversal must be explored from here.
    backtrack: BTreeSet<usize>,
    /// Threads already covered from here (explored or inherited).
    sleep: BTreeSet<usize>,
    /// Edge from the parent that reached this frame (root: `None`).
    entered: Option<Choice>,
    entered_op: Op,
    /// Thread currently being expanded, and its next branch index.
    cur: Option<usize>,
    next_branch: usize,
    /// Preemptions accumulated along the path to this frame.
    preemptions: usize,
}

fn make_frame<M: NdModel>(
    model: &M,
    state: M::State,
    entered: Option<Choice>,
    entered_op: Op,
    preemptions: usize,
    sleep: BTreeSet<usize>,
) -> Frame<M::State> {
    let n = model.n_threads();
    let mut steps = Vec::with_capacity(n);
    let mut enabled = Vec::new();
    let mut any_blocked = false;
    for tid in 0..n {
        match model.steps(&state, tid) {
            Steps::Ready(branches) => {
                debug_assert!(!branches.is_empty(), "Ready must carry at least one branch");
                enabled.push(tid);
                steps.push(Some(branches));
            }
            Steps::Blocked => {
                any_blocked = true;
                steps.push(None);
            }
            Steps::Done => steps.push(None),
        }
    }
    Frame {
        state,
        steps,
        enabled,
        any_blocked,
        backtrack: BTreeSet::new(),
        sleep,
        entered,
        entered_op,
        cur: None,
        next_branch: 0,
        preemptions,
    }
}

fn trace_of<S>(stack: &[Frame<S>]) -> Vec<Choice> {
    stack.iter().filter_map(|f| f.entered).collect()
}

/// True iff any branch op of `steps` is dependent with `op`.
fn any_dependent<S>(steps: &[(Op, S)], op: Op) -> bool {
    steps.iter().any(|(o, _)| o.dependent(op))
}

/// Explore `model` by DFS with dynamic partial-order reduction. See the
/// module docs for the algorithm; deterministic by construction (thread
/// ids ascending, branch order as the model returns it).
pub fn check_dpor<M: NdModel>(
    model: &M,
    opts: DporOptions,
) -> Result<DporReport, NdVerdict<M::State>> {
    let initial = model.initial();
    if let Err(reason) = model.invariant(&initial) {
        return Err(NdVerdict::InvariantViolated {
            trace: Vec::new(),
            state: initial,
            reason,
            shortest: true,
        });
    }
    let mut report =
        DporReport { nodes: 0, transitions: 0, traces: 0, depth: 0, pruned: 0, complete: true };
    let mut stack: Vec<Frame<M::State>> = Vec::new();
    let root = make_frame(model, initial, None, Op::Local, 0, BTreeSet::new());
    push(model, root, &mut stack, &mut report, &opts)?;

    while !stack.is_empty() {
        let top_idx = stack.len() - 1;
        if let Some(t) = stack[top_idx].cur {
            let branches = stack[top_idx].steps[t].as_ref().map(|b| b.len()).unwrap_or(0);
            if stack[top_idx].next_branch >= branches {
                // Thread fully explored from this frame: it sleeps here.
                stack[top_idx].sleep.insert(t);
                stack[top_idx].cur = None;
                continue;
            }
            let b = stack[top_idx].next_branch;
            stack[top_idx].next_branch += 1;
            // Preemption bound: switching away from the thread that
            // entered this frame while it is still enabled costs one.
            let preempt = {
                let top = &stack[top_idx];
                top.preemptions
                    + usize::from(
                        matches!(top.entered, Some(e) if e.tid != t && top.steps[e.tid].is_some()),
                    )
            };
            if let Some(bound) = opts.preemption_bound {
                if preempt > bound {
                    report.pruned += 1;
                    report.complete = false;
                    // The bound is a property of the thread choice, not
                    // the branch: skip the whole thread.
                    stack[top_idx].next_branch = branches;
                    continue;
                }
            }
            let (op, next_state) =
                stack[top_idx].steps[t].as_ref().expect("cur thread is enabled")[b].clone();
            report.transitions += 1;
            if let Err(reason) = model.invariant(&next_state) {
                let mut trace = trace_of(&stack);
                trace.push(Choice { tid: t, branch: b });
                return Err(finish_violation(model, &opts, trace, next_state, reason));
            }
            // Inherit the sleepers whose next step commutes with this
            // transition — their exploration is covered elsewhere.
            let child_sleep: BTreeSet<usize> = {
                let top = &stack[top_idx];
                top.sleep
                    .iter()
                    .copied()
                    .filter(|&q| match &top.steps[q] {
                        Some(qsteps) => !any_dependent(qsteps, op),
                        None => true,
                    })
                    .collect()
            };
            let child = make_frame(
                model,
                next_state,
                Some(Choice { tid: t, branch: b }),
                op,
                preempt,
                child_sleep,
            );
            push(model, child, &mut stack, &mut report, &opts)?;
            continue;
        }

        // No thread mid-exploration: pick the next from the backtrack
        // set (ascending tid, skipping sleepers), or pop.
        let next = {
            let top = &stack[top_idx];
            top.backtrack.iter().copied().find(|t| !top.sleep.contains(t))
        };
        match next {
            Some(t) => {
                stack[top_idx].cur = Some(t);
                stack[top_idx].next_branch = 0;
            }
            None => {
                stack.pop();
            }
        }
    }
    Ok(report)
}

/// Handle a freshly created frame: budget, terminal detection, DPOR
/// backtrack-point computation, and initial thread selection.
fn push<M: NdModel>(
    model: &M,
    frame: Frame<M::State>,
    stack: &mut Vec<Frame<M::State>>,
    report: &mut DporReport,
    opts: &DporOptions,
) -> Result<(), NdVerdict<M::State>> {
    report.nodes += 1;
    if report.nodes > opts.max_nodes {
        return Err(NdVerdict::Budget { explored: report.nodes });
    }
    stack.push(frame);
    report.depth = report.depth.max(stack.len() - 1);
    let top_idx = stack.len() - 1;

    if stack[top_idx].enabled.is_empty() {
        if stack[top_idx].any_blocked {
            let trace = trace_of(stack);
            let state = stack[top_idx].state.clone();
            return Err(finish_deadlock(model, opts, trace, state));
        }
        report.traces += 1;
        stack.pop();
        return Ok(());
    }

    // DPOR: for each enabled thread p, find the most recent executed
    // transition by another thread that is dependent with p's next
    // step, and schedule the reversal at its pre-state.
    for i in 0..stack[top_idx].enabled.len() {
        let p = stack[top_idx].enabled[i];
        let p_ops: Vec<Op> = stack[top_idx].steps[p]
            .as_ref()
            .map(|br| br.iter().map(|(o, _)| *o).collect())
            .unwrap_or_default();
        for j in (1..=top_idx).rev() {
            let e = stack[j].entered.expect("non-root frames record their edge");
            if e.tid == p {
                // p's own past transitions trivially happen-before its
                // next one — skip them, but keep scanning: an older
                // transition by another thread is still concurrent with
                // next(p) even if p has stepped since.
                continue;
            }
            if p_ops.iter().any(|o| o.dependent(stack[j].entered_op)) {
                let pre = j - 1;
                if stack[pre].steps[p].is_some() {
                    stack[pre].backtrack.insert(p);
                } else {
                    // p was not enabled at the pre-state: fall back to
                    // exploring every enabled thread there.
                    let all: Vec<usize> = stack[pre].enabled.clone();
                    stack[pre].backtrack.extend(all);
                }
                break;
            }
        }
    }

    // Seed the backtrack set with the first non-sleeping enabled
    // thread (ascending tid keeps exploration deterministic). If every
    // enabled thread sleeps, this node is covered elsewhere: cut.
    let seed = stack[top_idx].enabled.iter().copied().find(|t| !stack[top_idx].sleep.contains(t));
    match seed {
        Some(t) => {
            stack[top_idx].backtrack.insert(t);
        }
        None => {
            stack.pop();
        }
    }
    Ok(())
}

fn finish_violation<M: NdModel>(
    model: &M,
    opts: &DporOptions,
    trace: Vec<Choice>,
    state: M::State,
    reason: String,
) -> NdVerdict<M::State> {
    if opts.shorten {
        if let Some(v) = shortest_counterexample(model, opts.shorten_budget) {
            return v;
        }
    }
    NdVerdict::InvariantViolated { trace, state, reason, shortest: false }
}

fn finish_deadlock<M: NdModel>(
    model: &M,
    opts: &DporOptions,
    trace: Vec<Choice>,
    state: M::State,
) -> NdVerdict<M::State> {
    if opts.shorten {
        if let Some(v) = shortest_counterexample(model, opts.shorten_budget) {
            return v;
        }
    }
    NdVerdict::Deadlock { trace, state, shortest: false }
}

/// Bounded deterministic BFS to the *nearest* violation of any kind;
/// used to minimize DFS counterexamples. Returns `None` if the budget
/// runs out first.
fn shortest_counterexample<M: NdModel>(model: &M, budget: usize) -> Option<NdVerdict<M::State>> {
    match check_nd(model, budget) {
        Err(v @ (NdVerdict::InvariantViolated { .. } | NdVerdict::Deadlock { .. })) => Some(v),
        _ => None,
    }
}

/// Exhaustive deterministic BFS over an [`NdModel`] with a visited set
/// — the unreduced baseline the DPOR engine is measured against, and
/// the shortening pass for its counterexamples. Counterexample traces
/// are shortest by construction.
pub fn check_nd<M: NdModel>(model: &M, max_states: usize) -> Result<Report, NdVerdict<M::State>> {
    let initial = model.initial();
    if let Err(reason) = model.invariant(&initial) {
        return Err(NdVerdict::InvariantViolated {
            trace: Vec::new(),
            state: initial,
            reason,
            shortest: true,
        });
    }
    let mut visited: HashSet<M::State> = HashSet::new();
    let mut parent: HashMap<M::State, (M::State, Choice)> = HashMap::new();
    let mut queue: VecDeque<(M::State, usize)> = VecDeque::new();
    visited.insert(initial.clone());
    queue.push_back((initial, 0));
    let mut transitions = 0usize;
    let mut depth = 0usize;
    while let Some((state, d)) = queue.pop_front() {
        depth = depth.max(d);
        let mut any_ready = false;
        let mut any_blocked = false;
        for tid in 0..model.n_threads() {
            match model.steps(&state, tid) {
                Steps::Done => {}
                Steps::Blocked => any_blocked = true,
                Steps::Ready(branches) => {
                    any_ready = true;
                    for (branch, (_, next)) in branches.into_iter().enumerate() {
                        transitions += 1;
                        if visited.contains(&next) {
                            continue;
                        }
                        let choice = Choice { tid, branch };
                        if let Err(reason) = model.invariant(&next) {
                            let mut trace = trace_nd(&parent, &state);
                            trace.push(choice);
                            return Err(NdVerdict::InvariantViolated {
                                trace,
                                state: next,
                                reason,
                                shortest: true,
                            });
                        }
                        visited.insert(next.clone());
                        parent.insert(next.clone(), (state.clone(), choice));
                        if visited.len() > max_states {
                            return Err(NdVerdict::Budget { explored: visited.len() });
                        }
                        queue.push_back((next, d + 1));
                    }
                }
            }
        }
        if !any_ready && any_blocked {
            return Err(NdVerdict::Deadlock {
                trace: trace_nd(&parent, &state),
                state,
                shortest: true,
            });
        }
    }
    Ok(Report { states: visited.len(), transitions, depth })
}

fn trace_nd<S: Clone + Hash + Eq>(parent: &HashMap<S, (S, Choice)>, end: &S) -> Vec<Choice> {
    let mut trace = Vec::new();
    let mut cur = end.clone();
    while let Some((prev, c)) = parent.get(&cur) {
        trace.push(*c);
        cur = prev.clone();
    }
    trace.reverse();
    trace
}

/// Re-run a counterexample trace from the initial state, returning
/// every intermediate state. Stops early if a choice is unavailable.
pub fn replay_nd<M: NdModel>(model: &M, trace: &[Choice]) -> Vec<M::State> {
    let mut states = vec![model.initial()];
    for &Choice { tid, branch } in trace {
        let next = match model.steps(&states[states.len() - 1], tid) {
            Steps::Ready(mut branches) if branch < branches.len() => branches.swap_remove(branch).1,
            _ => break,
        };
        states.push(next);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Mem, MemOrd};
    use crate::{Loc, Op};

    /// N threads each write their own location then read a neighbor's:
    /// heavily independent, the shape DPOR collapses and BFS does not.
    struct Independent {
        threads: usize,
        writes_per_thread: usize,
    }

    /// (per-thread pc)
    type IState = (Vec<u8>, Vec<u64>);

    impl NdModel for Independent {
        type State = IState;

        fn initial(&self) -> IState {
            (vec![0; self.threads], vec![0; self.threads * self.writes_per_thread])
        }

        fn n_threads(&self) -> usize {
            self.threads
        }

        fn steps(&self, s: &IState, tid: usize) -> Steps<IState> {
            let pc = s.0[tid] as usize;
            if pc >= self.writes_per_thread {
                return Steps::Done;
            }
            let mut st = s.clone();
            st.0[tid] += 1;
            let slot = tid * self.writes_per_thread + pc;
            st.1[slot] = (tid * 100 + pc) as u64;
            Steps::Ready(vec![(Op::Write(slot as Loc), st)])
        }

        fn invariant(&self, _: &IState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn independent_writers_collapse_to_one_trace() {
        let m = Independent { threads: 3, writes_per_thread: 3 };
        let r = check_dpor(&m, DporOptions::default()).expect("no violations");
        assert_eq!(r.traces, 1, "fully independent ⇒ a single Mazurkiewicz trace: {r:?}");
        assert!(r.complete);
        let bfs = check_nd(&m, 1_000_000).expect("no violations");
        assert!(
            r.nodes < bfs.states,
            "DPOR ({} nodes) must beat BFS ({} states)",
            r.nodes,
            bfs.states
        );
    }

    /// Two threads racing a non-atomic counter, expressed over the
    /// modeled memory: load Relaxed, then store Relaxed of reg+1.
    struct RacyCounter;

    #[derive(Clone, Hash, PartialEq, Eq, Debug)]
    struct RState {
        mem: Mem,
        pc: [u8; 2],
        reg: [u64; 2],
    }

    const CTR: Loc = 0;

    impl NdModel for RacyCounter {
        type State = RState;

        fn initial(&self) -> RState {
            RState { mem: Mem::new(2, &[0]), pc: [0, 0], reg: [0, 0] }
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn steps(&self, s: &RState, tid: usize) -> Steps<RState> {
            match s.pc[tid] {
                0 => Steps::Ready(
                    s.mem
                        .load(tid, CTR, MemOrd::Relaxed)
                        .into_iter()
                        .map(|(v, mem)| {
                            let mut st = s.clone();
                            st.mem = mem;
                            st.reg[tid] = v;
                            st.pc[tid] = 1;
                            (Op::Read(CTR), st)
                        })
                        .collect(),
                ),
                1 => {
                    let mut st = s.clone();
                    st.mem = s.mem.store(tid, CTR, s.reg[tid] + 1, MemOrd::Relaxed);
                    st.pc[tid] = 2;
                    Steps::Ready(vec![(Op::Write(CTR), st)])
                }
                _ => Steps::Done,
            }
        }

        fn invariant(&self, s: &RState) -> Result<(), String> {
            if s.pc.iter().all(|&pc| pc == 2) && s.mem.peek(CTR) != 2 {
                return Err(format!("final counter {} != 2", s.mem.peek(CTR)));
            }
            Ok(())
        }
    }

    #[test]
    fn racy_counter_refuted_with_shortest_replayable_trace() {
        let v = check_dpor(&RacyCounter, DporOptions::default()).expect_err("race must be found");
        match &v {
            NdVerdict::InvariantViolated { trace, state, reason, shortest } => {
                assert!(reason.contains("!= 2"), "{reason}");
                assert!(*shortest, "shortening pass must run");
                // 2 loads + 2 stores is the whole program: the shortest
                // counterexample is a complete 4-step schedule.
                assert_eq!(trace.len(), 4, "{v}");
                let states = replay_nd(&RacyCounter, trace);
                assert_eq!(states.last(), Some(state), "trace must replay to the same state");
            }
            other => panic!("expected invariant violation, got {other}"),
        }
        // The printed form carries the schedule.
        assert!(format!("{v}").contains("shortest trace"));
    }

    /// Same counter with a one-step AcqRel RMW: correct under every
    /// interleaving.
    struct RmwCounter;

    impl NdModel for RmwCounter {
        type State = RState;

        fn initial(&self) -> RState {
            RState { mem: Mem::new(2, &[0]), pc: [0, 0], reg: [0, 0] }
        }

        fn n_threads(&self) -> usize {
            2
        }

        fn steps(&self, s: &RState, tid: usize) -> Steps<RState> {
            match s.pc[tid] {
                0 => {
                    let (old, mem) = s.mem.rmw(tid, CTR, MemOrd::AcqRel, |v| v + 1);
                    let mut st = s.clone();
                    st.mem = mem;
                    st.reg[tid] = old;
                    st.pc[tid] = 1;
                    Steps::Ready(vec![(Op::CasOk(CTR), st)])
                }
                _ => Steps::Done,
            }
        }

        fn invariant(&self, s: &RState) -> Result<(), String> {
            if s.pc.iter().all(|&pc| pc == 1) && s.mem.peek(CTR) != 2 {
                return Err(format!("final counter {} != 2", s.mem.peek(CTR)));
            }
            Ok(())
        }
    }

    #[test]
    fn rmw_counter_passes_exhaustively() {
        let r = check_dpor(&RmwCounter, DporOptions::default()).expect("fetch_add is correct");
        assert!(r.complete);
        assert!(r.traces >= 2, "both RMW orders are dependent and explored: {r:?}");
    }

    #[test]
    fn legacy_models_run_under_dpor_via_the_blanket_impl() {
        // `Model` implementors get wildcard ops: no reduction, same
        // verdicts.
        use crate::{Model, Step};
        struct Toggle;
        impl Model for Toggle {
            type State = (u8, [bool; 2]);
            fn initial(&self) -> Self::State {
                (0, [false; 2])
            }
            fn n_threads(&self) -> usize {
                2
            }
            fn step(&self, s: &Self::State, tid: usize) -> Step<Self::State> {
                if s.1[tid] {
                    return Step::Done;
                }
                let mut st = *s;
                st.0 += 1;
                st.1[tid] = true;
                Step::Ready(st)
            }
            fn invariant(&self, s: &Self::State) -> Result<(), String> {
                if s.1.iter().all(|&d| d) && s.0 != 2 {
                    return Err("lost toggle".into());
                }
                Ok(())
            }
        }
        let r = check_dpor(&Toggle, DporOptions::default()).expect("toggle is correct");
        assert_eq!(r.traces, 2);
    }

    #[test]
    fn preemption_bound_prunes_and_reports_incomplete() {
        let m = Independent { threads: 3, writes_per_thread: 2 };
        // Bound 0 with wildcard-free ops: the single non-preemptive
        // trace survives, nothing to prune (all independent).
        let r = check_dpor(&m, DporOptions { preemption_bound: Some(0), ..Default::default() })
            .expect("no violations");
        assert!(r.complete);
        // A dependent model under bound 0 must prune.
        let r = check_dpor(
            &RmwCounter,
            DporOptions { preemption_bound: Some(0), ..Default::default() },
        )
        .expect("no violations");
        // Both orders of the two dependent RMWs start thread-0-first or
        // thread-1-first without preemption (a finished thread is not
        // preempted), so this stays complete; bound it tighter via a
        // racy model instead.
        let _ = r;
        let v = check_dpor(
            &RacyCounter,
            DporOptions { preemption_bound: Some(2), ..Default::default() },
        );
        assert!(v.is_err(), "two preemptions are enough to lose an update");
    }

    #[test]
    fn dpor_verdicts_are_deterministic_across_runs() {
        let runs: Vec<_> = (0..3)
            .map(|_| check_dpor(&RacyCounter, DporOptions::default()).expect_err("race"))
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn node_budget_is_an_explicit_error() {
        let m = Independent { threads: 3, writes_per_thread: 3 };
        let v = check_dpor(&m, DporOptions { max_nodes: 3, ..Default::default() })
            .expect_err("budget must trip");
        assert!(matches!(v, NdVerdict::Budget { .. }));
    }

    #[test]
    fn nd_bfs_matches_legacy_bfs_on_deterministic_models() {
        let legacy = crate::check(&RmwLegacy, crate::Options::default()).expect("passes");
        let nd = check_nd(&RmwLegacy, 1_000_000).expect("passes");
        assert_eq!(legacy.states, nd.states);
        assert_eq!(legacy.depth, nd.depth);
    }

    /// Deterministic two-thread toggle used for the BFS parity test.
    struct RmwLegacy;
    impl crate::Model for RmwLegacy {
        type State = (u8, [u8; 2]);
        fn initial(&self) -> Self::State {
            (0, [0; 2])
        }
        fn n_threads(&self) -> usize {
            2
        }
        fn step(&self, s: &Self::State, tid: usize) -> crate::Step<Self::State> {
            if s.1[tid] >= 2 {
                return crate::Step::Done;
            }
            let mut st = *s;
            st.0 = st.0.wrapping_add(1);
            st.1[tid] += 1;
            crate::Step::Ready(st)
        }
        fn invariant(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
    }
}
