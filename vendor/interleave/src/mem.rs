//! Modeled atomic memory with explicit C11-style ordering semantics.
//!
//! A [`Mem`] is a small operational release/acquire machine, the piece
//! that lets protocol models distinguish `Relaxed` from
//! `Acquire`/`Release`/`SeqCst` instead of pretending every atomic op is
//! sequentially consistent (which would make "dropped fence" mutants
//! unfalsifiable):
//!
//! * Every write to a location appends a timestamped **message**. A
//!   *releasing* write snapshots the writer's whole view into the
//!   message; a *relaxed* write carries only its own `(loc, ts)`.
//! * Every thread carries a **view**: per location, the timestamp of
//!   the newest write it is aware of. A load may observe *any* message
//!   at or after the thread's view front — that nondeterminism is what
//!   the checker branches on. An *acquiring* load joins the message's
//!   view into the reader's, which is exactly how `Release`→`Acquire`
//!   message passing forces the reader to see everything the writer did
//!   before the release.
//! * RMWs ([`Mem::rmw`], [`Mem::cas`]) read the newest message
//!   (modification-order maximum), giving CAS its atomicity.
//!
//! Two documented strengthenings relative to C11 (both on the side of
//! *fewer* modeled behaviors, so a bug the machine finds is real, while
//! correct-under-this-machine still certifies the orderings the
//! workspace actually uses):
//!
//! * `SeqCst` is modeled as Acquire/Release plus "reads observe the
//!   newest message" — per-location sequential consistency. None of the
//!   modeled protocols rely on multi-location SC (no IRIW shapes).
//! * Standalone fences are not modeled; orderings ride on the accesses,
//!   which is how the real `pool`/`pipeline` code is written.
//! * Relaxed RMWs do not extend release sequences (the correct
//!   protocols here use `AcqRel` RMWs, which carry their full view).
//!
//! Timestamps are renormalized after every operation
//! ([`Mem::normalize`]): messages older than every thread's front are
//! garbage-collected and timestamps are rebased to zero, so states that
//! differ only by dead history hash equal and explicit-state dedup
//! stays effective.

use crate::Loc;

/// Memory ordering for modeled atomic operations; mirrors
/// `std::sync::atomic::Ordering` (minus `Consume`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrd {
    fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
}

/// One write message: a value at a per-location timestamp, plus the
/// view an acquiring reader inherits.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Msg {
    ts: u32,
    val: u64,
    view: Vec<u32>,
}

/// Modeled shared memory: per-location message lists plus per-thread
/// views. `Clone + Hash + Eq` so it embeds directly in model states.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Mem {
    /// `writes[loc]`: retained messages, ascending timestamp, never empty.
    writes: Vec<Vec<Msg>>,
    /// `views[tid][loc]`: front — the newest timestamp thread `tid` is
    /// bound to observe at `loc`.
    views: Vec<Vec<u32>>,
}

fn join(dst: &mut [u32], src: &[u32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl Mem {
    /// Fresh memory: one initial message per location, all views at 0.
    pub fn new(n_threads: usize, init: &[u64]) -> Self {
        let n_locs = init.len();
        Mem {
            writes: init
                .iter()
                .map(|&v| vec![Msg { ts: 0, val: v, view: vec![0; n_locs] }])
                .collect(),
            views: vec![vec![0; n_locs]; n_threads],
        }
    }

    pub fn n_locs(&self) -> usize {
        self.writes.len()
    }

    fn newest(&self, loc: Loc) -> &Msg {
        let msgs = &self.writes[loc as usize];
        &msgs[msgs.len() - 1]
    }

    /// The newest value at `loc` — for invariants and tests only; does
    /// not move any view.
    pub fn peek(&self, loc: Loc) -> u64 {
        self.newest(loc).val
    }

    /// Every value a `load(ord)` by `tid` may observe, with the
    /// resulting memory. Deterministic order (ascending timestamp);
    /// branches whose observable outcome coincides are deduplicated.
    pub fn load(&self, tid: usize, loc: Loc, ord: MemOrd) -> Vec<(u64, Mem)> {
        let l = loc as usize;
        let front = self.views[tid][l];
        let newest_ts = self.newest(loc).ts;
        let mut out: Vec<(u64, Mem)> = Vec::new();
        for msg in &self.writes[l] {
            if msg.ts < front {
                continue;
            }
            // SeqCst loads observe the newest message only.
            if ord == MemOrd::SeqCst && msg.ts != newest_ts {
                continue;
            }
            let mut m = self.clone();
            m.views[tid][l] = msg.ts;
            if ord.acquires() {
                let view = msg.view.clone();
                join(&mut m.views[tid], &view);
            }
            m.normalize();
            let branch = (msg.val, m);
            if !out.contains(&branch) {
                out.push(branch);
            }
        }
        out
    }

    /// Append a write of `val` to `loc` with ordering `ord`.
    pub fn store(&self, tid: usize, loc: Loc, val: u64, ord: MemOrd) -> Mem {
        let mut m = self.clone();
        m.store_in_place(tid, loc, val, ord);
        m.normalize();
        m
    }

    fn store_in_place(&mut self, tid: usize, loc: Loc, val: u64, ord: MemOrd) {
        let l = loc as usize;
        let ts = self.newest(loc).ts + 1;
        self.views[tid][l] = ts;
        let view = if ord.releases() {
            self.views[tid].clone()
        } else {
            let mut thin = vec![0; self.n_locs()];
            thin[l] = ts;
            thin
        };
        self.writes[l].push(Msg { ts, val, view });
    }

    /// Atomic read-modify-write: reads the newest message (that is the
    /// atomicity guarantee), applies `f`, writes the result. Returns
    /// the old value. `ord` covers both halves (`AcqRel` behaves like
    /// the real `fetch_*(AcqRel)`).
    pub fn rmw(&self, tid: usize, loc: Loc, ord: MemOrd, f: impl FnOnce(u64) -> u64) -> (u64, Mem) {
        let l = loc as usize;
        let (old_val, old_view, old_ts) = {
            let msg = self.newest(loc);
            (msg.val, msg.view.clone(), msg.ts)
        };
        let mut m = self.clone();
        m.views[tid][l] = old_ts;
        if ord.acquires() {
            join(&mut m.views[tid], &old_view);
        }
        m.store_in_place(tid, loc, f(old_val), ord);
        m.normalize();
        (old_val, m)
    }

    /// `compare_exchange` with explicit success and failure orderings.
    /// Returns `Ok(old)` on success (old == `expect`) or `Err(found)`.
    pub fn cas(
        &self,
        tid: usize,
        loc: Loc,
        expect: u64,
        new: u64,
        ok: MemOrd,
        fail: MemOrd,
    ) -> (Result<u64, u64>, Mem) {
        let l = loc as usize;
        let (cur_val, cur_view, cur_ts) = {
            let msg = self.newest(loc);
            (msg.val, msg.view.clone(), msg.ts)
        };
        if cur_val == expect {
            let (old, m) = self.rmw(tid, loc, ok, |_| new);
            (Ok(old), m)
        } else {
            // Failure is a load of the newest value with `fail` ordering.
            let mut m = self.clone();
            m.views[tid][l] = cur_ts;
            if fail.acquires() {
                join(&mut m.views[tid], &cur_view);
            }
            m.normalize();
            (Err(cur_val), m)
        }
    }

    /// Join thread `to`'s view with thread `from`'s: the
    /// happens-before edge of a non-memory synchronization primitive
    /// (`std::thread::unpark` → `park` return, which the standard
    /// library guarantees is release/acquire).
    pub fn transfer(&self, from: usize, to: usize) -> Mem {
        let mut m = self.clone();
        let src = m.views[from].clone();
        join(&mut m.views[to], &src);
        m.normalize();
        m
    }

    /// Garbage-collect messages no thread can observe any more and
    /// rebase timestamps to zero, canonicalizing the state.
    fn normalize(&mut self) {
        let n_locs = self.n_locs();
        let mut mins = vec![0u32; n_locs];
        for (l, min) in mins.iter_mut().enumerate() {
            *min = self.views.iter().map(|v| v[l]).min().unwrap_or(0);
        }
        for (l, &m) in mins.iter().enumerate() {
            if m == 0 {
                continue;
            }
            self.writes[l].retain(|msg| msg.ts >= m);
            for v in &mut self.views {
                v[l] -= m;
            }
        }
        for msgs in &mut self.writes {
            for msg in msgs {
                for (l, &m) in mins.iter().enumerate() {
                    if m != 0 {
                        // A message view below the GC floor is
                        // observationally equivalent to the floor.
                        msg.view[l] = msg.view[l].max(m) - m;
                    }
                }
            }
        }
        for (l, &m) in mins.iter().enumerate() {
            if m != 0 {
                for msg in &mut self.writes[l] {
                    msg.ts -= m;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: Loc = 0;
    const FLAG: Loc = 1;

    /// Writer: data = 7 (Relaxed), flag = 1 (`w_ord`). Reader: sees
    /// flag == 1 (`r_ord`), then loads data (Relaxed). Returns every
    /// data value the reader can observe after seeing the flag.
    fn message_passing(w_ord: MemOrd, r_ord: MemOrd) -> Vec<u64> {
        let m0 = Mem::new(2, &[0, 0]);
        let m1 = m0.store(0, DATA, 7, MemOrd::Relaxed);
        let m2 = m1.store(0, FLAG, 1, w_ord);
        let mut seen = Vec::new();
        for (flag, m3) in m2.load(1, FLAG, r_ord) {
            if flag != 1 {
                continue;
            }
            for (data, _) in m3.load(1, DATA, MemOrd::Relaxed) {
                if !seen.contains(&data) {
                    seen.push(data);
                }
            }
        }
        seen.sort_unstable();
        seen
    }

    #[test]
    fn release_acquire_forbids_stale_data() {
        assert_eq!(message_passing(MemOrd::Release, MemOrd::Acquire), vec![7]);
    }

    #[test]
    fn relaxed_flag_write_permits_stale_data() {
        // The dropped-release mutant: the reader can see flag=1 yet
        // stale data=0.
        assert_eq!(message_passing(MemOrd::Relaxed, MemOrd::Acquire), vec![0, 7]);
    }

    #[test]
    fn relaxed_flag_read_permits_stale_data() {
        assert_eq!(message_passing(MemOrd::Release, MemOrd::Relaxed), vec![0, 7]);
    }

    #[test]
    fn seqcst_load_reads_only_the_newest() {
        let m = Mem::new(2, &[0]);
        let m = m.store(0, 0, 1, MemOrd::SeqCst);
        let m = m.store(0, 0, 2, MemOrd::SeqCst);
        let reads = m.load(1, 0, MemOrd::SeqCst);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].0, 2);
        // A relaxed load may still see every retained message.
        assert_eq!(m.load(1, 0, MemOrd::Relaxed).len(), 3);
    }

    #[test]
    fn cas_reads_the_newest_message() {
        let m = Mem::new(2, &[5]);
        let m = m.store(0, 0, 6, MemOrd::Relaxed);
        // Thread 1 never read loc 0, but CAS must still see 6.
        let (r, m) = m.cas(1, 0, 5, 9, MemOrd::AcqRel, MemOrd::Acquire);
        assert_eq!(r, Err(6));
        let (r, m) = m.cas(1, 0, 6, 9, MemOrd::AcqRel, MemOrd::Acquire);
        assert_eq!(r, Ok(6));
        assert_eq!(m.peek(0), 9);
    }

    #[test]
    fn acqrel_rmw_publishes_prior_writes() {
        // Thread 0: data = 7 relaxed, then fetch_add(flag, AcqRel).
        // Thread 1: fetch_add(flag, AcqRel) (joins t0's view through the
        // RMW chain), then a relaxed data load must see 7.
        let m = Mem::new(2, &[0, 0]);
        let m = m.store(0, DATA, 7, MemOrd::Relaxed);
        let (_, m) = m.rmw(0, FLAG, MemOrd::AcqRel, |v| v + 1);
        let (_, m) = m.rmw(1, FLAG, MemOrd::AcqRel, |v| v + 1);
        let reads = m.load(1, DATA, MemOrd::Relaxed);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].0, 7);
    }

    #[test]
    fn transfer_carries_the_unparker_view() {
        // Writer stores data relaxed, then "unparks" the reader: the
        // park/unpark happens-before edge must make the data visible
        // without any memory-side release.
        let m = Mem::new(2, &[0]);
        let m = m.store(0, DATA, 7, MemOrd::Relaxed);
        let stale = m.load(1, DATA, MemOrd::Relaxed);
        assert_eq!(stale.len(), 2, "no sync yet: both values visible");
        let m = m.transfer(0, 1);
        let fresh = m.load(1, DATA, MemOrd::Relaxed);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].0, 7);
    }

    #[test]
    fn normalization_collapses_dead_history() {
        // After every thread has acquired the newest message the old
        // ones are unreachable; states must hash equal regardless of
        // how much history was churned through.
        let mut a = Mem::new(2, &[0]);
        for i in 1..=10 {
            a = a.store(0, 0, i, MemOrd::SeqCst);
            let branches = a.load(1, 0, MemOrd::SeqCst);
            assert_eq!(branches.len(), 1);
            a = branches.into_iter().next().map(|(_, m)| m).expect("one branch");
        }
        let b = {
            let m = Mem::new(2, &[0]);
            let m = m.store(0, 0, 10, MemOrd::SeqCst);
            let branches = m.load(1, 0, MemOrd::SeqCst);
            branches.into_iter().next().map(|(_, m)| m).expect("one branch")
        };
        assert_eq!(a, b);
    }
}
