//! Offline stand-in for `criterion`, implementing the subset this
//! workspace's benches use: [`Criterion`], `bench_function`,
//! `benchmark_group` / `sample_size` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short calibration pass picks an
//! iteration count targeting ~`measurement_time / sample_size` per
//! sample, then `sample_size` samples are timed and the mean / median /
//! min ns-per-iteration are printed. No plotting, no statistics beyond
//! that — enough to compare kernels before/after and to feed the
//! machine-readable bench runners, which do their own timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`group/function/parameter` naming).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    /// Iterations per timed sample (set by calibration).
    iters: u64,
    /// Collected sample durations, in ns per iteration.
    samples: Vec<f64>,
    calibrating: bool,
    calibration_elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.calibrating {
            let start = Instant::now();
            black_box(f());
            self.calibration_elapsed = start.elapsed();
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.samples.push(elapsed.as_nanos() as f64 / self.iters as f64);
    }
}

/// Summary statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchStats {
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement: Duration,
    mut routine: F,
) -> BenchStats {
    // Calibrate: run once to estimate per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        samples: Vec::new(),
        calibrating: true,
        calibration_elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.calibration_elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement.as_secs_f64() / sample_size as f64;
    let iters = (budget_per_sample / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    b.calibrating = false;
    b.iters = iters;
    b.samples.reserve(sample_size);
    for _ in 0..sample_size {
        routine(&mut b);
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let stats = BenchStats {
        mean_ns: b.samples.iter().sum::<f64>() / b.samples.len() as f64,
        median_ns: sorted[sorted.len() / 2],
        min_ns: sorted[0],
    };
    println!(
        "bench: {id:<50} {:>12.1} ns/iter (median {:.1}, min {:.1}, {} samples x {} iters)",
        stats.mean_ns, stats.median_ns, stats.min_ns, sample_size, iters
    );
    stats
}

/// Benchmark manager (the `c` in `fn bench(c: &mut Criterion)`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(600) }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, self.measurement_time, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group sharing sample-size configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, routine);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, |b| routine(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); this harness
            // runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_sane_stats() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_and_id_naming() {
        let id = BenchmarkId::from_parameter(4096);
        assert_eq!(id.to_string(), "4096");
        let id = BenchmarkId::new("conv", "24x24");
        assert_eq!(id.to_string(), "conv/24x24");
    }

    #[test]
    fn calibration_scales_iters_down_for_slow_bodies() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(4));
        // A ~1 ms body must not be run millions of times.
        let start = Instant::now();
        c.bench_function("slow", |b| b.iter(|| std::thread::sleep(Duration::from_micros(500))));
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
