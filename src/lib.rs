//! # summit-dlv3-repro
//!
//! A Rust reproduction of *"Efficient Training of Semantic Image
//! Segmentation on Summit using Horovod and MVAPICH2-GDR"* (Anthony,
//! Awan, Jain, Subramoni, Panda — IPDPSW/ScaDL 2020).
//!
//! The paper is a performance-tuning study of distributed DeepLab-v3+
//! training on ORNL Summit. Its artifact — TensorFlow + Horovod + two
//! proprietary MPI stacks + 132 V100 GPUs — cannot run on a laptop, so
//! this workspace rebuilds the *system* underneath it (see DESIGN.md):
//!
//! | crate | provides |
//! |-------|----------|
//! | [`summit_sim`] | discrete-event Summit interconnect (NVLink2/X-bus/PCIe/dual-rail EDR fat-tree), fluid-flow contention, rank-program executor |
//! | [`collectives`] | ring / recursive-doubling / Rabenseifner / tree / two-level hierarchical allreduce as round schedules, with simulated *and* real threaded executors |
//! | [`mpi_profiles`] | MVAPICH2-GDR, Spectrum-MPI-default and NCCL-like personalities: protocols, data paths, selection tables, OSU microbenchmarks |
//! | [`dlmodels`] | DLv3+ (Xception-65 + ASPP + decoder) and ResNet-50 layer graphs, V100 roofline calibrated to the paper's 6.7 / 300 img/s |
//! | [`horovod`] | the Horovod runtime: coordinator, response cache, tensor fusion, cycle loop, overlap, timeline |
//! | [`trainer`] | simulated scaling sweeps + a real numerical data-parallel trainer (synthetic segmentation, from-scratch conv net, real gradient allreduce) |
//! | [`tuner`] | the paper's contribution: knob space, grid sweep, coordinate descent |
//! | [`summit_metrics`] | stats, units, scaling math, report rendering |
//! | [`trace`] | observability: per-rank span recorder, metrics registry, Chrome-trace emitter/parser, critical-path analyzer |
//!
//! Every table/figure has a regenerating binary in `crates/bench`
//! (`cargo run -p bench --bin f6_tuned_vs_default --release`, etc.);
//! EXPERIMENTS.md records paper-vs-measured for each.
//!
//! # Quickstart
//!
//! ```
//! use summit_dlv3_repro::prelude::*;
//!
//! // Simulate tuned DLv3+ training at 24 GPUs (4 Summit nodes).
//! let machine = Machine::new(MachineConfig::summit_for_gpus(24));
//! let sim = StepSim::new(
//!     &machine,
//!     MpiProfile::mvapich2_gdr(),
//!     HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
//!     &deeplab_paper(),
//!     &GpuModel::v100(),
//!     1,
//!     24,
//!     42,
//! );
//! let report = sim.simulate_training(3);
//! assert!(report.efficiency > 0.9, "tuned config is near-linear at 4 nodes");
//! ```

pub use collectives;
pub use dlmodels;
pub use horovod;
pub use mpi_profiles;
pub use summit_metrics;
pub use summit_sim;
pub use trace;
pub use trainer;
pub use tuner;

/// The most common imports, in one place.
pub mod prelude {
    pub use collectives::{Algorithm, LeaderAlgo, ReduceOp};
    pub use dlmodels::{deeplab_paper, resnet50, EmissionSchedule, GpuModel, ModelGraph};
    pub use horovod::{HorovodConfig, StepSim, Timeline, TrainReport};
    pub use mpi_profiles::{AllreduceOracle, Backend, MpiProfile};
    pub use summit_metrics::{ScalingSeries, Series, Summary, Table};
    pub use summit_sim::{DataPath, GpuId, Machine, MachineConfig, SimTime};
    pub use trainer::{paper_gpu_counts, SweepSpec};
    pub use tuner::{coordinate_descent, grid_search, Candidate, KnobSpace, Objective};
}
