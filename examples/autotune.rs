//! Run the paper's tuning methodology: greedy coordinate descent over
//! the Horovod/MPI knob space at 96 GPUs, starting from the system
//! default.
//!
//! ```text
//! cargo run --example autotune --release
//! ```

use summit_dlv3_repro::prelude::*;

fn main() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(96));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    let objective = Objective::new(&machine, &model, &gpu, 1, 96, 3, 42);
    let space = KnobSpace::paper();

    println!("knob space: {} candidates; running coordinate descent...", space.size());
    let report = coordinate_descent(&space, &objective, Candidate::paper_default(), 3);

    println!("evaluations: {} (vs {} for the full grid)", report.evaluations, space.size());
    println!("start : {}", report.trajectory[0].candidate.label());
    println!(
        "        {:.1} img/s ({:.1}% efficiency)",
        report.trajectory[0].throughput,
        report.trajectory[0].efficiency * 100.0
    );
    println!("best  : {}", report.best.candidate.label());
    println!(
        "        {:.1} img/s ({:.1}% efficiency) — {:.2}x over the default",
        report.best.throughput,
        report.best.efficiency * 100.0,
        report.best.throughput / report.trajectory[0].throughput
    );

    println!("\nimprovement trajectory (new bests only):");
    let mut best = 0.0f64;
    for s in &report.trajectory {
        if s.throughput > best {
            best = s.throughput;
            println!("  {:>7.1} img/s  <- {}", s.throughput, s.candidate.label());
        }
    }

    // The online variant (HOROVOD_AUTOTUNE-style): tune *during* training
    // instead of sweeping offline.
    println!("\nonline autotuning (8 windows of 3 steps, starting from defaults):");
    let online = summit_dlv3_repro::horovod::autotune(
        &machine,
        &MpiProfile::mvapich2_gdr(),
        &model,
        &gpu,
        1,
        96,
        HorovodConfig::default(),
        8,
        3,
        42,
    );
    for (i, w) in online.windows.iter().enumerate() {
        println!(
            "  window {i}: {:>7.2} ms/step   {}",
            w.mean_step_time * 1e3,
            w.config.render_env()
        );
    }
    println!(
        "  best: {:.2} ms/step with {}",
        online.best_step_time * 1e3,
        online.best.render_env()
    );
}
