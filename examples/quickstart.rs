//! Quickstart: simulate one distributed DLv3+ training configuration and
//! print where the time goes.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use summit_dlv3_repro::prelude::*;

fn main() {
    // A 4-node (24-GPU) slice of Summit.
    let machine = Machine::new(MachineConfig::summit_for_gpus(24));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();

    println!(
        "workload: {} — {:.1} M params, {} gradient payload, {} tensors/step",
        model.name,
        model.total_params() as f64 / 1e6,
        summit_metrics::fmt_bytes(model.gradient_bytes()),
        model.n_grad_tensors(),
    );
    println!(
        "single V100: {:.2} img/s at batch 1 (paper: 6.7 at its batch)",
        gpu.throughput(&model, 1)
    );
    println!();

    for (label, profile, config) in [
        (
            "default (Spectrum, 64 MB / 5 ms)",
            MpiProfile::spectrum_default(),
            HorovodConfig::default(),
        ),
        (
            "tuned   (MVAPICH2-GDR, 16 MB / 1 ms)",
            MpiProfile::mvapich2_gdr(),
            HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
        ),
    ] {
        let sim = StepSim::new(&machine, profile, config, &model, &gpu, 1, 24, 42);
        let report = sim.simulate_training(5);
        let step = &report.steps[0];
        println!("{label}");
        println!(
            "  {:.1} img/s aggregate, {:.1}% weak-scaling efficiency",
            report.throughput,
            report.efficiency * 100.0
        );
        println!(
            "  step {:.1} ms = compute {:.1} ms + exposed comm {:.1} ms  ({} fused buffers, comm stream busy {:.1} ms)",
            step.step_time * 1e3,
            step.compute_time * 1e3,
            step.exposed_comm * 1e3,
            step.n_buffers,
            step.comm_busy * 1e3,
        );
    }
}
