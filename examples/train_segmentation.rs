//! Real data-parallel training: a from-scratch conv net learns the
//! synthetic shapes-segmentation task across 4 worker threads, with
//! every gradient crossing threads through a genuine ring allreduce.
//!
//! ```text
//! cargo run --example train_segmentation --release
//! ```

use summit_dlv3_repro::collectives::Algorithm;
use summit_dlv3_repro::summit_metrics::series::bar;
use summit_dlv3_repro::trainer::real::{train, TrainConfig};

fn main() {
    let mut cfg = TrainConfig::quick(4);
    cfg.eval_every = 15;
    cfg.steps = 150;
    cfg.algo = Algorithm::Ring;
    println!(
        "training {} params on {}x{} synthetic shapes, {} workers x batch {}, ring allreduce",
        cfg.net.n_params(),
        cfg.data.height,
        cfg.data.width,
        cfg.workers,
        cfg.batch_per_worker,
    );
    let result = train(&cfg);
    println!("\n  step   loss    mIoU");
    for p in &result.curve {
        println!(
            "  {:>4}  {:>6.3}  {:>6.3}  {}",
            p.step,
            p.train_loss,
            p.miou,
            bar(p.miou, 1.0, 32)
        );
    }
    println!(
        "\nfinal: mIoU {:.3}, pixel accuracy {:.3} (held-out set)",
        result.final_miou, result.final_pixel_accuracy
    );

    // The headline property: distributed == serial.
    let mut serial = cfg.clone();
    serial.workers = 1;
    serial.batch_per_worker = cfg.workers * cfg.batch_per_worker;
    serial.eval_every = 0;
    let s = train(&serial);
    println!(
        "serial run with the same global batch: mIoU {:.3} (Δ = {:+.4})",
        s.final_miou,
        result.final_miou - s.final_miou
    );
}
