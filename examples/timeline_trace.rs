//! Horovod-timeline tracing: simulate one training step at 48 GPUs and
//! dump the per-phase trace (like `HOROVOD_TIMELINE=trace.json`), both
//! as text and as Chrome-trace JSON written to `artifacts/horovod_timeline.json`.
//!
//! ```text
//! cargo run --example timeline_trace --release
//! ```

use summit_dlv3_repro::prelude::*;

fn main() {
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let model = deeplab_paper();
    let sim = StepSim::new(
        &machine,
        MpiProfile::mvapich2_gdr(),
        HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
        &model,
        &GpuModel::v100(),
        1,
        48,
        42,
    );
    let (step, per_rank) = sim.simulate_step_per_rank(0);
    let mut timeline = Timeline::default();
    for tl in &per_rank {
        timeline.merge(tl);
    }

    println!("one step at 48 GPUs — {:.1} ms total", step.step_time * 1e3);
    println!("{}", per_rank[0].render_text());
    use summit_dlv3_repro::horovod::Phase;
    for phase in
        [Phase::Forward, Phase::Backward, Phase::Negotiate, Phase::FusionCopy, Phase::Allreduce]
    {
        // busy = interval union across all 48 ranks (wall-clock); the
        // plain sum counts every rank's mirrored span separately.
        println!(
            "  {:<26} {:>5} spans  {:>9.2} ms busy  ({:>9.1} rank-ms summed)",
            phase.name(),
            timeline.count(phase),
            timeline.busy_time(phase) * 1e3,
            timeline.total(phase) * 1e3
        );
    }
    println!(
        "  allreduce fraction of step: {:.1} %",
        100.0 * timeline.busy_time(Phase::Allreduce) / step.step_time
    );

    let json = timeline.to_chrome_json();
    std::fs::create_dir_all("artifacts").expect("create artifacts dir");
    std::fs::write("artifacts/horovod_timeline.json", &json).expect("write trace");
    println!(
        "\nwrote artifacts/horovod_timeline.json ({} bytes) — load it in chrome://tracing",
        json.len()
    );
}
