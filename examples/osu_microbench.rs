//! OSU-style allreduce microbenchmark across the MPI personalities —
//! the communication-level view of why tuning works.
//!
//! ```text
//! cargo run --example osu_microbench --release [gpus]
//! ```

use summit_dlv3_repro::mpi_profiles::{allreduce_sweep, size_ladder};
use summit_dlv3_repro::prelude::*;

fn main() {
    let gpus: usize = match std::env::args().nth(1) {
        None => 24,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("usage: osu_microbench [gpus]  — '{a}' is not a number");
            std::process::exit(2);
        }),
    };
    let machine = Machine::new(MachineConfig::summit_for_gpus(gpus));
    let sizes = size_ladder(1 << 10, 128 << 20);

    println!("# osu_allreduce (simulated), {gpus} GPUs on {} Summit nodes", machine.config.nodes);
    println!("{:>12} {:>16} {:>16} {:>16}", "bytes", "Spectrum (us)", "MV2-GDR (us)", "NCCL (us)");
    let sweeps: Vec<Vec<f64>> = Backend::all()
        .iter()
        .map(|b| {
            allreduce_sweep(&b.profile(), &machine, gpus, &sizes)
                .into_iter()
                .map(|p| p.latency_us)
                .collect()
        })
        .collect();
    for (i, &bytes) in sizes.iter().enumerate() {
        println!(
            "{:>12} {:>16.1} {:>16.1} {:>16.1}",
            bytes, sweeps[0][i], sweeps[1][i], sweeps[2][i]
        );
    }
    println!(
        "\nselected algorithms at each size (MV2-GDR): {}",
        sizes
            .iter()
            .step_by(4)
            .map(|&b| format!(
                "{}→{}",
                summit_metrics::fmt_bytes(b),
                MpiProfile::mvapich2_gdr().select_algorithm(b)
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
