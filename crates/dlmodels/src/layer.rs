//! Layer-level cost accounting: FLOPs, parameters and activation bytes
//! per layer, tracked by a shape-aware graph builder.
//!
//! The distributed-training simulation needs exactly three things from a
//! model: how long each training step computes, how many gradient bytes
//! each trainable layer produces, and in what order those gradients
//! become ready during the backward pass. All three derive from the
//! per-layer records built here.

/// What kind of computation a layer performs — drives the efficiency
/// factor of the execution model (dense convs run near peak; depthwise
/// convs and element-wise ops are memory-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    Conv,
    DepthwiseConv,
    Dense,
    BatchNorm,
    Activation,
    Pool,
    /// Bilinear up/down-sampling.
    Interp,
    /// Element-wise residual add / concat bookkeeping.
    Elementwise,
    Softmax,
}

/// One layer's static cost record (per image, batch applied later).
#[derive(Debug, Clone)]
pub struct Layer {
    pub name: String,
    pub kind: LayerKind,
    /// Trainable parameter count (0 for activations/pools/interp).
    pub params: u64,
    /// Forward FLOPs per image (multiply and add counted separately).
    pub fwd_flops: u64,
    /// Bytes touched in the forward pass per image: input read + output
    /// write + parameter read. Feeds the roofline's bandwidth term.
    pub fwd_bytes: u64,
}

impl Layer {
    /// Backward FLOPs: parameterized layers compute both data and weight
    /// gradients (≈ 2× forward); others just propagate (≈ 1× forward).
    pub fn bwd_flops(&self) -> u64 {
        if self.params > 0 {
            2 * self.fwd_flops
        } else {
            self.fwd_flops
        }
    }

    /// Backward bytes: roughly forward traffic plus gradient writes.
    pub fn bwd_bytes(&self) -> u64 {
        2 * self.fwd_bytes
    }

    /// Gradient tensor size in bytes (fp32).
    pub fn grad_bytes(&self) -> u64 {
        self.params * 4
    }
}

/// A complete model: ordered layers (forward order) plus metadata.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    pub name: String,
    /// Input `(height, width, channels)`.
    pub input: (usize, usize, usize),
    pub layers: Vec<Layer>,
}

impl ModelGraph {
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    pub fn total_fwd_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.fwd_flops).sum()
    }

    pub fn total_bwd_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.bwd_flops()).sum()
    }

    /// Total gradient payload per step (what Horovod allreduces), bytes.
    pub fn gradient_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.grad_bytes()).sum()
    }

    /// Number of distinct gradient tensors (trainable layers).
    pub fn n_grad_tensors(&self) -> usize {
        self.layers.iter().filter(|l| l.params > 0).count()
    }
}

/// Shape-tracking builder. All `conv`-family methods use "same" padding:
/// `out = ceil(in / stride)`.
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    input: (usize, usize, usize),
    h: usize,
    w: usize,
    c: usize,
    layers: Vec<Layer>,
}

const F32: u64 = 4;

impl GraphBuilder {
    pub fn new(name: impl Into<String>, h: usize, w: usize, c: usize) -> Self {
        assert!(h > 0 && w > 0 && c > 0);
        GraphBuilder { name: name.into(), input: (h, w, c), h, w, c, layers: Vec::new() }
    }

    pub fn shape(&self) -> (usize, usize, usize) {
        (self.h, self.w, self.c)
    }

    fn act_bytes(h: usize, w: usize, c: usize) -> u64 {
        (h * w * c) as u64 * F32
    }

    fn push(&mut self, name: &str, kind: LayerKind, params: u64, flops: u64, bytes: u64) {
        self.layers.push(Layer {
            name: format!("{}/{}", self.layers.len(), name),
            kind,
            params,
            fwd_flops: flops,
            fwd_bytes: bytes,
        });
    }

    /// `k×k` convolution, stride `s`, `out_c` filters, no bias (BN
    /// follows in the architectures here). Optional dilation changes
    /// receptive field but not cost.
    pub fn conv(&mut self, name: &str, k: usize, s: usize, out_c: usize) -> &mut Self {
        let in_bytes = Self::act_bytes(self.h, self.w, self.c);
        let (ho, wo) = (self.h.div_ceil(s), self.w.div_ceil(s));
        let params = (k * k * self.c * out_c) as u64;
        let flops = 2 * (ho * wo) as u64 * params;
        let bytes = in_bytes + Self::act_bytes(ho, wo, out_c) + params * F32;
        self.push(name, LayerKind::Conv, params, flops, bytes);
        self.h = ho;
        self.w = wo;
        self.c = out_c;
        self
    }

    /// Depthwise `k×k` convolution, stride `s` (channels preserved).
    pub fn depthwise(&mut self, name: &str, k: usize, s: usize) -> &mut Self {
        let in_bytes = Self::act_bytes(self.h, self.w, self.c);
        let (ho, wo) = (self.h.div_ceil(s), self.w.div_ceil(s));
        let params = (k * k * self.c) as u64;
        let flops = 2 * (ho * wo) as u64 * params;
        let bytes = in_bytes + Self::act_bytes(ho, wo, self.c) + params * F32;
        self.push(name, LayerKind::DepthwiseConv, params, flops, bytes);
        self.h = ho;
        self.w = wo;
        self
    }

    /// Depthwise-separable conv: depthwise k×k (stride s) + BN + ReLU +
    /// pointwise 1×1 to `out_c` + BN + ReLU — the Xception building unit.
    pub fn sep_conv(&mut self, name: &str, k: usize, s: usize, out_c: usize) -> &mut Self {
        self.depthwise(&format!("{name}.dw"), k, s);
        self.bn(&format!("{name}.dw_bn"));
        self.relu(&format!("{name}.dw_relu"));
        self.conv(&format!("{name}.pw"), 1, 1, out_c);
        self.bn(&format!("{name}.pw_bn"));
        self.relu(&format!("{name}.pw_relu"))
    }

    pub fn bn(&mut self, name: &str) -> &mut Self {
        let n = (self.h * self.w * self.c) as u64;
        let params = 2 * self.c as u64; // scale + shift
        self.push(name, LayerKind::BatchNorm, params, 4 * n, 2 * n * F32 + params * F32);
        self
    }

    pub fn relu(&mut self, name: &str) -> &mut Self {
        let n = (self.h * self.w * self.c) as u64;
        self.push(name, LayerKind::Activation, 0, n, 2 * n * F32);
        self
    }

    /// `k×k` max pool with stride `s`.
    pub fn maxpool(&mut self, name: &str, k: usize, s: usize) -> &mut Self {
        let in_bytes = Self::act_bytes(self.h, self.w, self.c);
        let (ho, wo) = (self.h.div_ceil(s), self.w.div_ceil(s));
        let flops = (k * k * ho * wo * self.c) as u64;
        self.push(name, LayerKind::Pool, 0, flops, in_bytes + Self::act_bytes(ho, wo, self.c));
        self.h = ho;
        self.w = wo;
        self
    }

    /// Global average pool to 1×1.
    pub fn global_pool(&mut self, name: &str) -> &mut Self {
        let n = (self.h * self.w * self.c) as u64;
        self.push(name, LayerKind::Pool, 0, n, n * F32 + Self::act_bytes(1, 1, self.c));
        self.h = 1;
        self.w = 1;
        self
    }

    /// Bilinear resize to `(h, w)`.
    pub fn interp(&mut self, name: &str, h: usize, w: usize) -> &mut Self {
        let out = (h * w * self.c) as u64;
        self.push(
            name,
            LayerKind::Interp,
            0,
            8 * out,
            Self::act_bytes(self.h, self.w, self.c) + out * F32,
        );
        self.h = h;
        self.w = w;
        self
    }

    /// Element-wise residual add (shape unchanged).
    pub fn add(&mut self, name: &str) -> &mut Self {
        let n = (self.h * self.w * self.c) as u64;
        self.push(name, LayerKind::Elementwise, 0, n, 3 * n * F32);
        self
    }

    /// Channel concatenation with a side input of `extra_c` channels at
    /// the current spatial size (costed as a copy).
    pub fn concat(&mut self, name: &str, extra_c: usize) -> &mut Self {
        let out_c = self.c + extra_c;
        let n = (self.h * self.w * out_c) as u64;
        self.push(name, LayerKind::Elementwise, 0, n, 2 * n * F32);
        self.c = out_c;
        self
    }

    /// Fully connected layer (expects 1×1 spatial).
    pub fn dense(&mut self, name: &str, out: usize) -> &mut Self {
        assert_eq!((self.h, self.w), (1, 1), "dense expects pooled input");
        let params = (self.c * out + out) as u64;
        let flops = 2 * (self.c * out) as u64;
        self.push(
            name,
            LayerKind::Dense,
            params,
            flops,
            (self.c + out) as u64 * F32 + params * F32,
        );
        self.c = out;
        self
    }

    /// Per-pixel softmax over the channel dim.
    pub fn softmax(&mut self, name: &str) -> &mut Self {
        let n = (self.h * self.w * self.c) as u64;
        self.push(name, LayerKind::Softmax, 0, 5 * n, 2 * n * F32);
        self
    }

    /// Override the tracked channel count (e.g. to branch back to a
    /// stashed feature map). Spatial dims may be set too.
    pub fn set_shape(&mut self, h: usize, w: usize, c: usize) -> &mut Self {
        self.h = h;
        self.w = w;
        self.c = c;
        self
    }

    pub fn finish(self) -> ModelGraph {
        ModelGraph { name: self.name, input: self.input, layers: self.layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_and_cost() {
        let mut b = GraphBuilder::new("t", 224, 224, 3);
        b.conv("c1", 7, 2, 64);
        assert_eq!(b.shape(), (112, 112, 64));
        let g = b.finish();
        assert_eq!(g.layers[0].params, 7 * 7 * 3 * 64);
        assert_eq!(g.layers[0].fwd_flops, 2 * 112 * 112 * 7 * 7 * 3 * 64);
    }

    #[test]
    fn same_padding_ceil_division() {
        let mut b = GraphBuilder::new("t", 513, 513, 3);
        b.conv("c", 3, 2, 8);
        assert_eq!(b.shape(), (257, 257, 8));
    }

    #[test]
    fn depthwise_is_cheap() {
        let mut b = GraphBuilder::new("t", 64, 64, 128);
        b.depthwise("dw", 3, 1).conv("pw", 1, 1, 128);
        let g = b.finish();
        assert!(g.layers[0].fwd_flops * 10 < g.layers[1].fwd_flops);
    }

    #[test]
    fn sep_conv_adds_six_layers() {
        let mut b = GraphBuilder::new("t", 32, 32, 64);
        b.sep_conv("s", 3, 1, 128);
        assert_eq!(b.shape(), (32, 32, 128));
        assert_eq!(b.finish().layers.len(), 6);
    }

    #[test]
    fn dense_requires_pooled() {
        let mut b = GraphBuilder::new("t", 7, 7, 512);
        b.global_pool("gap").dense("fc", 1000);
        let g = b.finish();
        assert_eq!(g.total_params(), (512 * 1000 + 1000) as u64);
    }

    #[test]
    #[should_panic(expected = "pooled input")]
    fn dense_on_spatial_panics() {
        let mut b = GraphBuilder::new("t", 7, 7, 512);
        b.dense("fc", 10);
    }

    #[test]
    fn interp_and_concat_track_shape() {
        let mut b = GraphBuilder::new("t", 33, 33, 256);
        b.interp("up", 129, 129).concat("cat", 48);
        assert_eq!(b.shape(), (129, 129, 304));
    }

    #[test]
    fn backward_flop_convention() {
        let mut b = GraphBuilder::new("t", 8, 8, 4);
        b.conv("c", 3, 1, 4).relu("r");
        let g = b.finish();
        assert_eq!(g.layers[0].bwd_flops(), 2 * g.layers[0].fwd_flops);
        assert_eq!(g.layers[1].bwd_flops(), g.layers[1].fwd_flops);
    }

    #[test]
    fn gradient_accounting() {
        let mut b = GraphBuilder::new("t", 8, 8, 4);
        b.conv("c", 3, 1, 8).bn("bn").relu("r");
        let g = b.finish();
        assert_eq!(g.n_grad_tensors(), 2);
        assert_eq!(g.gradient_bytes(), (3 * 3 * 4 * 8 + 16) as u64 * 4);
    }
}
