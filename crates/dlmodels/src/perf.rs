//! V100 execution model: a per-layer roofline with empirical efficiency
//! factors, calibrated so that one simulated V100 reproduces the paper's
//! single-GPU throughputs (claim C1: DLv3+ ≈ 6.7 img/s at 513², ResNet-50
//! ≈ 300 img/s at 224²).
//!
//! Per layer: `time = max(flops / (peak × eff(kind)), bytes / mem_bw)
//! + kernel_overhead`. The efficiency factors are the calibration
//! surface; they encode what 2018-era TensorFlow kernels actually
//! achieved on Volta — dense convolutions run near half of peak, while
//! depthwise convolutions (Xception's workhorse) were notoriously poor.
//! The `calibration` test pins both headline numbers.

use crate::layer::{Layer, LayerKind, ModelGraph};

/// A GPU's execution-model parameters.
#[derive(Debug, Clone)]
pub struct GpuModel {
    pub name: &'static str,
    /// Peak fp32 throughput, FLOPs/s.
    pub peak_flops: f64,
    /// Sustained HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed per-kernel launch/framework overhead, seconds.
    pub kernel_overhead: f64,
}

impl GpuModel {
    /// Tesla V100 (Summit's GPU): 15.7 TFLOPs fp32, 900 GB/s HBM2.
    /// Kernel overhead reflects TF1-era graph execution.
    pub fn v100() -> Self {
        GpuModel { name: "V100", peak_flops: 15.7e12, mem_bw: 900e9, kernel_overhead: 6.0e-6 }
    }

    /// Compute efficiency (fraction of peak FLOPs) by layer kind —
    /// the calibrated constants.
    pub fn efficiency(&self, kind: LayerKind) -> f64 {
        match kind {
            LayerKind::Conv => 0.63,
            LayerKind::Dense => 0.45,
            // TF1-era depthwise kernels on Volta sustained only tens of
            // GFLOP/s (layout transposes + low arithmetic intensity);
            // 0.0029 x 15.7 TFLOPs = 45 GFLOP/s. This is the single
            // constant that separates DLv3+ from ResNet-50 and is pinned
            // by the `calibration` test below.
            LayerKind::DepthwiseConv => 0.0029,
            // Element-wise/memory-bound kinds: the bandwidth term
            // dominates, the FLOP efficiency barely matters.
            LayerKind::BatchNorm
            | LayerKind::Activation
            | LayerKind::Pool
            | LayerKind::Interp
            | LayerKind::Elementwise
            | LayerKind::Softmax => 0.05,
        }
    }

    /// Forward time of one layer at `batch` images.
    pub fn layer_fwd_time(&self, l: &Layer, batch: usize) -> f64 {
        let flops = l.fwd_flops as f64 * batch as f64;
        let bytes = l.fwd_bytes as f64 * batch as f64;
        (flops / (self.peak_flops * self.efficiency(l.kind))).max(bytes / self.mem_bw)
            + self.kernel_overhead
    }

    /// Backward time of one layer at `batch` images.
    pub fn layer_bwd_time(&self, l: &Layer, batch: usize) -> f64 {
        let flops = l.bwd_flops() as f64 * batch as f64;
        let bytes = l.bwd_bytes() as f64 * batch as f64;
        (flops / (self.peak_flops * self.efficiency(l.kind))).max(bytes / self.mem_bw)
            + self.kernel_overhead
    }

    /// Optimizer update time: SGD with momentum streams each parameter,
    /// its gradient and its momentum slot (read + write ≈ 5 accesses).
    pub fn optimizer_time(&self, model: &ModelGraph) -> f64 {
        5.0 * model.gradient_bytes() as f64 / self.mem_bw
    }

    /// Pure compute time of one training step (no communication).
    pub fn step_compute_time(&self, model: &ModelGraph, batch: usize) -> f64 {
        assert!(batch >= 1);
        let fwd: f64 = model.layers.iter().map(|l| self.layer_fwd_time(l, batch)).sum();
        let bwd: f64 = model.layers.iter().map(|l| self.layer_bwd_time(l, batch)).sum();
        fwd + bwd + self.optimizer_time(model)
    }

    /// Single-GPU training throughput in images/second.
    pub fn throughput(&self, model: &ModelGraph, batch: usize) -> f64 {
        batch as f64 / self.step_compute_time(model, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deeplab::deeplab_paper, resnet::resnet50};

    /// The headline calibration — claim C1 of the paper.
    #[test]
    fn calibration_matches_paper_single_gpu_numbers() {
        let v100 = GpuModel::v100();
        let dl = v100.throughput(&deeplab_paper(), 8);
        assert!(
            (6.0..7.4).contains(&dl),
            "DLv3+ single-V100 throughput = {dl:.2} img/s, paper says 6.7"
        );
        let rn = v100.throughput(&resnet50(224), 32);
        assert!(
            (270.0..330.0).contains(&rn),
            "ResNet-50 single-V100 throughput = {rn:.1} img/s, paper says 300"
        );
    }

    #[test]
    fn throughput_grows_then_saturates_with_batch() {
        let v100 = GpuModel::v100();
        let rn = resnet50(224);
        let t1 = v100.throughput(&rn, 1);
        let t8 = v100.throughput(&rn, 8);
        let t64 = v100.throughput(&rn, 64);
        assert!(t8 > t1 * 1.3, "batching amortizes kernel overhead: {t1} -> {t8}");
        let gain = v100.throughput(&rn, 128) / t64;
        assert!(gain < 1.15, "throughput saturates: {gain}");
    }

    #[test]
    fn backward_dominates_forward() {
        let v100 = GpuModel::v100();
        let dl = deeplab_paper();
        let fwd: f64 = dl.layers.iter().map(|l| v100.layer_fwd_time(l, 8)).sum();
        let bwd: f64 = dl.layers.iter().map(|l| v100.layer_bwd_time(l, 8)).sum();
        assert!(bwd > fwd * 1.3 && bwd < fwd * 2.5, "bwd/fwd = {}", bwd / fwd);
    }

    #[test]
    fn memory_bound_layers_hit_bandwidth_wall() {
        let v100 = GpuModel::v100();
        let l = Layer {
            name: "bn".into(),
            kind: LayerKind::BatchNorm,
            params: 512,
            fwd_flops: 1 << 22,
            fwd_bytes: 512 << 20, // 512 MiB streamed
        };
        let t = v100.layer_fwd_time(&l, 1);
        let bw_time = (512u64 << 20) as f64 / v100.mem_bw;
        assert!((t - bw_time - v100.kernel_overhead).abs() < 1e-9);
    }

    #[test]
    fn optimizer_time_is_small_but_positive() {
        let v100 = GpuModel::v100();
        let dl = deeplab_paper();
        let opt = v100.optimizer_time(&dl);
        let step = v100.step_compute_time(&dl, 8);
        assert!(opt > 0.0 && opt < step * 0.05);
    }

    #[test]
    fn the_45x_gap_between_models_holds() {
        // Paper: 300 / 6.7 ≈ 45×.
        let v100 = GpuModel::v100();
        let gap = v100.throughput(&resnet50(224), 32) / v100.throughput(&deeplab_paper(), 8);
        assert!((35.0..55.0).contains(&gap), "throughput gap = {gap:.1}x");
    }
}
