//! ResNet-50 (He et al. 2016) at 224×224 — the paper's image
//! classification reference point ("a Volta GPU can process 300
//! images/second for training ResNet-50").

use crate::layer::{GraphBuilder, ModelGraph};

/// One bottleneck residual block: 1×1 reduce, 3×3, 1×1 expand (+ BN/ReLU),
/// with a projection shortcut when the shape changes.
fn bottleneck(b: &mut GraphBuilder, name: &str, mid_c: usize, out_c: usize, stride: usize) {
    let (_, _, in_c) = b.shape();
    let project = stride != 1 || in_c != out_c;
    b.conv(&format!("{name}.conv1"), 1, 1, mid_c);
    b.bn(&format!("{name}.bn1"));
    b.relu(&format!("{name}.relu1"));
    b.conv(&format!("{name}.conv2"), 3, stride, mid_c);
    b.bn(&format!("{name}.bn2"));
    b.relu(&format!("{name}.relu2"));
    b.conv(&format!("{name}.conv3"), 1, 1, out_c);
    b.bn(&format!("{name}.bn3"));
    if project {
        // Shortcut projection runs on the block input; cost-wise we
        // append it in sequence (the simulator only needs totals and
        // emission order, and the projection's gradients neighbour the
        // block's own in backward order).
        let (h, w, _) = b.shape();
        b.set_shape(h * stride, w * stride, in_c);
        b.conv(&format!("{name}.proj"), 1, stride, out_c);
        b.bn(&format!("{name}.proj_bn"));
    }
    b.add(&format!("{name}.add"));
    b.relu(&format!("{name}.relu3"));
}

/// Build ResNet-50 for `input` resolution (default 224) and 1000 classes.
pub fn resnet50(input: usize) -> ModelGraph {
    let mut b = GraphBuilder::new("ResNet-50", input, input, 3);
    b.conv("stem.conv", 7, 2, 64);
    b.bn("stem.bn");
    b.relu("stem.relu");
    b.maxpool("stem.pool", 3, 2);

    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    for (si, &(mid, out, blocks)) in stages.iter().enumerate() {
        for bi in 0..blocks {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            bottleneck(&mut b, &format!("stage{}.block{}", si + 1, bi), mid, out, stride);
        }
    }
    b.global_pool("head.gap");
    b.dense("head.fc", 1000);
    b.softmax("head.softmax");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published() {
        let g = resnet50(224);
        let m = g.total_params() as f64 / 1e6;
        // Published: 25.56 M parameters.
        assert!((25.0..26.2).contains(&m), "ResNet-50 params = {m} M");
    }

    #[test]
    fn flops_match_published_scale() {
        let g = resnet50(224);
        let gf = g.total_fwd_flops() as f64 / 1e9;
        // Published: ~4.1 GMACs = ~8.2 GFLOPs forward.
        assert!((7.0..9.5).contains(&gf), "ResNet-50 fwd = {gf} GFLOPs");
    }

    #[test]
    fn gradient_payload_is_about_100_mib() {
        let g = resnet50(224);
        let mb = g.gradient_bytes() as f64 / (1 << 20) as f64;
        assert!((95.0..105.0).contains(&mb), "gradient payload = {mb} MiB");
    }

    #[test]
    fn has_53_conv_and_one_dense() {
        let g = resnet50(224);
        let convs =
            g.layers.iter().filter(|l| matches!(l.kind, crate::layer::LayerKind::Conv)).count();
        // 1 stem + 16 blocks × 3 + 4 projections = 53.
        assert_eq!(convs, 53);
        let dense =
            g.layers.iter().filter(|l| matches!(l.kind, crate::layer::LayerKind::Dense)).count();
        assert_eq!(dense, 1);
    }

    #[test]
    fn backward_is_heavier_than_forward() {
        let g = resnet50(224);
        let ratio = g.total_bwd_flops() as f64 / g.total_fwd_flops() as f64;
        assert!((1.7..2.0).contains(&ratio), "bwd/fwd = {ratio}");
    }
}
