//! DeepLab-v3+ (Chen et al. 2018) with the modified aligned Xception-65
//! backbone at output stride 16 — the paper's training workload
//! (513×513 crops, 21 Pascal-VOC classes).
//!
//! Structure: Xception-65 entry/middle/exit flows built from
//! depthwise-separable convolutions; ASPP with one 1×1, three dilated
//! 3×3 branches and image-level pooling; and the v3+ decoder that fuses
//! 4×-upsampled ASPP features with low-level entry-flow features.
//!
//! Dilated (atrous) convolutions cost the same FLOPs as dense ones at
//! equal kernel size, so the builder does not track dilation.

use crate::layer::{GraphBuilder, ModelGraph};

/// An Xception block: three separable convs with a residual connection;
/// `stride` applies to the last separable conv. A 1×1 projection carries
/// the skip when shape changes.
fn xception_block(
    b: &mut GraphBuilder,
    name: &str,
    channels: [usize; 3],
    stride: usize,
    skip_conv: bool,
) {
    let (h, w, in_c) = b.shape();
    b.sep_conv(&format!("{name}.sep1"), 3, 1, channels[0]);
    b.sep_conv(&format!("{name}.sep2"), 3, 1, channels[1]);
    b.sep_conv(&format!("{name}.sep3"), 3, stride, channels[2]);
    if skip_conv {
        let (ho, wo, _) = b.shape();
        b.set_shape(h, w, in_c);
        b.conv(&format!("{name}.skip"), 1, stride, channels[2]);
        b.bn(&format!("{name}.skip_bn"));
        b.set_shape(ho, wo, channels[2]);
    }
    b.add(&format!("{name}.add"));
}

/// Modified aligned Xception-65 backbone at output stride 16. Returns the
/// builder positioned at the encoder output plus the shape of the
/// low-level feature tap (end of entry-flow block 1) the decoder uses.
fn xception65(b: &mut GraphBuilder) -> (usize, usize, usize) {
    // Entry flow.
    b.conv("entry.conv1", 3, 2, 32);
    b.bn("entry.bn1");
    b.relu("entry.relu1");
    b.conv("entry.conv2", 3, 1, 64);
    b.bn("entry.bn2");
    b.relu("entry.relu2");
    xception_block(b, "entry.block1", [128, 128, 128], 2, true);
    let low_level = b.shape(); // stride-4 features for the decoder
    xception_block(b, "entry.block2", [256, 256, 256], 2, true);
    xception_block(b, "entry.block3", [728, 728, 728], 2, true);
    // Middle flow: 16 identity blocks at 728 channels.
    for i in 0..16 {
        xception_block(b, &format!("middle.block{i}"), [728, 728, 728], 1, false);
    }
    // Exit flow (stride 1 at OS16; the 3×3s are atrous instead).
    xception_block(b, "exit.block1", [728, 1024, 1024], 1, true);
    b.sep_conv("exit.sep1", 3, 1, 1536);
    b.sep_conv("exit.sep2", 3, 1, 1536);
    b.sep_conv("exit.sep3", 3, 1, 2048);
    low_level
}

/// Atrous Spatial Pyramid Pooling at 256 channels: 1×1 + three dilated
/// 3×3 (rates 6/12/18) + global pooling branch, concatenated and
/// projected.
fn aspp(b: &mut GraphBuilder) {
    let (h, w, c) = b.shape();
    // Branch costs are sequential in the cost model; shapes are restored
    // between branches.
    b.conv("aspp.b0", 1, 1, 256);
    b.bn("aspp.b0_bn");
    b.relu("aspp.b0_relu");
    for (i, rate) in [6usize, 12, 18].iter().enumerate() {
        b.set_shape(h, w, c);
        b.conv(&format!("aspp.b{}_r{rate}", i + 1), 3, 1, 256);
        b.bn(&format!("aspp.b{}_bn", i + 1));
        b.relu(&format!("aspp.b{}_relu", i + 1));
    }
    // Image-level pooling branch.
    b.set_shape(h, w, c);
    b.global_pool("aspp.pool");
    b.conv("aspp.pool_conv", 1, 1, 256);
    b.bn("aspp.pool_bn");
    b.relu("aspp.pool_relu");
    b.interp("aspp.pool_up", h, w);
    // Concat of 5 × 256 branches, then 1×1 projection to 256.
    b.set_shape(h, w, 256);
    b.concat("aspp.concat", 4 * 256);
    b.conv("aspp.proj", 1, 1, 256);
    b.bn("aspp.proj_bn");
    b.relu("aspp.proj_relu");
}

/// The v3+ decoder: upsample ×4, fuse with 48-channel-projected
/// low-level features, refine with two 3×3 convs, classify, upsample to
/// input resolution.
fn decoder(b: &mut GraphBuilder, low_level: (usize, usize, usize), input: usize, classes: usize) {
    let (llh, llw, llc) = low_level;
    let (h, w, c) = b.shape();
    // Low-level 1×1 projection to 48 channels.
    b.set_shape(llh, llw, llc);
    b.conv("decoder.low_proj", 1, 1, 48);
    b.bn("decoder.low_bn");
    b.relu("decoder.low_relu");
    // Back to the encoder output, upsample to low-level resolution.
    b.set_shape(h, w, c);
    b.interp("decoder.up4", llh, llw);
    b.concat("decoder.concat", 48);
    b.conv("decoder.refine1", 3, 1, 256);
    b.bn("decoder.refine1_bn");
    b.relu("decoder.refine1_relu");
    b.conv("decoder.refine2", 3, 1, 256);
    b.bn("decoder.refine2_bn");
    b.relu("decoder.refine2_relu");
    b.conv("decoder.classifier", 1, 1, classes);
    b.interp("decoder.up_final", input, input);
    b.softmax("decoder.softmax");
}

/// Build DeepLab-v3+ for `input`×`input` crops (paper: 513) and
/// `classes` classes (Pascal VOC: 21).
pub fn deeplab_v3plus(input: usize, classes: usize) -> ModelGraph {
    assert!(input >= 65, "input too small for OS16");
    let mut b = GraphBuilder::new("DeepLab-v3+ (Xception-65)", input, input, 3);
    let low_level = xception65(&mut b);
    aspp(&mut b);
    decoder(&mut b, low_level, input, classes);
    b.finish()
}

/// The paper's configuration: 513×513, 21 classes.
pub fn deeplab_paper() -> ModelGraph {
    deeplab_v3plus(513, 21)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn parameter_count_in_published_range() {
        let g = deeplab_paper();
        let m = g.total_params() as f64 / 1e6;
        // Xception-65 backbone ≈ 38 M + ASPP ≈ 15 M + decoder ≈ 1.5 M.
        assert!((40.0..60.0).contains(&m), "DLv3+ params = {m} M");
    }

    #[test]
    fn gradient_payload_is_160_to_230_mib() {
        let g = deeplab_paper();
        let mib = g.gradient_bytes() as f64 / (1 << 20) as f64;
        assert!((160.0..230.0).contains(&mib), "gradient payload = {mib} MiB");
    }

    #[test]
    fn flops_dwarf_resnet50() {
        let dl = deeplab_paper();
        let rn = crate::resnet::resnet50(224);
        let ratio = dl.total_fwd_flops() as f64 / rn.total_fwd_flops() as f64;
        // 6.7 vs 300 img/s is a 45× step-time gap; FLOPs alone should
        // already show an order of magnitude.
        assert!(ratio > 10.0, "DLv3+/ResNet-50 fwd FLOP ratio = {ratio}");
    }

    #[test]
    fn many_gradient_tensors() {
        let g = deeplab_paper();
        // Horovod sees one tensor per trainable layer: > 150 for DLv3+.
        assert!(g.n_grad_tensors() > 150, "{} tensors", g.n_grad_tensors());
    }

    #[test]
    fn depthwise_heavy_architecture() {
        let g = deeplab_paper();
        let dw = g.layers.iter().filter(|l| l.kind == LayerKind::DepthwiseConv).count();
        assert!(dw >= 60, "{dw} depthwise convs"); // 20 blocks × 3 + exit
    }

    #[test]
    fn output_stride_16_feature_map() {
        // 513 -> 257 -> 129 -> 65 -> 33: the ASPP sees 33×33.
        let g = deeplab_paper();
        let aspp_proj = g.layers.iter().find(|l| l.name.contains("aspp.proj")).unwrap();
        // 1×1 conv on 33×33×1280 -> 256.
        assert_eq!(aspp_proj.params, 1280 * 256);
        assert_eq!(aspp_proj.fwd_flops, 2 * 33 * 33 * 1280 * 256);
    }

    #[test]
    fn classifier_emits_21_channels() {
        let g = deeplab_paper();
        let cls = g.layers.iter().find(|l| l.name.contains("classifier")).unwrap();
        assert_eq!(cls.params, 256 * 21);
    }

    #[test]
    fn custom_resolution_scales_flops_quadratically() {
        let small = deeplab_v3plus(257, 21);
        let big = deeplab_v3plus(513, 21);
        let ratio = big.total_fwd_flops() as f64 / small.total_fwd_flops() as f64;
        assert!((3.0..5.0).contains(&ratio), "flop ratio {ratio}");
        // Params barely change with resolution.
        let p_ratio = big.total_params() as f64 / small.total_params() as f64;
        assert!((0.99..1.01).contains(&p_ratio));
    }
}
