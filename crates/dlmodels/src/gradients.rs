//! Backward gradient-emission schedules: what Horovod actually observes.
//!
//! During backprop, gradients become available in reverse layer order;
//! Horovod's cycle loop picks up whatever is ready each cycle. The
//! emission schedule — tensor sizes and ready times relative to the start
//! of the backward pass — is the interface between the model cost layer
//! and the runtime simulation, and is what makes fusion-threshold and
//! cycle-time tuning behave realistically.

use crate::layer::ModelGraph;
use crate::perf::GpuModel;

/// One gradient tensor as the runtime sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct GradTensor {
    pub name: String,
    pub bytes: u64,
    /// Seconds after the backward pass begins at which this tensor is
    /// ready for reduction.
    pub ready_at: f64,
}

/// The full per-step emission picture.
#[derive(Debug, Clone)]
pub struct EmissionSchedule {
    /// Tensors in ready order (reverse layer order).
    pub tensors: Vec<GradTensor>,
    /// Duration of the forward pass, seconds.
    pub forward_time: f64,
    /// Duration of the backward pass, seconds.
    pub backward_time: f64,
    /// Optimizer update duration, seconds.
    pub optimizer_time: f64,
}

impl EmissionSchedule {
    /// Build the schedule for `model` at `batch` images on `gpu`.
    pub fn build(model: &ModelGraph, gpu: &GpuModel, batch: usize) -> Self {
        let forward_time: f64 = model.layers.iter().map(|l| gpu.layer_fwd_time(l, batch)).sum();
        let mut tensors = Vec::with_capacity(model.n_grad_tensors());
        let mut t = 0.0;
        for l in model.layers.iter().rev() {
            t += gpu.layer_bwd_time(l, batch);
            if l.params > 0 {
                tensors.push(GradTensor {
                    name: l.name.clone(),
                    bytes: l.grad_bytes(),
                    ready_at: t,
                });
            }
        }
        EmissionSchedule {
            tensors,
            forward_time,
            backward_time: t,
            optimizer_time: gpu.optimizer_time(model),
        }
    }

    pub fn total_bytes(&self) -> u64 {
        self.tensors.iter().map(|t| t.bytes).sum()
    }

    /// Bytes ready at or before `t` seconds into the backward pass.
    pub fn bytes_ready_by(&self, t: f64) -> u64 {
        self.tensors.iter().filter(|g| g.ready_at <= t).map(|g| g.bytes).sum()
    }

    /// Pure compute time of the step (forward + backward + optimizer).
    pub fn compute_time(&self) -> f64 {
        self.forward_time + self.backward_time + self.optimizer_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deeplab::deeplab_paper, perf::GpuModel, resnet::resnet50};

    fn sched() -> EmissionSchedule {
        EmissionSchedule::build(&deeplab_paper(), &GpuModel::v100(), 8)
    }

    #[test]
    fn tensors_are_in_nondecreasing_ready_order() {
        let s = sched();
        assert!(!s.tensors.is_empty());
        for w in s.tensors.windows(2) {
            assert!(w[0].ready_at <= w[1].ready_at);
        }
    }

    #[test]
    fn totals_match_model() {
        let s = sched();
        let model = deeplab_paper();
        assert_eq!(s.total_bytes(), model.gradient_bytes());
        assert_eq!(s.tensors.len(), model.n_grad_tensors());
    }

    #[test]
    fn first_ready_tensor_is_a_decoder_layer() {
        // Backward starts at the output: the classifier's gradient lands
        // before any backbone gradient.
        let s = sched();
        assert!(
            s.tensors[0].name.contains("decoder") || s.tensors[0].name.contains("classifier"),
            "first tensor = {}",
            s.tensors[0].name
        );
        assert!(s.tensors.last().unwrap().name.contains("entry"));
    }

    #[test]
    fn all_bytes_ready_by_backward_end() {
        let s = sched();
        assert_eq!(s.bytes_ready_by(s.backward_time), s.total_bytes());
        assert!(s.bytes_ready_by(0.0) < s.total_bytes());
    }

    #[test]
    fn bytes_ready_is_monotone() {
        let s = sched();
        let mut last = 0;
        for i in 0..=10 {
            let t = s.backward_time * i as f64 / 10.0;
            let b = s.bytes_ready_by(t);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn emission_spread_is_a_large_fraction_of_backward() {
        // Gradients trickle out across the whole backward pass — the
        // overlap opportunity Horovod exploits.
        let s = sched();
        let first = s.tensors.first().unwrap().ready_at;
        let last = s.tensors.last().unwrap().ready_at;
        assert!((last - first) / s.backward_time > 0.5);
    }

    #[test]
    fn resnet_emits_faster_than_deeplab() {
        let v100 = GpuModel::v100();
        let rn = EmissionSchedule::build(&resnet50(224), &v100, 32);
        let dl = sched();
        assert!(rn.backward_time < dl.backward_time);
        assert!(rn.compute_time() < dl.compute_time());
    }
}
