//! Model cost layer: layer graphs, a V100 execution model, and backward
//! gradient-emission schedules for the two networks the paper measures —
//! DeepLab-v3+ (Xception-65, 513×513, 21 classes) and ResNet-50 (224×224).
//!
//! The distributed-training simulation consumes three things from here:
//! per-step compute time, the gradient tensor inventory (sizes + count),
//! and the order/timing in which gradients become ready during backprop.
//!
//! # Example
//!
//! ```
//! use dlmodels::{deeplab_paper, GpuModel};
//!
//! let model = deeplab_paper();
//! let v100 = GpuModel::v100();
//! let imgs_per_sec = v100.throughput(&model, 8);
//! assert!(imgs_per_sec > 5.0 && imgs_per_sec < 9.0); // paper: 6.7
//! ```

pub mod deeplab;
pub mod gradients;
pub mod layer;
pub mod perf;
pub mod resnet;
pub mod resnet_deeplab;

pub use deeplab::{deeplab_paper, deeplab_v3plus};
pub use gradients::{EmissionSchedule, GradTensor};
pub use layer::{GraphBuilder, Layer, LayerKind, ModelGraph};
pub use perf::GpuModel;
pub use resnet::resnet50;
pub use resnet_deeplab::deeplab_v3plus_resnet101;
