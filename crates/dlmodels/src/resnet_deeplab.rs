//! DeepLab-v3+ with a ResNet-101 backbone — the other encoder the
//! DeepLab papers evaluate, included to check that the reproduction's
//! conclusions aren't Xception-specific (dense convs instead of
//! depthwise-separable ones shift the compute/communication balance).

use crate::layer::{GraphBuilder, ModelGraph};

/// Bottleneck block shared with plain ResNet.
fn bottleneck(b: &mut GraphBuilder, name: &str, mid_c: usize, out_c: usize, stride: usize) {
    let (_, _, in_c) = b.shape();
    let project = stride != 1 || in_c != out_c;
    b.conv(&format!("{name}.conv1"), 1, 1, mid_c);
    b.bn(&format!("{name}.bn1"));
    b.relu(&format!("{name}.relu1"));
    b.conv(&format!("{name}.conv2"), 3, stride, mid_c);
    b.bn(&format!("{name}.bn2"));
    b.relu(&format!("{name}.relu2"));
    b.conv(&format!("{name}.conv3"), 1, 1, out_c);
    b.bn(&format!("{name}.bn3"));
    if project {
        let (h, w, _) = b.shape();
        b.set_shape(h * stride, w * stride, in_c);
        b.conv(&format!("{name}.proj"), 1, stride, out_c);
        b.bn(&format!("{name}.proj_bn"));
    }
    b.add(&format!("{name}.add"));
    b.relu(&format!("{name}.relu3"));
}

/// ResNet-101 trunk at output stride 16 (stage 4 runs atrous, stride 1),
/// returning the low-level (stride-4) feature tap shape.
fn resnet101_os16(b: &mut GraphBuilder) -> (usize, usize, usize) {
    b.conv("stem.conv", 7, 2, 64);
    b.bn("stem.bn");
    b.relu("stem.relu");
    b.maxpool("stem.pool", 3, 2);
    // Stage 1: 3 blocks at 256.
    for i in 0..3 {
        bottleneck(b, &format!("stage1.block{i}"), 64, 256, 1);
    }
    let low_level = b.shape(); // stride 4, 256 channels
                               // Stage 2: 4 blocks at 512, stride 2.
    for i in 0..4 {
        bottleneck(b, &format!("stage2.block{i}"), 128, 512, if i == 0 { 2 } else { 1 });
    }
    // Stage 3: 23 blocks at 1024, stride 2.
    for i in 0..23 {
        bottleneck(b, &format!("stage3.block{i}"), 256, 1024, if i == 0 { 2 } else { 1 });
    }
    // Stage 4: 3 blocks at 2048, atrous (stride 1) for OS16.
    for i in 0..3 {
        bottleneck(b, &format!("stage4.block{i}"), 512, 2048, 1);
    }
    low_level
}

/// ASPP + decoder shared with the Xception variant, reimplemented here
/// against the ResNet trunk's shapes (256-channel low-level features get
/// the standard 1×1→48 projection).
fn head(b: &mut GraphBuilder, low_level: (usize, usize, usize), input: usize, classes: usize) {
    let (h, w, c) = b.shape();
    b.conv("aspp.b0", 1, 1, 256);
    b.bn("aspp.b0_bn");
    b.relu("aspp.b0_relu");
    for (i, rate) in [6usize, 12, 18].iter().enumerate() {
        b.set_shape(h, w, c);
        b.conv(&format!("aspp.b{}_r{rate}", i + 1), 3, 1, 256);
        b.bn(&format!("aspp.b{}_bn", i + 1));
        b.relu(&format!("aspp.b{}_relu", i + 1));
    }
    b.set_shape(h, w, c);
    b.global_pool("aspp.pool");
    b.conv("aspp.pool_conv", 1, 1, 256);
    b.bn("aspp.pool_bn");
    b.relu("aspp.pool_relu");
    b.interp("aspp.pool_up", h, w);
    b.set_shape(h, w, 256);
    b.concat("aspp.concat", 4 * 256);
    b.conv("aspp.proj", 1, 1, 256);
    b.bn("aspp.proj_bn");
    b.relu("aspp.proj_relu");

    let (llh, llw, llc) = low_level;
    b.set_shape(llh, llw, llc);
    b.conv("decoder.low_proj", 1, 1, 48);
    b.bn("decoder.low_bn");
    b.relu("decoder.low_relu");
    b.set_shape(h, w, 256);
    b.interp("decoder.up4", llh, llw);
    b.concat("decoder.concat", 48);
    b.conv("decoder.refine1", 3, 1, 256);
    b.bn("decoder.refine1_bn");
    b.relu("decoder.refine1_relu");
    b.conv("decoder.refine2", 3, 1, 256);
    b.bn("decoder.refine2_bn");
    b.relu("decoder.refine2_relu");
    b.conv("decoder.classifier", 1, 1, classes);
    b.interp("decoder.up_final", input, input);
    b.softmax("decoder.softmax");
}

/// DeepLab-v3+ with a ResNet-101 encoder at OS16.
pub fn deeplab_v3plus_resnet101(input: usize, classes: usize) -> ModelGraph {
    assert!(input >= 65, "input too small for OS16");
    let mut b = GraphBuilder::new("DeepLab-v3+ (ResNet-101)", input, input, 3);
    let low_level = resnet101_os16(&mut b);
    head(&mut b, low_level, input, classes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deeplab::deeplab_paper;
    use crate::perf::GpuModel;

    fn model() -> ModelGraph {
        deeplab_v3plus_resnet101(513, 21)
    }

    #[test]
    fn parameter_count_in_published_range() {
        // ResNet-101 backbone ≈ 42.5 M + ASPP ≈ 15 M + decoder ≈ 1.5 M.
        let m = model().total_params() as f64 / 1e6;
        assert!((55.0..65.0).contains(&m), "DLv3+/R101 params = {m} M");
    }

    #[test]
    fn gradient_payload_exceeds_xception_variant() {
        assert!(model().gradient_bytes() > deeplab_paper().gradient_bytes());
    }

    #[test]
    fn no_depthwise_layers() {
        use crate::layer::LayerKind;
        assert_eq!(model().layers.iter().filter(|l| l.kind == LayerKind::DepthwiseConv).count(), 0);
    }

    #[test]
    fn faster_per_image_than_xception_despite_more_flops() {
        // Dense convs run near peak while Xception's depthwise crawl, so
        // the R101 variant trains faster per image even with a bigger
        // trunk — the reason TF users preferred it on Volta.
        let v100 = GpuModel::v100();
        let r101 = v100.throughput(&model(), 8);
        let xcep = v100.throughput(&deeplab_paper(), 8);
        assert!(r101 > xcep, "R101 {r101:.2} img/s should beat Xception {xcep:.2} img/s on Volta");
    }

    #[test]
    fn stage_structure() {
        let g = model();
        let convs =
            g.layers.iter().filter(|l| matches!(l.kind, crate::layer::LayerKind::Conv)).count();
        // 1 stem + 33 blocks × 3 + 4 projections + 6 ASPP + 4 decoder = 114.
        assert_eq!(convs, 114);
    }

    #[test]
    fn os16_feature_map_is_33x33() {
        let g = model();
        let aspp_proj = g.layers.iter().find(|l| l.name.contains("aspp.proj")).unwrap();
        assert_eq!(aspp_proj.fwd_flops, 2 * 33 * 33 * 1280 * 256);
    }
}
