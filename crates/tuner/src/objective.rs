//! The tuning objective: simulated training throughput of a candidate
//! configuration at a fixed scale.

use dlmodels::{GpuModel, ModelGraph};
use horovod::StepSim;
use summit_sim::Machine;

use crate::space::Candidate;

/// Evaluates candidates by simulating a few training steps.
pub struct Objective<'a> {
    pub machine: &'a Machine,
    pub model: &'a ModelGraph,
    pub gpu: &'a GpuModel,
    pub batch_per_gpu: usize,
    pub n_ranks: usize,
    /// Steps simulated per evaluation (jitter averaging).
    pub steps: usize,
    pub seed: u64,
    evaluations: std::cell::Cell<usize>,
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct Scored {
    pub candidate: Candidate,
    /// Aggregate images/second.
    pub throughput: f64,
    /// Weak-scaling efficiency at the objective's rank count.
    pub efficiency: f64,
}

impl<'a> Objective<'a> {
    pub fn new(
        machine: &'a Machine,
        model: &'a ModelGraph,
        gpu: &'a GpuModel,
        batch_per_gpu: usize,
        n_ranks: usize,
        steps: usize,
        seed: u64,
    ) -> Self {
        assert!(n_ranks >= 1 && steps >= 1);
        Objective {
            machine,
            model,
            gpu,
            batch_per_gpu,
            n_ranks,
            steps,
            seed,
            evaluations: std::cell::Cell::new(0),
        }
    }

    /// Simulate `candidate` and score it.
    pub fn eval(&self, candidate: &Candidate) -> Scored {
        self.evaluations.set(self.evaluations.get() + 1);
        let report = StepSim::new(
            self.machine,
            candidate.backend.profile(),
            candidate.config.clone(),
            self.model,
            self.gpu,
            self.batch_per_gpu,
            self.n_ranks,
            self.seed,
        )
        .simulate_training(self.steps);
        Scored {
            candidate: candidate.clone(),
            throughput: report.throughput,
            efficiency: report.efficiency,
        }
    }

    /// Total candidate evaluations so far (sweep-cost reporting).
    pub fn evaluations(&self) -> usize {
        self.evaluations.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Candidate;
    use dlmodels::deeplab_paper;
    use mpi_profiles::Backend;
    use summit_sim::MachineConfig;

    #[test]
    fn eval_is_deterministic_and_counts() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(12));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 12, 2, 3);
        let c = Candidate::paper_default();
        let a = obj.eval(&c);
        let b = obj.eval(&c);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(obj.evaluations(), 2);
        assert!(a.efficiency > 0.0 && a.efficiency <= 1.0);
    }

    #[test]
    fn better_backend_scores_higher() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(96));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 96, 2, 3);
        let default = obj.eval(&Candidate::paper_default());
        let mv2 = obj.eval(&Candidate {
            backend: Backend::Mvapich2Gdr,
            config: Candidate::paper_default().config,
        });
        assert!(mv2.throughput > default.throughput);
    }
}
