//! The paper's contribution as a library: systematic tuning of
//! Horovod/MPI knobs for distributed DLv3+ training, *without modifying
//! Horovod, MPI, or the model* — every candidate is just a knob setting
//! handed to the unmodified runtime simulation.
//!
//! * [`space`] — the knob space (`HOROVOD_FUSION_THRESHOLD`,
//!   `HOROVOD_CYCLE_TIME`, response cache, hierarchical allreduce, MPI
//!   backend);
//! * [`objective`] — candidate scoring by simulated training throughput;
//! * [`search`] — exhaustive grid sweep and greedy coordinate descent
//!   (the one-knob-family-at-a-time methodology, formalized).
//!
//! # Example
//!
//! ```
//! use tuner::{coordinate_descent, Candidate, KnobSpace, Objective};
//! use dlmodels::{deeplab_paper, GpuModel};
//! use summit_sim::{Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::summit_for_gpus(24));
//! let model = deeplab_paper();
//! let gpu = GpuModel::v100();
//! let objective = Objective::new(&machine, &model, &gpu, 1, 24, 2, 42);
//! let report = coordinate_descent(
//!     &KnobSpace::small(), &objective, Candidate::paper_default(), 2);
//! assert!(report.best.throughput > 0.0);
//! ```

pub mod objective;
pub mod random;
pub mod search;
pub mod space;

pub use objective::{Objective, Scored};
pub use random::random_search;
pub use search::{coordinate_descent, grid_search, TuneReport};
pub use space::{Candidate, KnobSpace};
