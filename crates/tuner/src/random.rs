//! Random search over the knob space — the budget-matched baseline the
//! coordinate-descent methodology is compared against (experiment T12).

use rand::seq::SliceRandom;
use summit_metrics::rng::rng_for;

use crate::objective::Objective;
use crate::search::TuneReport;
use crate::space::KnobSpace;

/// Evaluate `budget` uniformly random candidates (without replacement
/// when the budget exceeds the space) and return the best.
pub fn random_search(
    space: &KnobSpace,
    objective: &Objective<'_>,
    budget: usize,
    seed: u64,
) -> TuneReport {
    space.validate();
    assert!(budget >= 1);
    let mut rng = rng_for(seed, "random-search");
    let mut candidates = space.candidates();
    candidates.shuffle(&mut rng);
    candidates.truncate(budget);

    let mut trajectory = Vec::with_capacity(candidates.len());
    for c in &candidates {
        trajectory.push(objective.eval(c));
    }
    let best = trajectory
        .iter()
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("non-empty budget") // lint: allow(unwrap): budget >= 1 is asserted above
        .clone();
    TuneReport { best, trajectory, evaluations: objective.evaluations() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::{deeplab_paper, GpuModel};
    use summit_sim::{Machine, MachineConfig};

    #[test]
    fn respects_budget_and_is_deterministic() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(24));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj_a = Objective::new(&machine, &model, &gpu, 1, 24, 2, 5);
        let a = random_search(&KnobSpace::small(), &obj_a, 4, 9);
        assert_eq!(a.trajectory.len(), 4);
        assert_eq!(a.evaluations, 4);
        let obj_b = Objective::new(&machine, &model, &gpu, 1, 24, 2, 5);
        let b = random_search(&KnobSpace::small(), &obj_b, 4, 9);
        assert_eq!(a.best.candidate, b.best.candidate);
        assert_eq!(a.best.throughput, b.best.throughput);
    }

    #[test]
    fn best_is_max_of_trajectory() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(24));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 24, 2, 5);
        let r = random_search(&KnobSpace::small(), &obj, 6, 1);
        let max = r.trajectory.iter().map(|s| s.throughput).fold(f64::MIN, f64::max);
        assert_eq!(r.best.throughput, max);
    }

    #[test]
    fn oversized_budget_covers_whole_space() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(12));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 12, 1, 5);
        let space = KnobSpace::small();
        let r = random_search(&space, &obj, 1000, 1);
        assert_eq!(r.trajectory.len(), space.size());
    }
}
