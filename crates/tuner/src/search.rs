//! Search strategies over the knob space: exhaustive grid and greedy
//! coordinate descent (the paper tunes one knob family at a time — the
//! coordinate-descent loop formalizes that methodology).

use crate::objective::{Objective, Scored};
use crate::space::{Candidate, KnobSpace};

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    pub best: Scored,
    /// Candidates evaluated, in evaluation order.
    pub trajectory: Vec<Scored>,
    pub evaluations: usize,
}

/// Exhaustive sweep: score every candidate, return them sorted best
/// first.
pub fn grid_search(space: &KnobSpace, objective: &Objective<'_>) -> TuneReport {
    space.validate();
    let mut scored: Vec<Scored> = space.candidates().iter().map(|c| objective.eval(c)).collect();
    let trajectory = scored.clone();
    scored.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
    TuneReport { best: scored[0].clone(), trajectory, evaluations: objective.evaluations() }
}

/// Greedy coordinate descent: starting from `start`, optimize one axis at
/// a time (backend → fusion → cycle → cache → hierarchical), repeating
/// until a full round makes no improvement (or `max_rounds`).
///
/// Evaluates `O(rounds × Σ axis sizes)` candidates instead of the full
/// product — the practical version of the paper's one-knob-at-a-time
/// methodology.
pub fn coordinate_descent(
    space: &KnobSpace,
    objective: &Objective<'_>,
    start: Candidate,
    max_rounds: usize,
) -> TuneReport {
    space.validate();
    assert!(max_rounds >= 1);
    let mut trajectory = Vec::new();
    let mut best = objective.eval(&start);
    trajectory.push(best.clone());

    for _round in 0..max_rounds {
        let before = best.throughput;
        // Axis 1: backend.
        for &backend in &space.backends {
            let mut c = best.candidate.clone();
            if c.backend == backend {
                continue;
            }
            c.backend = backend;
            consider(&mut best, &mut trajectory, objective.eval(&c));
        }
        // Axis 2: fusion threshold.
        for &fusion in &space.fusion_thresholds {
            let mut c = best.candidate.clone();
            if c.config.fusion_threshold == fusion {
                continue;
            }
            c.config.fusion_threshold = fusion;
            consider(&mut best, &mut trajectory, objective.eval(&c));
        }
        // Axis 3: cycle time.
        for &cycle in &space.cycle_times {
            let mut c = best.candidate.clone();
            if c.config.cycle_time == cycle {
                continue;
            }
            c.config.cycle_time = cycle;
            consider(&mut best, &mut trajectory, objective.eval(&c));
        }
        // Axis 4: response cache.
        for &cache in &space.response_cache {
            let mut c = best.candidate.clone();
            if c.config.response_cache == cache {
                continue;
            }
            c.config.response_cache = cache;
            consider(&mut best, &mut trajectory, objective.eval(&c));
        }
        // Axis 5: hierarchical allreduce.
        for &hier in &space.hierarchical {
            let mut c = best.candidate.clone();
            if c.config.hierarchical_allreduce == hier {
                continue;
            }
            c.config.hierarchical_allreduce = hier;
            consider(&mut best, &mut trajectory, objective.eval(&c));
        }
        if best.throughput <= before * (1.0 + 1e-9) {
            break; // fixed point
        }
    }
    TuneReport { best, trajectory, evaluations: objective.evaluations() }
}

fn consider(best: &mut Scored, trajectory: &mut Vec<Scored>, scored: Scored) {
    trajectory.push(scored.clone());
    if scored.throughput > best.throughput {
        *best = scored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::{deeplab_paper, GpuModel};
    use summit_sim::{Machine, MachineConfig};

    #[test]
    fn grid_finds_at_least_the_default() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(24));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 24, 2, 5);
        let space = KnobSpace::small();
        let report = grid_search(&space, &obj);
        assert_eq!(report.evaluations, space.size());
        assert_eq!(report.trajectory.len(), space.size());
        let default = obj.eval(&Candidate::paper_default());
        assert!(report.best.throughput >= default.throughput * 0.999);
    }

    #[test]
    fn coordinate_descent_improves_on_default_cheaply() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(96));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 96, 2, 5);
        let space = KnobSpace::paper();
        let report = coordinate_descent(&space, &obj, Candidate::paper_default(), 3);
        let default_score = report.trajectory[0].throughput;
        assert!(
            report.best.throughput > default_score * 1.05,
            "tuning must improve on default at 96 GPUs: {} -> {}",
            default_score,
            report.best.throughput
        );
        assert!(
            report.evaluations < space.size() / 2,
            "coordinate descent must be cheaper than the grid: {} vs {}",
            report.evaluations,
            space.size()
        );
    }

    #[test]
    fn descent_trajectory_is_monotone_in_best() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(24));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let obj = Objective::new(&machine, &model, &gpu, 1, 24, 2, 5);
        let report = coordinate_descent(&KnobSpace::small(), &obj, Candidate::paper_default(), 2);
        let mut best_so_far = 0.0f64;
        for s in &report.trajectory {
            best_so_far = best_so_far.max(s.throughput);
        }
        assert_eq!(best_so_far, report.best.throughput);
    }
}
