//! The knob space the paper sweeps: Horovod runtime parameters × MPI
//! backend choice.

use horovod::{Compression, HorovodConfig};
use mpi_profiles::Backend;

/// Axes of the tuning space. Every axis must be non-empty.
#[derive(Debug, Clone)]
pub struct KnobSpace {
    pub backends: Vec<Backend>,
    /// `HOROVOD_FUSION_THRESHOLD` values, bytes.
    pub fusion_thresholds: Vec<u64>,
    /// `HOROVOD_CYCLE_TIME` values, seconds.
    pub cycle_times: Vec<f64>,
    pub response_cache: Vec<bool>,
    pub hierarchical: Vec<bool>,
    /// Gradient compression choices (the paper does not tune this; the
    /// extended space adds fp16 for the compression study).
    pub compression: Vec<Compression>,
}

impl KnobSpace {
    /// The sweep the paper describes: fusion thresholds around the 64 MB
    /// default, cycle times around the 5 ms default, cache/hierarchical
    /// toggles, and the MPI backends under comparison.
    pub fn paper() -> Self {
        KnobSpace {
            backends: vec![Backend::SpectrumDefault, Backend::Mvapich2Gdr, Backend::Nccl],
            fusion_thresholds: vec![
                0,
                2 << 20,
                8 << 20,
                16 << 20,
                32 << 20,
                64 << 20,
                128 << 20,
                256 << 20,
            ],
            cycle_times: vec![0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3],
            response_cache: vec![true, false],
            hierarchical: vec![false, true],
            compression: vec![Compression::None],
        }
    }

    /// The paper space plus the full gradient-codec axis — fp16 and the
    /// quantizing/sparsifying codecs from `collectives::compression`
    /// (used by the compression and search-strategy studies).
    pub fn extended() -> Self {
        KnobSpace { compression: Compression::ALL.to_vec(), ..Self::paper() }
    }

    /// A reduced space for fast tests.
    pub fn small() -> Self {
        KnobSpace {
            backends: vec![Backend::SpectrumDefault, Backend::Mvapich2Gdr],
            fusion_thresholds: vec![8 << 20, 64 << 20],
            cycle_times: vec![1e-3, 5e-3],
            response_cache: vec![true],
            hierarchical: vec![false],
            compression: vec![Compression::None],
        }
    }

    pub fn validate(&self) {
        assert!(!self.backends.is_empty(), "backend axis empty");
        assert!(!self.fusion_thresholds.is_empty(), "fusion axis empty");
        assert!(!self.cycle_times.is_empty(), "cycle axis empty");
        assert!(!self.response_cache.is_empty(), "cache axis empty");
        assert!(!self.hierarchical.is_empty(), "hierarchical axis empty");
        assert!(!self.compression.is_empty(), "compression axis empty");
        assert!(self.cycle_times.iter().all(|&c| c > 0.0), "cycle times must be positive");
    }

    /// Cardinality of the full grid.
    pub fn size(&self) -> usize {
        self.backends.len()
            * self.fusion_thresholds.len()
            * self.cycle_times.len()
            * self.response_cache.len()
            * self.hierarchical.len()
            * self.compression.len()
    }

    /// Enumerate every candidate in deterministic order.
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.size());
        for &backend in &self.backends {
            for &fusion in &self.fusion_thresholds {
                for &cycle in &self.cycle_times {
                    for &cache in &self.response_cache {
                        for &hier in &self.hierarchical {
                            for &compression in &self.compression {
                                out.push(Candidate {
                                    backend,
                                    config: HorovodConfig {
                                        fusion_threshold: fusion,
                                        cycle_time: cycle,
                                        response_cache: cache,
                                        hierarchical_allreduce: hier,
                                        compression,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One point of the tuning space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub backend: Backend,
    pub config: HorovodConfig,
}

impl Candidate {
    /// The baseline the paper compares against: system-default MPI with
    /// default Horovod knobs.
    pub fn paper_default() -> Self {
        Candidate { backend: Backend::SpectrumDefault, config: HorovodConfig::default() }
    }

    pub fn label(&self) -> String {
        let mut s = format!(
            "{:?} fusion={} cycle={:.1}ms cache={} hier={}",
            self.backend,
            summit_metrics::fmt_bytes(self.config.fusion_threshold),
            self.config.cycle_time * 1e3,
            u8::from(self.config.response_cache),
            u8::from(self.config.hierarchical_allreduce),
        );
        if self.config.compression != Compression::None {
            s.push(' ');
            s.push_str(self.config.compression.env_name());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_cardinality() {
        let s = KnobSpace::paper();
        s.validate();
        assert_eq!(s.size(), 3 * 8 * 6 * 2 * 2);
        assert_eq!(KnobSpace::extended().size(), Compression::ALL.len() * s.size());
        assert_eq!(s.candidates().len(), s.size());
    }

    #[test]
    fn candidates_are_unique() {
        let s = KnobSpace::small();
        let c = s.candidates();
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                assert!(
                    c[i] != c[j] || c[i].backend != c[j].backend,
                    "duplicate candidates at {i}, {j}"
                );
            }
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = KnobSpace::paper().candidates();
        let b = KnobSpace::paper().candidates();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn default_candidate_is_spectrum_defaults() {
        let d = Candidate::paper_default();
        assert_eq!(d.backend, Backend::SpectrumDefault);
        assert_eq!(d.config, HorovodConfig::default());
        assert!(d.label().contains("SpectrumDefault"));
    }

    #[test]
    #[should_panic(expected = "cycle times must be positive")]
    fn invalid_axis_rejected() {
        let mut s = KnobSpace::small();
        s.cycle_times = vec![0.0];
        s.validate();
    }
}
