//! Coordinator negotiation cost model.
//!
//! Horovod's rank-0 coordinator gathers per-rank tensor readiness and
//! broadcasts responses every cycle. Without the response cache this is a
//! name-list gather/scatter whose cost grows with the rank count; with
//! the cache (`HOROVOD_CACHE_CAPACITY > 0`) it collapses to a bit-vector
//! allgather of near-constant small cost.

/// Per-cycle coordination latency in seconds.
///
/// Calibration: Horovod's own timeline shows `NEGOTIATE_ALLREDUCE` phases
/// of tens to hundreds of microseconds at scale without the cache, and
/// ~10–30 µs with it.
pub fn negotiation_cost(n_ranks: usize, response_cache: bool) -> f64 {
    assert!(n_ranks >= 1);
    if n_ranks == 1 {
        return 0.0;
    }
    let log_n = (n_ranks as f64).log2().ceil();
    if response_cache {
        // Bit-vector allgather: latency-dominated tree.
        8e-6 + 3e-6 * log_n
    } else {
        // Name-list gatherv + response broadcast: both the message sizes
        // and the serialization grow with rank count.
        60e-6 + 25e-6 * log_n + 0.8e-6 * n_ranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        assert_eq!(negotiation_cost(1, true), 0.0);
        assert_eq!(negotiation_cost(1, false), 0.0);
    }

    #[test]
    fn cache_is_much_cheaper() {
        for n in [6usize, 24, 132] {
            let cached = negotiation_cost(n, true);
            let full = negotiation_cost(n, false);
            assert!(full > 5.0 * cached, "n={n}: {full} vs {cached}");
        }
    }

    #[test]
    fn cost_grows_with_scale() {
        assert!(negotiation_cost(132, false) > negotiation_cost(12, false));
        assert!(negotiation_cost(132, true) > negotiation_cost(12, true));
    }

    #[test]
    fn magnitudes_match_horovod_timelines() {
        let cached = negotiation_cost(132, true);
        assert!(cached > 5e-6 && cached < 50e-6, "cached = {cached}");
        let full = negotiation_cost(132, false);
        assert!(full > 100e-6 && full < 500e-6, "full = {full}");
    }
}
