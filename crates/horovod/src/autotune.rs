//! Online autotuning, like `HOROVOD_AUTOTUNE=1`: adjust the fusion
//! threshold and cycle time *during* training by measuring step-time
//! windows and hill-climbing, no offline sweep required.
//!
//! Real Horovod uses Bayesian optimization; a deterministic coordinate
//! hill-climber captures the behaviour that matters here (convergence to
//! a good region within tens of windows, online, without touching model
//! or MPI code).

use dlmodels::{GpuModel, ModelGraph};
use mpi_profiles::MpiProfile;
use summit_sim::Machine;

use crate::config::HorovodConfig;
use crate::runtime::StepSim;

/// One measured tuning window.
#[derive(Debug, Clone)]
pub struct Window {
    pub config: HorovodConfig,
    /// Mean step time over the window, seconds.
    pub mean_step_time: f64,
}

/// Result of an online-autotuned run.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    pub windows: Vec<Window>,
    pub best: HorovodConfig,
    pub best_step_time: f64,
}

/// The candidate ladders the tuner moves along.
const FUSION_LADDER: [u64; 7] =
    [2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20];
const CYCLE_LADDER: [f64; 6] = [0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3];

/// Run online autotuning: `windows` tuning windows of `window_steps`
/// simulated steps each, starting from `start`.
#[allow(clippy::too_many_arguments)]
pub fn autotune(
    machine: &Machine,
    profile: &MpiProfile,
    model: &ModelGraph,
    gpu: &GpuModel,
    batch_per_gpu: usize,
    n_ranks: usize,
    start: HorovodConfig,
    windows: usize,
    window_steps: usize,
    seed: u64,
) -> AutotuneReport {
    assert!(windows >= 1 && window_steps >= 1);
    let measure = |config: &HorovodConfig, window: usize| -> f64 {
        let sim = StepSim::new(
            machine,
            profile.clone(),
            config.clone(),
            model,
            gpu,
            batch_per_gpu,
            n_ranks,
            seed.wrapping_add(window as u64),
        );
        sim.simulate_training(window_steps).mean_step_time
    };

    let mut history = Vec::with_capacity(windows);
    let mut current = start;
    let mut current_time = measure(&current, 0);
    history.push(Window { config: current.clone(), mean_step_time: current_time });
    let (mut best, mut best_time) = (current.clone(), current_time);

    // Alternate axes window by window; on each window try the neighbour
    // up or down the ladder (whichever untried first), keep on improve.
    let mut fusion_idx = nearest(&FUSION_LADDER, current.fusion_threshold as f64);
    let mut cycle_idx = nearest_f(&CYCLE_LADDER, current.cycle_time);
    let mut direction: isize = -1; // start by shrinking (defaults are large)
    for w in 1..windows {
        let tune_fusion = w % 2 == 1;
        let candidate = if tune_fusion {
            let idx = step_index(fusion_idx, direction, FUSION_LADDER.len());
            current.clone().with_fusion(FUSION_LADDER[idx])
        } else {
            let idx = step_index(cycle_idx, direction, CYCLE_LADDER.len());
            current.clone().with_cycle(CYCLE_LADDER[idx])
        };
        let t = measure(&candidate, w);
        history.push(Window { config: candidate.clone(), mean_step_time: t });
        if t < current_time {
            if tune_fusion {
                fusion_idx = step_index(fusion_idx, direction, FUSION_LADDER.len());
            } else {
                cycle_idx = step_index(cycle_idx, direction, CYCLE_LADDER.len());
            }
            current = candidate;
            current_time = t;
        } else {
            direction = -direction; // bounce
        }
        if current_time < best_time {
            best = current.clone();
            best_time = current_time;
        }
    }
    AutotuneReport { windows: history, best, best_step_time: best_time }
}

fn nearest_by(len: usize, at: impl Fn(usize) -> f64, value: f64) -> usize {
    (0..len)
        .min_by(|&a, &b| (at(a) - value).abs().total_cmp(&(at(b) - value).abs()))
        .expect("non-empty ladder") // lint: allow(unwrap): knob ladders are non-empty by construction
}

fn nearest(ladder: &[u64], value: f64) -> usize {
    nearest_by(ladder.len(), |i| ladder[i] as f64, value)
}

fn nearest_f(ladder: &[f64], value: f64) -> usize {
    nearest_by(ladder.len(), |i| ladder[i], value)
}

fn step_index(idx: usize, dir: isize, len: usize) -> usize {
    let next = idx as isize + dir;
    next.clamp(0, len as isize - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::deeplab_paper;
    use summit_sim::MachineConfig;

    #[test]
    fn nearest_and_step() {
        assert_eq!(nearest(&FUSION_LADDER, (64 << 20) as f64), 5);
        assert_eq!(nearest(&FUSION_LADDER, 0.0), 0);
        assert_eq!(nearest_f(&CYCLE_LADDER, 5e-3), 3);
        assert_eq!(step_index(0, -1, 7), 0);
        assert_eq!(step_index(6, 1, 7), 6);
        assert_eq!(step_index(3, 1, 7), 4);
    }

    #[test]
    fn autotune_never_regresses_the_best() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(48));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let report = autotune(
            &machine,
            &MpiProfile::mvapich2_gdr(),
            &model,
            &gpu,
            1,
            48,
            HorovodConfig::default(),
            8,
            2,
            7,
        );
        assert_eq!(report.windows.len(), 8);
        assert!(report.best_step_time <= report.windows[0].mean_step_time);
        let min_seen =
            report.windows.iter().map(|w| w.mean_step_time).fold(f64::INFINITY, f64::min);
        assert!(report.best_step_time <= min_seen * 1.0 + 1e-12);
    }

    #[test]
    fn autotune_helps_a_bad_start() {
        // Start from a pathological 25 ms cycle: the tuner must find a
        // materially better configuration online.
        let machine = Machine::new(MachineConfig::summit_for_gpus(48));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let start = HorovodConfig::default().with_cycle(25e-3);
        // 12 windows of 8 steps: each window's mean averages out enough
        // step jitter that the coordinate descent reliably escapes the
        // bad cycle time regardless of the RNG stream (short 2-step
        // windows are noisy enough that a marginal stream can mask the
        // improvement).
        let report = autotune(
            &machine,
            &MpiProfile::spectrum_default(),
            &model,
            &gpu,
            1,
            48,
            start,
            12,
            8,
            7,
        );
        let start_time = report.windows[0].mean_step_time;
        assert!(
            report.best_step_time < start_time * 0.97,
            "online tuning must improve a bad start: {} -> {}",
            start_time,
            report.best_step_time
        );
    }

    #[test]
    fn autotune_is_deterministic() {
        let machine = Machine::new(MachineConfig::summit_for_gpus(12));
        let model = deeplab_paper();
        let gpu = GpuModel::v100();
        let run = || {
            autotune(
                &machine,
                &MpiProfile::nccl(),
                &model,
                &gpu,
                1,
                12,
                HorovodConfig::default(),
                4,
                2,
                3,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_step_time, b.best_step_time);
    }
}
