//! Tensor fusion: pack ready gradient tensors into fusion buffers.
//!
//! Horovod packs tensors greedily, in ready order, into a buffer of
//! `HOROVOD_FUSION_THRESHOLD` bytes; whatever does not fit starts the
//! next buffer. A threshold of zero disables fusion. Fused buffers pay a
//! pack + unpack device copy, which Horovod skips for single-tensor
//! responses — both behaviours are modelled here.

/// A fused allreduce payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedBuffer {
    /// Total payload bytes.
    pub bytes: u64,
    /// How many tensors were packed.
    pub n_tensors: usize,
    /// Index (into the emission order) of the first packed tensor.
    pub first_tensor: usize,
}

impl FusedBuffer {
    /// Whether this buffer pays the fusion copy (multi-tensor only).
    pub fn pays_copy(&self) -> bool {
        self.n_tensors > 1
    }
}

/// Pack `sizes[start..]`-ordered ready tensors (given as `(index, bytes)`)
/// into fusion buffers of at most `threshold` bytes.
///
/// Tensors larger than the threshold still go out (alone) — Horovod does
/// not split tensors.
pub fn pack(ready: &[(usize, u64)], threshold: u64) -> Vec<FusedBuffer> {
    let mut out = Vec::new();
    let mut cur: Option<FusedBuffer> = None;
    for &(idx, bytes) in ready {
        match cur.as_mut() {
            Some(b) if threshold > 0 && b.bytes + bytes <= threshold => {
                b.bytes += bytes;
                b.n_tensors += 1;
            }
            _ => {
                if let Some(b) = cur.take() {
                    out.push(b);
                }
                cur = Some(FusedBuffer { bytes, n_tensors: 1, first_tensor: idx });
            }
        }
    }
    if let Some(b) = cur {
        out.push(b);
    }
    out
}

/// Device-copy time for packing + unpacking a fused buffer:
/// two traversals at GPU copy bandwidth. Single-tensor buffers are free.
pub fn fusion_copy_time(buffer: &FusedBuffer, copy_bw: f64) -> f64 {
    if buffer.pays_copy() {
        2.0 * buffer.bytes as f64 / copy_bw
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(v: &[u64]) -> Vec<(usize, u64)> {
        v.iter().copied().enumerate().collect()
    }

    #[test]
    fn packs_greedily_up_to_threshold() {
        let b = pack(&sizes(&[10, 20, 30, 40]), 60);
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].bytes, b[0].n_tensors, b[0].first_tensor), (60, 3, 0));
        assert_eq!((b[1].bytes, b[1].n_tensors, b[1].first_tensor), (40, 1, 3));
    }

    #[test]
    fn zero_threshold_disables_fusion() {
        let b = pack(&sizes(&[10, 20, 30]), 0);
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|x| x.n_tensors == 1));
    }

    #[test]
    fn oversized_tensor_goes_alone() {
        let b = pack(&sizes(&[100, 5, 5]), 50);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].bytes, 100);
        assert_eq!(b[1].bytes, 10);
    }

    #[test]
    fn exact_fit() {
        let b = pack(&sizes(&[25, 25]), 50);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].n_tensors, 2);
    }

    #[test]
    fn empty_input() {
        assert!(pack(&[], 64).is_empty());
    }

    #[test]
    fn copy_cost_only_for_multi_tensor() {
        let multi = FusedBuffer { bytes: 600, n_tensors: 2, first_tensor: 0 };
        let single = FusedBuffer { bytes: 600, n_tensors: 1, first_tensor: 0 };
        assert!(fusion_copy_time(&multi, 600.0) > 0.0);
        assert_eq!(fusion_copy_time(&multi, 600.0), 2.0);
        assert_eq!(fusion_copy_time(&single, 600.0), 0.0);
    }

    #[test]
    fn preserves_order_and_coverage() {
        let input = sizes(&[7, 3, 9, 1, 4, 12, 2]);
        let buffers = pack(&input, 10);
        let total: u64 = buffers.iter().map(|b| b.bytes).sum();
        assert_eq!(total, 38);
        let n: usize = buffers.iter().map(|b| b.n_tensors).sum();
        assert_eq!(n, 7);
        // first_tensor indices are increasing and consistent with counts
        let mut expect = 0;
        for b in &buffers {
            assert_eq!(b.first_tensor, expect);
            expect += b.n_tensors;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Packing covers every tensor exactly once, preserves order,
        /// and respects the threshold except for oversized singletons.
        #[test]
        fn pack_invariants(
            sizes in prop::collection::vec(1u64..200_000_000, 0..60),
            threshold in prop::sample::select(vec![0u64, 1024, 1 << 20, 64 << 20, u64::MAX]),
        ) {
            let ready: Vec<(usize, u64)> = sizes.iter().copied().enumerate().collect();
            let buffers = pack(&ready, threshold);
            // Coverage.
            let total: u64 = buffers.iter().map(|b| b.bytes).sum();
            prop_assert_eq!(total, sizes.iter().sum::<u64>());
            let count: usize = buffers.iter().map(|b| b.n_tensors).sum();
            prop_assert_eq!(count, sizes.len());
            // Order: first_tensor indices partition [0, n).
            let mut next = 0usize;
            for b in &buffers {
                prop_assert_eq!(b.first_tensor, next);
                next += b.n_tensors;
                // Threshold respected unless a single oversized tensor.
                if threshold > 0 && b.n_tensors > 1 {
                    prop_assert!(b.bytes <= threshold);
                }
                if threshold == 0 {
                    prop_assert_eq!(b.n_tensors, 1);
                }
            }
            // Greediness: merging any adjacent pair would bust the
            // threshold (when both are under it individually).
            if threshold > 0 {
                for w in buffers.windows(2) {
                    let first_fits = w[0].bytes <= threshold;
                    if first_fits {
                        let head_of_next = sizes[w[1].first_tensor];
                        prop_assert!(
                            w[0].bytes + head_of_next > threshold,
                            "buffers {:?} and next head {} could have merged",
                            w[0], head_of_next
                        );
                    }
                }
            }
        }

        /// Copy cost is linear in bytes for multi-tensor buffers and zero
        /// for singletons.
        #[test]
        fn copy_cost_properties(bytes in 1u64..1_000_000_000, n in 1usize..10) {
            let b = FusedBuffer { bytes, n_tensors: n, first_tensor: 0 };
            let c = fusion_copy_time(&b, 600e9);
            if n == 1 {
                prop_assert_eq!(c, 0.0);
            } else {
                prop_assert!((c - 2.0 * bytes as f64 / 600e9).abs() < 1e-15);
            }
        }
    }
}
