//! The Horovod step simulation: cycle loop, fusion, negotiation and the
//! overlap of allreduce with the backward pass.
//!
//! One simulated training step, relative to step start:
//!
//! 1. forward pass (no communication);
//! 2. backward pass emits gradient tensors per the model's
//!    [`EmissionSchedule`];
//! 3. the coordinator wakes every `cycle_time`, negotiates, packs ready
//!    tensors into fusion buffers, and hands them to the (serial)
//!    communication stream, whose per-buffer cost comes from the MPI
//!    personality's [`AllreduceOracle`];
//! 4. the optimizer runs once the backward pass is done *and* every
//!    gradient has been reduced.
//!
//! Rank asymmetry ("stragglers") is modelled by scaling each step's
//! compute by the maximum of per-rank lognormal jitter draws — the
//! synchronous allreduce makes every step as slow as its slowest rank,
//! and that maximum grows with the rank count, which is one of the
//! ingredients of sub-linear scaling at fixed per-GPU batch size.

use rand::Rng;
use summit_metrics::rng::rng_for_indexed;
use summit_sim::Machine;

use collectives::{Algorithm, LeaderAlgo};
use dlmodels::{EmissionSchedule, GpuModel, ModelGraph};
use mpi_profiles::{AllreduceOracle, MpiProfile, SelectionTable};

use crate::config::HorovodConfig;
use crate::coordinator::negotiation_cost;
use crate::fusion::{fusion_copy_time, pack};
use crate::timeline::{Phase, Timeline};

/// Per-rank compute-time jitter (lognormal σ). ~2 % matches the
/// step-time variance of real synchronized training.
pub const DEFAULT_JITTER_SIGMA: f64 = 0.022;

/// GPU device-to-device copy bandwidth for fusion buffer packing.
const FUSION_COPY_BW: f64 = 600e9;

/// Everything measured about one simulated step.
#[derive(Debug, Clone)]
pub struct StepBreakdown {
    /// Wall time of the whole step, seconds.
    pub step_time: f64,
    /// Compute-only time (forward + backward + optimizer) of the slowest
    /// rank this step.
    pub compute_time: f64,
    /// Communication-stream busy time (fusion copies + allreduces).
    pub comm_busy: f64,
    /// Step time not hidden behind compute: `step_time - compute_time`.
    pub exposed_comm: f64,
    /// Fused buffers issued.
    pub n_buffers: usize,
    /// Coordinator cycles that carried at least one tensor.
    pub n_active_cycles: usize,
    /// This step's slowest-rank jitter factor (≥ 1 in expectation-ish).
    pub jitter: f64,
}

/// Aggregate over a simulated run of several steps.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub steps: Vec<StepBreakdown>,
    /// Mean step wall time, seconds.
    pub mean_step_time: f64,
    /// Aggregate throughput: `n_ranks × batch / mean_step_time`, img/s.
    pub throughput: f64,
    /// Ideal single-GPU throughput (no comm, no jitter), img/s.
    pub single_gpu_throughput: f64,
    /// Weak-scaling efficiency vs `n_ranks ×` single-GPU throughput.
    pub efficiency: f64,
}

/// A configured distributed training-step simulator.
pub struct StepSim<'m> {
    config: HorovodConfig,
    oracle: AllreduceOracle<'m>,
    emission: EmissionSchedule,
    n_ranks: usize,
    batch_per_gpu: usize,
    jitter_sigma: f64,
    seed: u64,
}

impl<'m> StepSim<'m> {
    /// Build a simulator for `model` trained at `batch_per_gpu` on
    /// `n_ranks` GPUs of `machine`, over `profile`, with Horovod `config`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: &'m Machine,
        profile: MpiProfile,
        config: HorovodConfig,
        model: &ModelGraph,
        gpu: &GpuModel,
        batch_per_gpu: usize,
        n_ranks: usize,
        seed: u64,
    ) -> Self {
        config.validate();
        assert!(n_ranks >= 1 && batch_per_gpu >= 1);
        assert!(n_ranks <= machine.config.total_gpus(), "machine too small");
        let mut profile = profile;
        if config.hierarchical_allreduce {
            // HOROVOD_HIERARCHICAL_ALLREDUCE overrides the library's own
            // selection with the two-level algorithm for every size —
            // which is precisely why blindly enabling it can hurt.
            profile.knobs.selection = SelectionTable::new(
                vec![],
                Algorithm::Hierarchical {
                    per_node: machine.config.gpus_per_node,
                    leader: LeaderAlgo::Rabenseifner,
                },
            );
        }
        let emission = EmissionSchedule::build(model, gpu, batch_per_gpu);
        let oracle = AllreduceOracle::new(profile, machine, n_ranks);
        StepSim {
            config,
            oracle,
            emission,
            n_ranks,
            batch_per_gpu,
            jitter_sigma: DEFAULT_JITTER_SIGMA,
            seed,
        }
    }

    /// Override the straggler model's σ (0 disables jitter).
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.jitter_sigma = sigma;
        self
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn emission(&self) -> &EmissionSchedule {
        &self.emission
    }

    /// Per-rank compute scale factors for `step`: one mean-one
    /// lognormal draw per rank, in rank order. [`StepSim::step_jitter`]
    /// is their maximum; the individual values drive the per-rank
    /// compute lanes of [`StepSim::simulate_step_per_rank`], which is
    /// what makes straggler attribution in the trace possible.
    fn rank_jitters(&self, step: u64) -> Vec<f64> {
        if self.jitter_sigma == 0.0 {
            return vec![1.0; self.n_ranks];
        }
        let mut rng = rng_for_indexed(self.seed, "jitter", step);
        let sigma = self.jitter_sigma;
        let mut js = Vec::with_capacity(self.n_ranks);
        // Box–Muller normals, two per iteration. The draw order is part
        // of the seeded contract: `step_jitter` must keep returning the
        // same values it did when it drew these inline.
        while js.len() < self.n_ranks {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let z0 = r * (std::f64::consts::TAU * u2).cos();
            let z1 = r * (std::f64::consts::TAU * u2).sin();
            for z in [z0, z1] {
                if js.len() < self.n_ranks {
                    js.push((sigma * z - 0.5 * sigma * sigma).exp());
                }
            }
        }
        js
    }

    /// Slowest-rank compute scale for `step`: max of per-rank lognormal
    /// draws (mean-one parameterization).
    fn step_jitter(&self, step: u64) -> f64 {
        self.rank_jitters(step).into_iter().fold(f64::MIN, f64::max)
    }

    /// Simulate one step; optionally record a timeline.
    pub fn simulate_step(&self, step: u64, mut timeline: Option<&mut Timeline>) -> StepBreakdown {
        let e = &self.emission;
        let j = self.step_jitter(step);
        let fwd_end = e.forward_time * j;
        let bwd_end = fwd_end + e.backward_time * j;
        if let Some(t) = timeline.as_deref_mut() {
            t.push(Phase::Forward, 0.0, fwd_end, "forward");
            t.push(Phase::Backward, fwd_end, bwd_end, "backward");
        }

        let coord = negotiation_cost(self.n_ranks, self.config.response_cache);
        let cycle = self.config.cycle_time;
        let mut comm_free = 0.0f64;
        let mut comm_busy = 0.0f64;
        let mut n_buffers = 0usize;
        let mut n_active_cycles = 0usize;
        let mut next_idx = 0usize; // tensors are emitted in ready order
        let mut k = 1u64;

        if self.n_ranks > 1 {
            while next_idx < e.tensors.len() {
                let t = k as f64 * cycle;
                k += 1;
                // Collect tensors ready by this wake.
                let mut ready: Vec<(usize, u64)> = Vec::new();
                while next_idx < e.tensors.len() && fwd_end + e.tensors[next_idx].ready_at * j <= t
                {
                    ready.push((next_idx, e.tensors[next_idx].bytes));
                    next_idx += 1;
                }
                if ready.is_empty() {
                    continue;
                }
                n_active_cycles += 1;
                let issue_at = t + coord;
                if let Some(tl) = timeline.as_deref_mut() {
                    tl.push(Phase::Negotiate, t, issue_at, format!("cycle {k}"));
                }
                for buf in pack(&ready, self.config.fusion_threshold) {
                    let start = issue_at.max(comm_free);
                    let mut copy = fusion_copy_time(&buf, FUSION_COPY_BW);
                    let wire = self.config.compression.wire_bytes(buf.bytes);
                    if wire != buf.bytes {
                        // Compress + decompress passes over the payload.
                        copy += 2.0 * buf.bytes as f64 / FUSION_COPY_BW;
                    }
                    let ar = self.oracle.time(wire);
                    if let Some(tl) = timeline.as_deref_mut() {
                        if copy > 0.0 {
                            tl.push(Phase::FusionCopy, start, start + copy, "pack+unpack");
                        }
                        tl.push(
                            Phase::Allreduce,
                            start + copy,
                            start + copy + ar,
                            format!("{} B x{}", buf.bytes, buf.n_tensors),
                        );
                    }
                    comm_free = start + copy + ar;
                    comm_busy += copy + ar;
                    n_buffers += 1;
                }
            }
        }

        let opt_start = bwd_end.max(comm_free);
        let step_time = opt_start + e.optimizer_time * j;
        if let Some(tl) = timeline {
            tl.push(Phase::Optimizer, opt_start, step_time, "apply gradients");
        }
        let compute_time = (e.forward_time + e.backward_time + e.optimizer_time) * j;
        StepBreakdown {
            step_time,
            compute_time,
            comm_busy,
            exposed_comm: (step_time - compute_time).max(0.0),
            n_buffers,
            n_active_cycles,
            jitter: j,
        }
    }

    /// Simulate one step recording one timeline **per rank** (pid =
    /// rank). Compute spans use each rank's own jitter draw; the
    /// synchronous comm stream — gated by the slowest rank, exactly as
    /// in [`StepSim::simulate_step`] — is mirrored onto every rank's
    /// comm lane. The returned breakdown is identical to
    /// `simulate_step`'s for the same step.
    pub fn simulate_step_per_rank(&self, step: u64) -> (StepBreakdown, Vec<Timeline>) {
        let e = &self.emission;
        let js = self.rank_jitters(step);
        let j = js.iter().copied().fold(f64::MIN, f64::max);
        let mut tls: Vec<Timeline> =
            (0..self.n_ranks).map(|r| Timeline::for_rank(r as u32)).collect();
        for (r, tl) in tls.iter_mut().enumerate() {
            let fwd_r = e.forward_time * js[r];
            tl.push(Phase::Forward, 0.0, fwd_r, "forward");
            tl.push(Phase::Backward, fwd_r, fwd_r + e.backward_time * js[r], "backward");
        }
        let fwd_end = e.forward_time * j;
        let bwd_end = fwd_end + e.backward_time * j;

        let coord = negotiation_cost(self.n_ranks, self.config.response_cache);
        let cycle = self.config.cycle_time;
        let mut comm_free = 0.0f64;
        let mut comm_busy = 0.0f64;
        let mut n_buffers = 0usize;
        let mut n_active_cycles = 0usize;
        let mut next_idx = 0usize;
        let mut k = 1u64;

        if self.n_ranks > 1 {
            while next_idx < e.tensors.len() {
                let t = k as f64 * cycle;
                k += 1;
                let mut ready: Vec<(usize, u64)> = Vec::new();
                while next_idx < e.tensors.len() && fwd_end + e.tensors[next_idx].ready_at * j <= t
                {
                    ready.push((next_idx, e.tensors[next_idx].bytes));
                    next_idx += 1;
                }
                if ready.is_empty() {
                    continue;
                }
                n_active_cycles += 1;
                let issue_at = t + coord;
                let cyc_label = format!("cycle {k}");
                for tl in tls.iter_mut() {
                    tl.push(Phase::Negotiate, t, issue_at, cyc_label.clone());
                }
                for buf in pack(&ready, self.config.fusion_threshold) {
                    let start = issue_at.max(comm_free);
                    let mut copy = fusion_copy_time(&buf, FUSION_COPY_BW);
                    let wire = self.config.compression.wire_bytes(buf.bytes);
                    if wire != buf.bytes {
                        copy += 2.0 * buf.bytes as f64 / FUSION_COPY_BW;
                    }
                    let ar = self.oracle.time(wire);
                    let ar_label = format!("{} B x{}", buf.bytes, buf.n_tensors);
                    for tl in tls.iter_mut() {
                        if copy > 0.0 {
                            tl.push(Phase::FusionCopy, start, start + copy, "pack+unpack");
                        }
                        tl.push(
                            Phase::Allreduce,
                            start + copy,
                            start + copy + ar,
                            ar_label.clone(),
                        );
                    }
                    comm_free = start + copy + ar;
                    comm_busy += copy + ar;
                    n_buffers += 1;
                }
            }
        }

        let opt_start = bwd_end.max(comm_free);
        let step_time = opt_start + e.optimizer_time * j;
        for (r, tl) in tls.iter_mut().enumerate() {
            tl.push(
                Phase::Optimizer,
                opt_start,
                opt_start + e.optimizer_time * js[r],
                "apply gradients",
            );
        }
        let compute_time = (e.forward_time + e.backward_time + e.optimizer_time) * j;
        (
            StepBreakdown {
                step_time,
                compute_time,
                comm_busy,
                exposed_comm: (step_time - compute_time).max(0.0),
                n_buffers,
                n_active_cycles,
                jitter: j,
            },
            tls,
        )
    }

    /// Simulate `steps` steps and aggregate.
    pub fn simulate_training(&self, steps: usize) -> TrainReport {
        assert!(steps >= 1);
        let step_reports: Vec<StepBreakdown> =
            (0..steps as u64).map(|s| self.simulate_step(s, None)).collect();
        let mean_step_time = step_reports.iter().map(|s| s.step_time).sum::<f64>() / steps as f64;
        let single = self.batch_per_gpu as f64 / self.emission.compute_time();
        let throughput = self.n_ranks as f64 * self.batch_per_gpu as f64 / mean_step_time;
        TrainReport {
            steps: step_reports,
            mean_step_time,
            throughput,
            single_gpu_throughput: single,
            efficiency: throughput / (self.n_ranks as f64 * single),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::{deeplab_paper, resnet50};
    use summit_sim::MachineConfig;

    fn machine(gpus: usize) -> Machine {
        Machine::new(MachineConfig::summit_for_gpus(gpus))
    }

    fn sim<'m>(
        machine: &'m Machine,
        profile: MpiProfile,
        config: HorovodConfig,
        n_ranks: usize,
    ) -> StepSim<'m> {
        StepSim::new(machine, profile, config, &deeplab_paper(), &GpuModel::v100(), 2, n_ranks, 42)
    }

    #[test]
    fn single_rank_has_no_comm() {
        let m = machine(6);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 1);
        let b = s.simulate_step(0, None);
        assert_eq!(b.n_buffers, 0);
        assert_eq!(b.comm_busy, 0.0);
        assert!((b.step_time - b.compute_time).abs() < 1e-12);
    }

    #[test]
    fn all_gradient_bytes_are_communicated() {
        let m = machine(12);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 12);
        let mut tl = Timeline::default();
        let b = s.simulate_step(0, Some(&mut tl));
        assert!(b.n_buffers >= 1);
        // Every tensor appears in exactly one allreduce span.
        let total: u64 = tl
            .spans
            .iter()
            .filter(|sp| sp.phase == Phase::Allreduce)
            .map(|sp| sp.label.split(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, s.emission().total_bytes());
    }

    #[test]
    fn mv2_scales_better_than_spectrum_at_132() {
        let m = machine(132);
        let cfg = HorovodConfig::default();
        let mv2 = sim(&m, MpiProfile::mvapich2_gdr(), cfg.clone(), 132).simulate_training(3);
        let spec = sim(&m, MpiProfile::spectrum_default(), cfg, 132).simulate_training(3);
        assert!(
            mv2.efficiency > spec.efficiency + 0.05,
            "MV2 {:.3} vs Spectrum {:.3}",
            mv2.efficiency,
            spec.efficiency
        );
    }

    #[test]
    fn efficiency_decreases_with_scale() {
        let m = machine(132);
        let cfg = HorovodConfig::default();
        let e12 = sim(&m, MpiProfile::spectrum_default(), cfg.clone(), 12)
            .simulate_training(3)
            .efficiency;
        let e132 =
            sim(&m, MpiProfile::spectrum_default(), cfg, 132).simulate_training(3).efficiency;
        assert!(e132 < e12, "eff 12={e12:.3} 132={e132:.3}");
    }

    #[test]
    fn tiny_fusion_threshold_hurts() {
        let m = machine(48);
        let base = HorovodConfig::default();
        let good =
            sim(&m, MpiProfile::mvapich2_gdr(), base.clone(), 48).simulate_training(3).throughput;
        let tiny = sim(
            &m,
            MpiProfile::mvapich2_gdr(),
            base.with_fusion(64 << 10), // 64 KiB: hundreds of small allreduces
            48,
        )
        .simulate_training(3)
        .throughput;
        assert!(good > tiny, "64 MiB fusion {good:.1} vs 64 KiB {tiny:.1}");
    }

    #[test]
    fn huge_cycle_time_hurts() {
        let m = machine(48);
        let base = HorovodConfig::default();
        let good = sim(&m, MpiProfile::mvapich2_gdr(), base.clone().with_cycle(2e-3), 48)
            .simulate_training(3)
            .throughput;
        let slow = sim(&m, MpiProfile::mvapich2_gdr(), base.with_cycle(100e-3), 48)
            .simulate_training(3)
            .throughput;
        assert!(good > slow * 1.02, "2 ms cycle {good:.1} vs 100 ms {slow:.1}");
    }

    #[test]
    fn disabling_response_cache_costs_time() {
        let m = machine(132);
        let base = HorovodConfig::default();
        let cached =
            sim(&m, MpiProfile::mvapich2_gdr(), base.clone(), 132).simulate_training(3).throughput;
        let uncached = sim(&m, MpiProfile::mvapich2_gdr(), base.with_cache(false), 132)
            .simulate_training(3)
            .throughput;
        assert!(cached >= uncached, "{cached:.1} vs {uncached:.1}");
    }

    #[test]
    fn jitter_penalty_grows_with_scale() {
        let m = machine(132);
        let s6 = sim(&m, MpiProfile::nccl(), HorovodConfig::default(), 6);
        let s132 = sim(&m, MpiProfile::nccl(), HorovodConfig::default(), 132);
        let j6: f64 = (0..20).map(|k| s6.step_jitter(k)).sum::<f64>() / 20.0;
        let j132: f64 = (0..20).map(|k| s132.step_jitter(k)).sum::<f64>() / 20.0;
        assert!(j132 > j6, "max-of-132 jitter {j132} must exceed max-of-6 {j6}");
    }

    #[test]
    fn zero_jitter_is_deterministic_and_exact() {
        let m = machine(12);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 12).with_jitter(0.0);
        let a = s.simulate_step(0, None);
        let b = s.simulate_step(1, None);
        assert_eq!(a.step_time, b.step_time);
        assert_eq!(a.jitter, 1.0);
    }

    #[test]
    fn timeline_phases_are_complete() {
        let m = machine(12);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 12);
        let mut tl = Timeline::default();
        s.simulate_step(0, Some(&mut tl));
        for phase in
            [Phase::Forward, Phase::Backward, Phase::Negotiate, Phase::Allreduce, Phase::Optimizer]
        {
            assert!(tl.count(phase) > 0, "missing {phase:?} spans");
        }
    }

    #[test]
    fn per_rank_step_matches_aggregate_breakdown() {
        let m = machine(12);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 12);
        let agg = s.simulate_step(3, None);
        let (per, tls) = s.simulate_step_per_rank(3);
        assert_eq!(agg.step_time, per.step_time);
        assert_eq!(agg.comm_busy, per.comm_busy);
        assert_eq!(agg.n_buffers, per.n_buffers);
        assert_eq!(agg.jitter, per.jitter);
        assert_eq!(tls.len(), 12);
        // Every rank sees the same synchronous comm stream...
        for tl in &tls {
            assert_eq!(tl.count(Phase::Allreduce), tls[0].count(Phase::Allreduce));
        }
        // ...but its own compute spans: the slowest rank's backward end
        // is exactly the aggregate (max-jitter) gate.
        let bwd_end = tls
            .iter()
            .flat_map(|tl| tl.spans.iter())
            .filter(|sp| sp.phase == Phase::Backward)
            .map(|sp| sp.end)
            .fold(f64::MIN, f64::max);
        let e = s.emission();
        assert!((bwd_end - (e.forward_time + e.backward_time) * per.jitter).abs() < 1e-12);
    }

    #[test]
    fn merged_per_rank_trace_has_distinct_pids_and_union_busy_time() {
        let m = machine(12);
        let s = sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 4);
        let (_, tls) = s.simulate_step_per_rank(0);
        let mut merged = Timeline::default();
        for tl in &tls {
            merged.merge(tl);
        }
        let parsed = trace::parse_trace(&merged.to_chrome_json()).unwrap();
        let mut pids: Vec<u32> = parsed.iter().filter(|e| e.ph == 'X').map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 4, "one pid per rank");
        // Allreduce spans are mirrored on 4 comm lanes: the naive sum
        // quadruple-counts them, the union does not.
        let sum = merged.total(Phase::Allreduce);
        let busy = merged.busy_time(Phase::Allreduce);
        assert!(sum > busy * 3.9, "sum {sum} should be ~4x union {busy}");
        assert!((busy - tls[0].busy_time(Phase::Allreduce)).abs() < 1e-12);
    }

    #[test]
    fn resnet_scales_almost_perfectly() {
        // ResNet-50's small gradients + fast comm: near-linear at 48 even
        // on defaults — the contrast the paper draws with DLv3+.
        let m = machine(48);
        let s = StepSim::new(
            &m,
            MpiProfile::mvapich2_gdr(),
            HorovodConfig::default(),
            &resnet50(224),
            &GpuModel::v100(),
            32,
            48,
            42,
        );
        let r = s.simulate_training(3);
        assert!(r.efficiency > 0.85, "ResNet-50 efficiency = {:.3}", r.efficiency);
    }

    #[test]
    fn forced_hierarchical_changes_behavior() {
        let m = machine(48);
        let plain = sim(&m, MpiProfile::spectrum_default(), HorovodConfig::default(), 48)
            .simulate_step(0, None)
            .comm_busy;
        let hier = sim(
            &m,
            MpiProfile::spectrum_default(),
            HorovodConfig::default().with_hierarchical(true),
            48,
        )
        .simulate_step(0, None)
        .comm_busy;
        assert!(
            (plain - hier).abs() / plain > 1e-3,
            "knob must change the comm stream: {plain} vs {hier}"
        );
    }

    #[test]
    fn training_report_consistency() {
        let m = machine(24);
        let r =
            sim(&m, MpiProfile::mvapich2_gdr(), HorovodConfig::default(), 24).simulate_training(5);
        assert_eq!(r.steps.len(), 5);
        assert!(r.efficiency > 0.0 && r.efficiency <= 1.05);
        let recomputed = 24.0 * 2.0 / r.mean_step_time;
        assert!((r.throughput - recomputed).abs() < 1e-9);
    }
}
