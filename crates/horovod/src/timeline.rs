//! Horovod-timeline-style tracing of a simulated step.
//!
//! Real Horovod writes a Chrome-trace JSON (`HOROVOD_TIMELINE=...`); the
//! simulated runtime can do the same, plus a human-readable text
//! rendering for terminal inspection. JSON emission is a thin shim over
//! the `trace` crate's Chrome writer: each span carries the rank it
//! belongs to (rank → Chrome `pid`) and its phase maps onto a thread
//! lane (`tid` 0 = compute, 1 = comm, 2 = faults), so a merged
//! multi-rank timeline renders as one row group per rank instead of
//! collapsing onto `pid:0,tid:0`.

use std::fmt::Write as _;

use trace::chrome::{metadata_process_name, metadata_thread_name};
use trace::ChromeEvent;

/// What a timeline span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Forward,
    Backward,
    Negotiate,
    FusionCopy,
    Allreduce,
    Optimizer,
    /// Fault-layer activity: injections, retries, resends, topology
    /// degradations, checkpoint I/O (see [`Timeline::push_fault_lane`]).
    Fault,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "FORWARD",
            Phase::Backward => "BACKWARD",
            Phase::Negotiate => "NEGOTIATE_ALLREDUCE",
            Phase::FusionCopy => "MEMCPY_IN_FUSION_BUFFER",
            Phase::Allreduce => "MPI_ALLREDUCE",
            Phase::Optimizer => "OPTIMIZER",
            Phase::Fault => "FAULT",
        }
    }

    /// The Chrome thread lane this phase renders on within its rank's
    /// process group.
    pub fn tid(self) -> u32 {
        match self {
            Phase::Forward | Phase::Backward | Phase::Optimizer => 0,
            Phase::Negotiate | Phase::FusionCopy | Phase::Allreduce => 1,
            Phase::Fault => 2,
        }
    }
}

fn tid_name(tid: u32) -> &'static str {
    match tid {
        0 => "compute",
        1 => "comm",
        _ => "faults",
    }
}

/// A closed span on the step timeline (seconds from step start).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub phase: Phase,
    pub start: f64,
    pub end: f64,
    pub label: String,
    /// The rank this span belongs to (Chrome `pid`).
    pub rank: u32,
}

/// An ordered collection of spans for one step. `Timeline::default()`
/// records as rank 0; [`Timeline::for_rank`] tags pushes with another
/// rank, and [`Timeline::merge`] combines per-rank timelines into one
/// multi-pid trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub spans: Vec<Span>,
    rank: u32,
}

impl Timeline {
    /// A timeline whose pushes are tagged with `rank` (Chrome pid).
    pub fn for_rank(rank: u32) -> Self {
        Timeline { spans: Vec::new(), rank }
    }

    /// The rank new pushes are tagged with.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn push(&mut self, phase: Phase, start: f64, end: f64, label: impl Into<String>) {
        assert!(end >= start, "span ends before it starts");
        self.spans.push(Span { phase, start, end, label: label.into(), rank: self.rank });
    }

    /// Append every span of `other` (keeping its rank tags).
    pub fn merge(&mut self, other: &Timeline) {
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Total time attributed to `phase` as a plain **sum** of span
    /// durations — overlapping spans are counted twice, which makes
    /// this rank-seconds, not wall-clock. Use [`Timeline::busy_time`]
    /// for any efficiency math.
    pub fn total(&self, phase: Phase) -> f64 {
        self.spans.iter().filter(|s| s.phase == phase).map(|s| s.end - s.start).sum()
    }

    /// Wall-clock time during which at least one `phase` span was open
    /// — the interval **union** across all ranks and lanes. This is
    /// the quantity "fraction of the step spent in allreduce" must be
    /// computed from; the sum in [`Timeline::total`] double-counts as
    /// soon as spans overlap.
    pub fn busy_time(&self, phase: Phase) -> f64 {
        let mut iv: Vec<(f64, f64)> = self
            .spans
            .iter()
            .filter(|s| s.phase == phase && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut busy = 0.0;
        let mut open: Option<(f64, f64)> = None;
        for (s, e) in iv {
            match open {
                Some((os, oe)) if s <= oe => open = Some((os, oe.max(e))),
                Some((os, oe)) => {
                    busy += oe - os;
                    open = Some((s, e));
                }
                None => open = Some((s, e)),
            }
        }
        if let Some((os, oe)) = open {
            busy += oe - os;
        }
        busy
    }

    pub fn count(&self, phase: Phase) -> usize {
        self.spans.iter().filter(|s| s.phase == phase).count()
    }

    /// Add a fault lane from a chaos run's timestamped event log
    /// ([`faults::EventLog::snapshot`]). Events are instantaneous from
    /// the log's point of view; each becomes a zero-length span labeled
    /// with the event's rendering, so a Chrome-trace viewer shows the
    /// fault activity interleaved with the training phases.
    pub fn push_fault_lane(&mut self, events: &[faults::Stamped]) {
        for s in events {
            self.push(Phase::Fault, s.t, s.t, s.event.to_string());
        }
    }

    /// The timeline as Chrome-trace events: `process_name` /
    /// `thread_name` metadata for every `(rank, lane)` present, then
    /// one complete event per span (seconds → µs).
    pub fn to_chrome_events(&self) -> Vec<ChromeEvent> {
        let mut events = Vec::new();
        let mut named_pids: Vec<u32> = Vec::new();
        let mut named_lanes: Vec<(u32, u32)> = Vec::new();
        for s in &self.spans {
            let tid = s.phase.tid();
            if !named_pids.contains(&s.rank) {
                named_pids.push(s.rank);
                events.push(metadata_process_name(s.rank, &format!("rank {}", s.rank)));
            }
            if !named_lanes.contains(&(s.rank, tid)) {
                named_lanes.push((s.rank, tid));
                events.push(metadata_thread_name(s.rank, tid, tid_name(tid)));
            }
        }
        for s in &self.spans {
            events.push(ChromeEvent::complete(
                &s.label,
                s.phase.name(),
                s.start * 1e6,
                (s.end - s.start) * 1e6,
                s.rank,
                s.phase.tid(),
            ));
        }
        events
    }

    /// Chrome-trace JSON ("X" complete events, µs units) — a thin shim
    /// over [`trace::write_trace`].
    pub fn to_chrome_json(&self) -> String {
        trace::write_trace(&self.to_chrome_events())
    }

    /// Terminal rendering: one line per span.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:>10.1} µs  {:>10.1} µs  {:<24} {}",
                s.start * 1e6,
                (s.end - s.start) * 1e6,
                s.phase.name(),
                s.label
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_counts() {
        let mut t = Timeline::default();
        t.push(Phase::Allreduce, 0.0, 1.0, "buf0");
        t.push(Phase::Allreduce, 2.0, 2.5, "buf1");
        t.push(Phase::Forward, 0.0, 0.25, "fwd");
        assert_eq!(t.total(Phase::Allreduce), 1.5);
        assert_eq!(t.count(Phase::Allreduce), 2);
        assert_eq!(t.count(Phase::Optimizer), 0);
    }

    #[test]
    fn busy_time_unions_overlapping_spans() {
        let mut t = Timeline::default();
        t.push(Phase::Allreduce, 0.0, 1.0, "rank0");
        t.push(Phase::Allreduce, 0.5, 1.5, "rank1");
        t.push(Phase::Allreduce, 3.0, 4.0, "later");
        // Sum double-counts the overlap; the union does not.
        assert_eq!(t.total(Phase::Allreduce), 3.0);
        assert!((t.busy_time(Phase::Allreduce) - 2.5).abs() < 1e-12);
        // Disjoint spans: union equals sum.
        assert!((t.busy_time(Phase::Forward) - t.total(Phase::Forward)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn inverted_span_panics() {
        Timeline::default().push(Phase::Forward, 1.0, 0.5, "bad");
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let mut t = Timeline::default();
        t.push(Phase::Negotiate, 0.0, 1e-5, "cycle \"1\"");
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("cycle \\\"1\\\""), "quotes escaped: {j}");
        assert!(j.contains("\"dur\":10.000"));
    }

    #[test]
    fn chrome_json_carries_rank_pids_and_lane_metadata() {
        let mut merged = Timeline::default();
        for rank in 0..3u32 {
            let mut t = Timeline::for_rank(rank);
            t.push(Phase::Forward, 0.0, 1e-3, "f");
            t.push(Phase::Allreduce, 1e-3, 2e-3, "ar");
            merged.merge(&t);
        }
        let events = merged.to_chrome_events();
        let parsed = trace::parse_trace(&merged.to_chrome_json()).expect("own JSON parses");
        assert_eq!(events.len(), parsed.len());
        let mut pids: Vec<u32> = parsed.iter().filter(|e| e.ph == 'X').map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, vec![0, 1, 2], "one pid per rank");
        // Compute and comm land on different tids within a rank.
        let fwd = parsed.iter().find(|e| e.cat == "FORWARD").expect("fwd");
        let ar = parsed.iter().find(|e| e.cat == "MPI_ALLREDUCE").expect("ar");
        assert_eq!(fwd.tid, 0);
        assert_eq!(ar.tid, 1);
        // Metadata names every rank row.
        let metas: Vec<_> = parsed.iter().filter(|e| e.ph == 'M').collect();
        assert!(metas.iter().any(|m| m.meta_name.as_deref() == Some("rank 2")));
        assert!(metas.iter().any(|m| m.meta_name.as_deref() == Some("comm")));
    }

    #[test]
    fn fault_lane_renders_events() {
        let log = faults::EventLog::new();
        log.push(faults::FaultEvent::Injected {
            step: 3,
            rank: 1,
            round: 0,
            kind: faults::FaultKind::Drop,
        });
        log.push(faults::FaultEvent::Degraded { step: 3, dead: vec![2], new_world: 3 });
        let mut t = Timeline::default();
        t.push(Phase::Allreduce, 0.0, 1.0, "buf0");
        t.push_fault_lane(&log.snapshot());
        assert_eq!(t.count(Phase::Fault), 2);
        let j = t.to_chrome_json();
        assert!(j.contains("\"cat\":\"FAULT\""), "{j}");
        assert!(j.contains("inject drop step 3 rank 1 round 0"), "{j}");
        assert!(t.render_text().contains("degraded step 3 dead [2] new world 3"));
    }

    #[test]
    fn text_rendering_lists_all_spans() {
        let mut t = Timeline::default();
        t.push(Phase::Forward, 0.0, 1e-3, "f");
        t.push(Phase::Backward, 1e-3, 3e-3, "b");
        let txt = t.render_text();
        assert_eq!(txt.lines().count(), 2);
        assert!(txt.contains("FORWARD") && txt.contains("BACKWARD"));
    }
}
