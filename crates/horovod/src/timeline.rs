//! Horovod-timeline-style tracing of a simulated step.
//!
//! Real Horovod writes a Chrome-trace JSON (`HOROVOD_TIMELINE=...`); the
//! simulated runtime can do the same, plus a human-readable text
//! rendering for terminal inspection. JSON is emitted by hand (no serde
//! dependency) — the format is a flat array of complete events.

use std::fmt::Write as _;

/// What a timeline span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Forward,
    Backward,
    Negotiate,
    FusionCopy,
    Allreduce,
    Optimizer,
    /// Fault-layer activity: injections, retries, resends, topology
    /// degradations, checkpoint I/O (see [`Timeline::push_fault_lane`]).
    Fault,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "FORWARD",
            Phase::Backward => "BACKWARD",
            Phase::Negotiate => "NEGOTIATE_ALLREDUCE",
            Phase::FusionCopy => "MEMCPY_IN_FUSION_BUFFER",
            Phase::Allreduce => "MPI_ALLREDUCE",
            Phase::Optimizer => "OPTIMIZER",
            Phase::Fault => "FAULT",
        }
    }
}

/// A closed span on the step timeline (seconds from step start).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub phase: Phase,
    pub start: f64,
    pub end: f64,
    pub label: String,
}

/// An ordered collection of spans for one step.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub spans: Vec<Span>,
}

impl Timeline {
    pub fn push(&mut self, phase: Phase, start: f64, end: f64, label: impl Into<String>) {
        assert!(end >= start, "span ends before it starts");
        self.spans.push(Span { phase, start, end, label: label.into() });
    }

    /// Total time attributed to `phase` (spans may overlap; this sums
    /// durations, it does not union).
    pub fn total(&self, phase: Phase) -> f64 {
        self.spans.iter().filter(|s| s.phase == phase).map(|s| s.end - s.start).sum()
    }

    pub fn count(&self, phase: Phase) -> usize {
        self.spans.iter().filter(|s| s.phase == phase).count()
    }

    /// Add a fault lane from a chaos run's timestamped event log
    /// ([`faults::EventLog::snapshot`]). Events are instantaneous from
    /// the log's point of view; each becomes a zero-length span labeled
    /// with the event's rendering, so a Chrome-trace viewer shows the
    /// fault activity interleaved with the training phases.
    pub fn push_fault_lane(&mut self, events: &[faults::Stamped]) {
        for s in events {
            self.push(Phase::Fault, s.t, s.t, s.event.to_string());
        }
    }

    /// Chrome-trace JSON ("X" complete events, µs units).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":0}}",
                escape(&s.label),
                s.phase.name(),
                s.start * 1e6,
                (s.end - s.start) * 1e6,
            );
        }
        out.push(']');
        out
    }

    /// Terminal rendering: one line per span.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:>10.1} µs  {:>10.1} µs  {:<24} {}",
                s.start * 1e6,
                (s.end - s.start) * 1e6,
                s.phase.name(),
                s.label
            );
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_counts() {
        let mut t = Timeline::default();
        t.push(Phase::Allreduce, 0.0, 1.0, "buf0");
        t.push(Phase::Allreduce, 2.0, 2.5, "buf1");
        t.push(Phase::Forward, 0.0, 0.25, "fwd");
        assert_eq!(t.total(Phase::Allreduce), 1.5);
        assert_eq!(t.count(Phase::Allreduce), 2);
        assert_eq!(t.count(Phase::Optimizer), 0);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn inverted_span_panics() {
        Timeline::default().push(Phase::Forward, 1.0, 0.5, "bad");
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let mut t = Timeline::default();
        t.push(Phase::Negotiate, 0.0, 1e-5, "cycle \"1\"");
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("cycle \\\"1\\\""), "quotes escaped: {j}");
        assert!(j.contains("\"dur\":10.000"));
    }

    #[test]
    fn fault_lane_renders_events() {
        let log = faults::EventLog::new();
        log.push(faults::FaultEvent::Injected {
            step: 3,
            rank: 1,
            round: 0,
            kind: faults::FaultKind::Drop,
        });
        log.push(faults::FaultEvent::Degraded { step: 3, dead: vec![2], new_world: 3 });
        let mut t = Timeline::default();
        t.push(Phase::Allreduce, 0.0, 1.0, "buf0");
        t.push_fault_lane(&log.snapshot());
        assert_eq!(t.count(Phase::Fault), 2);
        let j = t.to_chrome_json();
        assert!(j.contains("\"cat\":\"FAULT\""), "{j}");
        assert!(j.contains("inject drop step 3 rank 1 round 0"), "{j}");
        assert!(t.render_text().contains("degraded step 3 dead [2] new world 3"));
    }

    #[test]
    fn text_rendering_lists_all_spans() {
        let mut t = Timeline::default();
        t.push(Phase::Forward, 0.0, 1e-3, "f");
        t.push(Phase::Backward, 1e-3, 3e-3, "b");
        let txt = t.render_text();
        assert_eq!(txt.lines().count(), 2);
        assert!(txt.contains("FORWARD") && txt.contains("BACKWARD"));
    }
}
