//! Simulation of the Horovod runtime — the system whose knobs the paper
//! tunes.
//!
//! The pieces mirror Horovod's actual architecture:
//!
//! * [`config`] — `HOROVOD_FUSION_THRESHOLD`, `HOROVOD_CYCLE_TIME`,
//!   response cache, forced hierarchical allreduce;
//! * [`coordinator`] — the per-cycle negotiation cost (with/without the
//!   response cache);
//! * [`fusion`] — greedy packing of ready tensors into fusion buffers,
//!   including the pack/unpack device copies;
//! * [`runtime`] — the step simulation: backward-pass gradient emission
//!   feeding the cycle loop, fused allreduces overlapping compute on a
//!   serial communication stream, slowest-rank jitter;
//! * [`timeline`] — Horovod-timeline-style tracing (text +
//!   Chrome-trace JSON).
//!
//! # Example
//!
//! ```
//! use horovod::{HorovodConfig, StepSim};
//! use dlmodels::{deeplab_paper, GpuModel};
//! use mpi_profiles::MpiProfile;
//! use summit_sim::{Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::summit_for_gpus(12));
//! let sim = StepSim::new(
//!     &machine,
//!     MpiProfile::mvapich2_gdr(),
//!     HorovodConfig::default(),
//!     &deeplab_paper(),
//!     &GpuModel::v100(),
//!     2,   // batch per GPU
//!     12,  // ranks
//!     42,  // seed
//! );
//! let report = sim.simulate_training(3);
//! assert!(report.efficiency > 0.5 && report.efficiency <= 1.0);
//! ```

pub mod autotune;
pub mod config;
pub mod coordinator;
pub mod fusion;
pub mod runtime;
pub mod timeline;

pub use autotune::{autotune, AutotuneReport};
pub use config::{Compression, HorovodConfig};
pub use fusion::{pack, FusedBuffer};
pub use runtime::{StepBreakdown, StepSim, TrainReport, DEFAULT_JITTER_SIGMA};
pub use timeline::{Phase, Span, Timeline};
