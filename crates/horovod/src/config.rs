//! The Horovod runtime knobs the paper tunes.
//!
//! Names and defaults follow Horovod 0.16–0.19 (the paper's era):
//! `HOROVOD_FUSION_THRESHOLD` defaulted to 64 MB and
//! `HOROVOD_CYCLE_TIME` to 5 ms.

/// Gradient compression applied before allreduce
/// (`HOROVOD_COMPRESSION`). Fp16 halves the wire bytes at the cost of a
/// compress/decompress pass and reduced mantissa (the accuracy side is
/// exercised for real in `trainer::real`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    #[default]
    None,
    Fp16,
}

impl Compression {
    /// Wire bytes for a payload of `bytes` fp32 gradient bytes.
    pub fn wire_bytes(self, bytes: u64) -> u64 {
        match self {
            Compression::None => bytes,
            Compression::Fp16 => bytes / 2,
        }
    }
}

/// Horovod runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HorovodConfig {
    /// `HOROVOD_FUSION_THRESHOLD` — fusion buffer capacity in bytes.
    /// 0 disables fusion (every tensor becomes its own allreduce).
    pub fusion_threshold: u64,
    /// `HOROVOD_CYCLE_TIME` — how often the background coordinator wakes
    /// to collect ready tensors, in seconds. Must be positive.
    pub cycle_time: f64,
    /// `HOROVOD_CACHE_CAPACITY > 0` — the response cache replaces the
    /// full tensor-name negotiation with a bit-vector check.
    pub response_cache: bool,
    /// `HOROVOD_HIERARCHICAL_ALLREDUCE` — force the two-level algorithm
    /// regardless of the MPI library's own selection table.
    pub hierarchical_allreduce: bool,
    /// `HOROVOD_COMPRESSION` — gradient compression before allreduce.
    pub compression: Compression,
}

impl Default for HorovodConfig {
    /// Paper-era defaults: 64 MB fusion, 5 ms cycle, cache on,
    /// hierarchical off.
    fn default() -> Self {
        HorovodConfig {
            fusion_threshold: 64 * 1024 * 1024,
            cycle_time: 5e-3,
            response_cache: true,
            hierarchical_allreduce: false,
            compression: Compression::None,
        }
    }
}

impl HorovodConfig {
    pub fn validate(&self) {
        assert!(
            self.cycle_time > 0.0 && self.cycle_time.is_finite(),
            "cycle time must be positive, got {}",
            self.cycle_time
        );
    }

    /// Builder-style setters for sweep code.
    pub fn with_fusion(mut self, bytes: u64) -> Self {
        self.fusion_threshold = bytes;
        self
    }

    pub fn with_cycle(mut self, seconds: f64) -> Self {
        self.cycle_time = seconds;
        self
    }

    pub fn with_cache(mut self, on: bool) -> Self {
        self.response_cache = on;
        self
    }

    pub fn with_hierarchical(mut self, on: bool) -> Self {
        self.hierarchical_allreduce = on;
        self
    }

    pub fn with_compression(mut self, c: Compression) -> Self {
        self.compression = c;
        self
    }

    /// A compact `KEY=VALUE` rendering, like the env the paper reports.
    pub fn render_env(&self) -> String {
        format!(
            "HOROVOD_FUSION_THRESHOLD={} HOROVOD_CYCLE_TIME={:.1} HOROVOD_CACHE_CAPACITY={} HOROVOD_HIERARCHICAL_ALLREDUCE={} HOROVOD_COMPRESSION={}",
            self.fusion_threshold,
            self.cycle_time * 1e3,
            if self.response_cache { 1024 } else { 0 },
            u8::from(self.hierarchical_allreduce),
            match self.compression {
                Compression::None => "none",
                Compression::Fp16 => "fp16",
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_era() {
        let c = HorovodConfig::default();
        assert_eq!(c.fusion_threshold, 64 << 20);
        assert!((c.cycle_time - 5e-3).abs() < 1e-12);
        assert!(c.response_cache);
        assert!(!c.hierarchical_allreduce);
        assert_eq!(c.compression, Compression::None);
        c.validate();
    }

    #[test]
    fn builder_chain() {
        let c = HorovodConfig::default()
            .with_fusion(8 << 20)
            .with_cycle(1e-3)
            .with_cache(false)
            .with_hierarchical(true);
        assert_eq!(c.fusion_threshold, 8 << 20);
        assert!((c.cycle_time - 1e-3).abs() < 1e-12);
        assert!(!c.response_cache);
        assert!(c.hierarchical_allreduce);
    }

    #[test]
    #[should_panic(expected = "cycle time must be positive")]
    fn zero_cycle_rejected() {
        HorovodConfig::default().with_cycle(0.0).validate();
    }

    #[test]
    fn compression_wire_bytes() {
        assert_eq!(Compression::None.wire_bytes(100), 100);
        assert_eq!(Compression::Fp16.wire_bytes(100), 50);
        let c = HorovodConfig::default().with_compression(Compression::Fp16);
        assert!(c.render_env().contains("HOROVOD_COMPRESSION=fp16"));
    }

    #[test]
    fn env_rendering() {
        let env = HorovodConfig::default().render_env();
        assert!(env.contains("HOROVOD_FUSION_THRESHOLD=67108864"));
        assert!(env.contains("HOROVOD_CYCLE_TIME=5.0"));
        assert!(env.contains("HOROVOD_CACHE_CAPACITY=1024"));
    }
}
