//! The Horovod runtime knobs the paper tunes.
//!
//! Names and defaults follow Horovod 0.16–0.19 (the paper's era):
//! `HOROVOD_FUSION_THRESHOLD` defaulted to 64 MB and
//! `HOROVOD_CYCLE_TIME` to 5 ms.

use collectives::CodecKind;

/// Gradient compression applied before allreduce
/// (`HOROVOD_COMPRESSION`). Fp16 halves the wire bytes at the cost of a
/// compress/decompress pass and reduced mantissa; the quantizing and
/// sparsifying codecs shrink the wire further (the accuracy side of all
/// of them is exercised for real in `trainer::real` via
/// [`collectives::compression`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    #[default]
    None,
    Fp16,
    /// Per-chunk-scale 8-bit quantization (~3.94x).
    Int8,
    /// Per-chunk-scale 4-bit quantization (~7.76x).
    Int4,
    /// Top-k sparsification, k = n/8 index+value pairs (4x).
    TopK,
}

impl Compression {
    /// Every variant, in sweep order.
    pub const ALL: [Compression; 5] = [
        Compression::None,
        Compression::Fp16,
        Compression::Int8,
        Compression::Int4,
        Compression::TopK,
    ];

    /// The real codec whose wire format this simulated knob models.
    pub fn codec(self) -> CodecKind {
        match self {
            Compression::None => CodecKind::None,
            Compression::Fp16 => CodecKind::Fp16,
            Compression::Int8 => CodecKind::Int8,
            Compression::Int4 => CodecKind::Int4,
            Compression::TopK => CodecKind::TopK,
        }
    }

    /// Wire bytes for a payload of `bytes` fp32 gradient bytes — exact
    /// per the codec's wire format (scale headers and index overhead
    /// included), not a nominal ratio.
    pub fn wire_bytes(self, bytes: u64) -> u64 {
        match self {
            Compression::None => bytes,
            Compression::Fp16 => bytes / 2,
            _ => self.codec().encoded_len((bytes / 4) as usize) as u64,
        }
    }

    /// The `HOROVOD_COMPRESSION` value string.
    pub fn env_name(self) -> &'static str {
        match self {
            Compression::None => "none",
            Compression::Fp16 => "fp16",
            Compression::Int8 => "int8",
            Compression::Int4 => "int4",
            Compression::TopK => "topk",
        }
    }
}

/// Horovod runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HorovodConfig {
    /// `HOROVOD_FUSION_THRESHOLD` — fusion buffer capacity in bytes.
    /// 0 disables fusion (every tensor becomes its own allreduce).
    pub fusion_threshold: u64,
    /// `HOROVOD_CYCLE_TIME` — how often the background coordinator wakes
    /// to collect ready tensors, in seconds. Must be positive.
    pub cycle_time: f64,
    /// `HOROVOD_CACHE_CAPACITY > 0` — the response cache replaces the
    /// full tensor-name negotiation with a bit-vector check.
    pub response_cache: bool,
    /// `HOROVOD_HIERARCHICAL_ALLREDUCE` — force the two-level algorithm
    /// regardless of the MPI library's own selection table.
    pub hierarchical_allreduce: bool,
    /// `HOROVOD_COMPRESSION` — gradient compression before allreduce.
    pub compression: Compression,
}

impl Default for HorovodConfig {
    /// Paper-era defaults: 64 MB fusion, 5 ms cycle, cache on,
    /// hierarchical off.
    fn default() -> Self {
        HorovodConfig {
            fusion_threshold: 64 * 1024 * 1024,
            cycle_time: 5e-3,
            response_cache: true,
            hierarchical_allreduce: false,
            compression: Compression::None,
        }
    }
}

impl HorovodConfig {
    pub fn validate(&self) {
        assert!(
            self.cycle_time > 0.0 && self.cycle_time.is_finite(),
            "cycle time must be positive, got {}",
            self.cycle_time
        );
    }

    /// Builder-style setters for sweep code.
    pub fn with_fusion(mut self, bytes: u64) -> Self {
        self.fusion_threshold = bytes;
        self
    }

    pub fn with_cycle(mut self, seconds: f64) -> Self {
        self.cycle_time = seconds;
        self
    }

    pub fn with_cache(mut self, on: bool) -> Self {
        self.response_cache = on;
        self
    }

    pub fn with_hierarchical(mut self, on: bool) -> Self {
        self.hierarchical_allreduce = on;
        self
    }

    pub fn with_compression(mut self, c: Compression) -> Self {
        self.compression = c;
        self
    }

    /// A compact `KEY=VALUE` rendering, like the env the paper reports.
    pub fn render_env(&self) -> String {
        format!(
            "HOROVOD_FUSION_THRESHOLD={} HOROVOD_CYCLE_TIME={:.1} HOROVOD_CACHE_CAPACITY={} HOROVOD_HIERARCHICAL_ALLREDUCE={} HOROVOD_COMPRESSION={}",
            self.fusion_threshold,
            self.cycle_time * 1e3,
            if self.response_cache { 1024 } else { 0 },
            u8::from(self.hierarchical_allreduce),
            self.compression.env_name(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_era() {
        let c = HorovodConfig::default();
        assert_eq!(c.fusion_threshold, 64 << 20);
        assert!((c.cycle_time - 5e-3).abs() < 1e-12);
        assert!(c.response_cache);
        assert!(!c.hierarchical_allreduce);
        assert_eq!(c.compression, Compression::None);
        c.validate();
    }

    #[test]
    fn builder_chain() {
        let c = HorovodConfig::default()
            .with_fusion(8 << 20)
            .with_cycle(1e-3)
            .with_cache(false)
            .with_hierarchical(true);
        assert_eq!(c.fusion_threshold, 8 << 20);
        assert!((c.cycle_time - 1e-3).abs() < 1e-12);
        assert!(!c.response_cache);
        assert!(c.hierarchical_allreduce);
    }

    #[test]
    #[should_panic(expected = "cycle time must be positive")]
    fn zero_cycle_rejected() {
        HorovodConfig::default().with_cycle(0.0).validate();
    }

    #[test]
    fn compression_wire_bytes() {
        assert_eq!(Compression::None.wire_bytes(100), 100);
        assert_eq!(Compression::Fp16.wire_bytes(100), 50);
        let c = HorovodConfig::default().with_compression(Compression::Fp16);
        assert!(c.render_env().contains("HOROVOD_COMPRESSION=fp16"));
    }

    #[test]
    fn quantized_wire_bytes_match_real_codec_formats() {
        // 1 MiB of fp32 gradients = 262144 elements.
        let bytes = 1u64 << 20;
        let n = (bytes / 4) as usize;
        for c in Compression::ALL {
            assert_eq!(c.codec().name(), c.env_name());
            let wire = c.wire_bytes(bytes);
            assert_eq!(wire, c.codec().encoded_len(n) as u64, "{}", c.env_name());
        }
        // Int8: 1 scale f32 per 256-elem chunk -> ratio just under 4x.
        let r = bytes as f64 / Compression::Int8.wire_bytes(bytes) as f64;
        assert!(r > 3.9 && r < 4.0, "int8 ratio {r}");
        // Int4: two elements per byte + headers -> just under 8x.
        let r = bytes as f64 / Compression::Int4.wire_bytes(bytes) as f64;
        assert!(r > 7.7 && r < 8.0, "int4 ratio {r}");
        // TopK keeps n/8 (index,value) pairs -> exactly 4x on multiples of 8.
        assert_eq!(Compression::TopK.wire_bytes(bytes), bytes / 4);
        assert!(HorovodConfig::default()
            .with_compression(Compression::Int4)
            .render_env()
            .contains("HOROVOD_COMPRESSION=int4"));
    }

    #[test]
    fn env_rendering() {
        let env = HorovodConfig::default().render_env();
        assert!(env.contains("HOROVOD_FUSION_THRESHOLD=67108864"));
        assert!(env.contains("HOROVOD_CYCLE_TIME=5.0"));
        assert!(env.contains("HOROVOD_CACHE_CAPACITY=1024"));
    }
}
