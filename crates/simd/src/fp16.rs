//! IEEE 754 binary16 conversion, implemented from scratch — the
//! numerical substance of Horovod's fp16 gradient compression.
//!
//! Round-to-nearest-even, with full handling of subnormals, overflow to
//! infinity, and NaN propagation. The slice kernels exist as
//! scalar/F16C twins dispatched through [`crate::have_f16c`]: the
//! hardware `VCVTPS2PH`/`VCVTPH2PS` conversion matches the from-scratch
//! scalar conversion bit-for-bit on every non-NaN input.
//!
//! This module used to live in `trainer::real::fp16`; it moved here so
//! the `collectives` compression codecs can share the exact same
//! conversion (the trainer re-exports it unchanged).

/// Convert an `f32` to binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a mantissa bit for NaN.
        return sign | 0x7c00 | (u16::from(mant != 0) * 0x0200);
    }
    // Unbiased exponent, rebiased for f16 (bias 15).
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow -> inf
    }
    if e <= 0 {
        // Subnormal or underflow to zero.
        if e < -10 {
            return sign;
        }
        // Implicit leading 1, shifted into subnormal position.
        let m = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = m >> shift;
        // Round to nearest even on the dropped bits.
        let rem = m & ((1 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            std::cmp::Ordering::Greater => half + 1,
            std::cmp::Ordering::Equal => half + (half & 1),
            std::cmp::Ordering::Less => half,
        };
        return sign | rounded as u16;
    }
    // Normal: 10-bit mantissa, round-to-nearest-even on 13 dropped bits.
    let half = mant >> 13;
    let rem = mant & 0x1fff;
    let rounded = match rem.cmp(&0x1000) {
        std::cmp::Ordering::Greater => half + 1,
        std::cmp::Ordering::Equal => half + (half & 1),
        std::cmp::Ordering::Less => half,
    };
    let (e, rounded) = if rounded == 0x400 { (e + 1, 0) } else { (e, rounded) };
    if e >= 0x1f {
        return sign | 0x7c00;
    }
    sign | ((e as u16) << 10) | rounded as u16
}

/// Convert binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = u32::from(h & 0x03ff);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: value = mant × 2⁻²⁴. Normalize so the top
                // set bit becomes the implicit leading 1 (bit 10).
                let shift = mant.leading_zeros() - 21;
                let m = (mant << shift) & 0x03ff;
                let e = 113 - shift; // 127 + (-14 - shift)
                sign | (e << 23) | (m << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13), // inf / NaN
        _ => {
            let e = (i32::from(exp) - 15 + 127) as u32;
            sign | (e << 23) | (mant << 13)
        }
    };
    f32::from_bits(bits)
}

/// Round-trip one value through half precision.
pub fn roundtrip(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Serial in-place round-trip, scalar twin of [`roundtrip_slice_f16c`].
// lint: hot-path
// lint: no-f64
fn roundtrip_slice_scalar(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = roundtrip(*x);
    }
}

/// F16C twin of [`roundtrip_slice_scalar`]: `VCVTPS2PH`/`VCVTPH2PS`
/// with round-to-nearest-even, which matches the from-scratch scalar
/// conversion bit-for-bit on every non-NaN input (NaNs stay NaN but may
/// carry a different payload — the differential tests compare NaNs
/// semantically).
///
/// # Safety
/// Caller must ensure F16C (and AVX) is available (dispatch through
/// [`crate::have_f16c`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn roundtrip_slice_f16c(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    let p = xs.as_mut_ptr();
    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(p.add(i));
        let h = _mm256_cvtps_ph::<RNE>(v);
        _mm256_storeu_ps(p.add(i), _mm256_cvtph_ps(h));
        i += 8;
    }
    while i < n {
        *p.add(i) = roundtrip(*p.add(i));
        i += 1;
    }
}

/// In-place fp16 round-trip of a slice, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn roundtrip_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::have_f16c() {
        // SAFETY: the dispatch predicate just confirmed F16C.
        unsafe { roundtrip_slice_f16c(xs) };
        return;
    }
    roundtrip_slice_scalar(xs);
}

/// Serial fused convert-reduce: `dst[i] += roundtrip(src[i])`, scalar
/// twin of [`combine_sum_roundtrip_f16c`]. This is the fp16-allreduce
/// accumulation step with the pack/unpack folded into the same pass —
/// no intermediate compressed buffer.
// lint: hot-path
// lint: no-f64
fn combine_sum_roundtrip_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += roundtrip(*s);
    }
}

/// F16C twin of [`combine_sum_roundtrip_scalar`]: convert down, convert
/// up, and accumulate without leaving the registers.
///
/// # Safety
/// Caller must ensure F16C (and AVX) is available (dispatch through
/// [`crate::have_f16c`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn combine_sum_roundtrip_f16c(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    debug_assert_eq!(dst.len(), src.len());
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let s = _mm256_loadu_ps(sp.add(i));
        let half = _mm256_cvtph_ps(_mm256_cvtps_ph::<RNE>(s));
        _mm256_storeu_ps(dp.add(i), _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), half));
        i += 8;
    }
    while i < n {
        *dp.add(i) += roundtrip(*sp.add(i));
        i += 1;
    }
}

/// Fused `dst[i] += roundtrip(src[i])`, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn combine_sum_roundtrip(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "segment length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::have_f16c() {
        // SAFETY: the dispatch predicate just confirmed F16C.
        unsafe { combine_sum_roundtrip_f16c(dst, src) };
        return;
    }
    combine_sum_roundtrip_scalar(dst, src);
}

/// Serial fused finalize-compress: `x = roundtrip(x · scale)`, scalar
/// twin of [`scale_roundtrip_f16c`]. One pass where the classic path
/// needs a scale sweep plus a compress sweep.
// lint: hot-path
// lint: no-f64
fn scale_roundtrip_scalar(xs: &mut [f32], scale: f32) {
    for x in xs.iter_mut() {
        *x = roundtrip(*x * scale);
    }
}

/// F16C twin of [`scale_roundtrip_scalar`].
///
/// # Safety
/// Caller must ensure F16C (and AVX) is available (dispatch through
/// [`crate::have_f16c`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn scale_roundtrip_f16c(xs: &mut [f32], scale: f32) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    let p = xs.as_mut_ptr();
    let n = xs.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), sv);
        _mm256_storeu_ps(p.add(i), _mm256_cvtph_ps(_mm256_cvtps_ph::<RNE>(v)));
        i += 8;
    }
    while i < n {
        *p.add(i) = roundtrip(*p.add(i) * scale);
        i += 1;
    }
}

/// Fused `x = roundtrip(x · scale)`, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn scale_roundtrip(xs: &mut [f32], scale: f32) {
    #[cfg(target_arch = "x86_64")]
    if crate::have_f16c() {
        // SAFETY: the dispatch predicate just confirmed F16C.
        unsafe { scale_roundtrip_f16c(xs, scale) };
        return;
    }
    scale_roundtrip_scalar(xs, scale);
}

/// Serial pack to f16 bits: `dst[i] = f16(src[i])`, scalar twin of
/// [`pack_slice_f16c`]. This is the wire-encode half of the fp16 codec.
// lint: hot-path
// lint: no-f64
fn pack_slice_scalar(src: &[f32], dst: &mut [u16]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16_bits(*s);
    }
}

/// F16C twin of [`pack_slice_scalar`].
///
/// # Safety
/// Caller must ensure F16C (and AVX) is available (dispatch through
/// [`crate::have_f16c`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn pack_slice_f16c(src: &[f32], dst: &mut [u16]) {
    use std::arch::x86_64::*;
    const RNE: i32 = _MM_FROUND_TO_NEAREST_INT;
    debug_assert_eq!(src.len(), dst.len());
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let h = _mm256_cvtps_ph::<RNE>(_mm256_loadu_ps(sp.add(i)));
        _mm_storeu_si128(dp.add(i) as *mut __m128i, h);
        i += 8;
    }
    while i < n {
        *dp.add(i) = f32_to_f16_bits(*sp.add(i));
        i += 1;
    }
}

/// Pack a slice to f16 bit patterns, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn pack_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "pack length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::have_f16c() {
        // SAFETY: the dispatch predicate just confirmed F16C.
        unsafe { pack_slice_f16c(src, dst) };
        return;
    }
    pack_slice_scalar(src, dst);
}

/// Serial unpack from f16 bits, scalar twin of [`unpack_slice_f16c`].
/// This is the wire-decode half of the fp16 codec (exact).
// lint: hot-path
// lint: no-f64
fn unpack_slice_scalar(src: &[u16], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(*s);
    }
}

/// F16C twin of [`unpack_slice_scalar`].
///
/// # Safety
/// Caller must ensure F16C (and AVX) is available (dispatch through
/// [`crate::have_f16c`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
unsafe fn unpack_slice_f16c(src: &[u16], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(src.len(), dst.len());
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let n = src.len();
    let mut i = 0;
    while i + 8 <= n {
        let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
        _mm256_storeu_ps(dp.add(i), _mm256_cvtph_ps(h));
        i += 8;
    }
    while i < n {
        *dp.add(i) = f16_bits_to_f32(*sp.add(i));
        i += 1;
    }
}

/// Unpack f16 bit patterns into f32, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn unpack_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "unpack length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::have_f16c() {
        // SAFETY: the dispatch predicate just confirmed F16C.
        unsafe { unpack_slice_f16c(src, dst) };
        return;
    }
    unpack_slice_scalar(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, 65504.0] {
            assert_eq!(roundtrip(v), v, "{v} must be exactly representable");
        }
        assert!(roundtrip(0.0).is_sign_positive());
        assert!(roundtrip(-0.0).is_sign_negative());
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(-f32::INFINITY), 0xfc00);
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        // Smallest positive subnormal: 2^-24.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
    }

    #[test]
    fn overflow_saturates_to_inf() {
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e6), 0xfc00);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // rounds past max
    }

    #[test]
    fn tiny_underflows_to_zero() {
        assert_eq!(f32_to_f16_bits(1e-9), 0x0000);
        assert_eq!(f32_to_f16_bits(-1e-9), 0x8000);
    }

    #[test]
    fn nan_propagates() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // f16 has 11 significand bits: relative error <= 2^-11.
        let mut x = 6.1e-5f32; // just above the subnormal range
        while x < 6.0e4 {
            let r = roundtrip(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 4.9e-4, "x={x}: roundtrip {r}, rel err {rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // nearest-even rounds down to 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(roundtrip(halfway), 1.0);
        // 1 + 3·2^-11 is halfway between the 1st and 2nd f16 steps
        // (step = 2^-10); nearest-even rounds up to the 2nd step, whose
        // mantissa (2) is even.
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(roundtrip(halfway2), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn monotone_on_a_sample() {
        let mut last = f32::NEG_INFINITY;
        let mut x = -100.0f32;
        while x < 100.0 {
            let r = roundtrip(x);
            assert!(r >= last, "roundtrip must be monotone: {x}");
            last = r;
            x += 0.37;
        }
    }

    /// Deterministic f32 stress values: normals across the range,
    /// halfway rounding cases, subnormals, overflow, zeros.
    pub(crate) fn stress(i: usize) -> f32 {
        match i % 8 {
            0 => 1.0 + (i as f32) * 2.0f32.powi(-11), // halfway ladder
            1 => -(i as f32 * 0.123),
            2 => 1e-40 * (i as f32 + 1.0),        // f32 subnormal
            3 => 6.0e-8 * (i as f32 % 17.0),      // f16 subnormal range
            4 => 60000.0 + 10.0 * i as f32,       // near f16 overflow
            5 => (i as f32 * 0.001).sin() * 1e-4, // small normals
            6 => 0.0,
            _ => f32::from_bits((i as u32).wrapping_mul(0x9e3779b9) & 0x7fff_ffff),
        }
    }

    /// The hardware F16C conversion must match the from-scratch scalar
    /// RNE conversion bit-for-bit on non-NaN inputs, at every length
    /// (vector body + tail + empty), for all five kernels.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f16c_twins_match_scalar_bitwise() {
        if !crate::have_f16c() {
            return; // nothing to differentiate on this host
        }
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 257] {
            let src: Vec<f32> = (0..n).map(stress).collect();
            let src_nonnan: Vec<f32> =
                src.iter().map(|&x| if x.is_nan() { 1.0 } else { x }).collect();

            let mut s = src_nonnan.clone();
            let mut v = src_nonnan.clone();
            roundtrip_slice_scalar(&mut s);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { roundtrip_slice_f16c(&mut v) };
            assert_eq!(bits(&s), bits(&v), "roundtrip twins diverge at n={n}");

            let base: Vec<f32> = (0..n).map(|i| stress(i + 999) * 0.5).collect();
            let base: Vec<f32> = base.iter().map(|&x| if x.is_nan() { 2.0 } else { x }).collect();
            let mut s = base.clone();
            let mut v = base.clone();
            combine_sum_roundtrip_scalar(&mut s, &src_nonnan);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { combine_sum_roundtrip_f16c(&mut v, &src_nonnan) };
            assert_eq!(bits(&s), bits(&v), "combine twins diverge at n={n}");

            let mut s = src_nonnan.clone();
            let mut v = src_nonnan.clone();
            scale_roundtrip_scalar(&mut s, 0.0625);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { scale_roundtrip_f16c(&mut v, 0.0625) };
            assert_eq!(bits(&s), bits(&v), "scale twins diverge at n={n}");

            let mut hs = vec![0u16; n];
            let mut hv = vec![0u16; n];
            pack_slice_scalar(&src_nonnan, &mut hs);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { pack_slice_f16c(&src_nonnan, &mut hv) };
            assert_eq!(hs, hv, "pack twins diverge at n={n}");

            let mut us = vec![0f32; n];
            let mut uv = vec![0f32; n];
            unpack_slice_scalar(&hs, &mut us);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { unpack_slice_f16c(&hs, &mut uv) };
            assert_eq!(bits(&us), bits(&uv), "unpack twins diverge at n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fused_kernels_match_composed_scalar_ops() {
        let finite = |x: f32| if x.is_nan() { 1.0 } else { x };
        let src: Vec<f32> = (0..100).map(stress).map(finite).collect();
        let mut dst: Vec<f32> = (0..100).map(|i| stress(i + 500)).map(finite).collect();
        let want: Vec<f32> = dst.iter().zip(&src).map(|(d, s)| d + roundtrip(*s)).collect();
        combine_sum_roundtrip(&mut dst, &src);
        assert_eq!(dst, want);

        let mut xs = src.clone();
        let want: Vec<f32> = src.iter().map(|&x| roundtrip(x * 0.25)).collect();
        scale_roundtrip(&mut xs, 0.25);
        assert_eq!(xs, want);
    }

    #[test]
    fn pack_unpack_slice_roundtrips_like_scalar() {
        let finite = |x: f32| if x.is_nan() { 1.0 } else { x };
        let src: Vec<f32> = (0..300).map(stress).map(finite).collect();
        let mut h = vec![0u16; src.len()];
        pack_slice(&src, &mut h);
        let want_bits: Vec<u16> = src.iter().map(|&x| f32_to_f16_bits(x)).collect();
        assert_eq!(h, want_bits);
        let mut back = vec![0f32; src.len()];
        unpack_slice(&h, &mut back);
        let want: Vec<f32> = src.iter().map(|&x| roundtrip(x)).collect();
        assert_eq!(back, want);
    }

    #[test]
    fn exhaustive_f16_space_roundtrips_exactly() {
        // Every finite f16 value converts to f32 and back to the same bits.
        for h in 0..=0xffffu16 {
            let f = f16_bits_to_f32(h);
            if f.is_nan() {
                continue;
            }
            let back = f32_to_f16_bits(f);
            assert_eq!(back, h, "f16 bits {h:#06x} -> {f} -> {back:#06x}");
        }
    }
}
