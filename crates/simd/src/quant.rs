//! Integer quantization kernels for the gradient compression codecs.
//!
//! The int8/int4 codecs in `collectives::compression` quantize each
//! chunk of gradients to `round(x / scale)` with a per-chunk scale
//! derived from the chunk's absolute maximum. The three inner loops —
//! absolute max, quantize, dequantize — live here as scalar/AVX2 twins
//! dispatched through [`crate::have_avx2_fma`].
//!
//! Bit-exactness contract: the scalar twins use
//! [`f32::round_ties_even`], the exact rounding mode of the hardware
//! `VCVTPS2DQ` conversion, and both twins clamp to ±127 *before*
//! rounding — so scalar and AVX2 produce identical bytes on every
//! non-NaN input and the compressed wire format does not depend on the
//! host CPU.

/// Largest magnitude the int8 quantizer emits (symmetric, so that the
/// negated range never saturates to -128 asymmetrically).
pub const Q8_MAX: f32 = 127.0;

/// Serial absolute maximum, scalar twin of [`abs_max_avx2`].
/// Returns 0.0 for an empty slice. NaN inputs are unspecified.
// lint: hot-path
// lint: no-f64
fn abs_max_scalar(xs: &[f32]) -> f32 {
    let mut m = 0.0f32;
    for x in xs {
        m = m.max(x.abs());
    }
    m
}

/// AVX2 twin of [`abs_max_scalar`].
///
/// # Safety
/// Caller must ensure AVX2+FMA is available (dispatch through
/// [`crate::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn abs_max_avx2(xs: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let p = xs.as_ptr();
    let n = xs.len();
    let sign = _mm256_set1_ps(-0.0);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_andnot_ps(sign, _mm256_loadu_ps(p.add(i)));
        acc = _mm256_max_ps(acc, v);
        i += 8;
    }
    let hi = _mm256_extractf128_ps::<1>(acc);
    let m4 = _mm_max_ps(_mm256_castps256_ps128(acc), hi);
    let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    let m1 = _mm_max_ss(m2, _mm_shuffle_ps::<0b01>(m2, m2));
    let mut m = _mm_cvtss_f32(m1);
    while i < n {
        m = m.max((*p.add(i)).abs());
        i += 1;
    }
    m
}

/// Absolute maximum of a slice, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn abs_max(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        return unsafe { abs_max_avx2(xs) };
    }
    abs_max_scalar(xs)
}

/// Serial quantize: `out[i] = round_ties_even(clamp(src[i]·inv_scale))`,
/// scalar twin of [`quant8_avx2`].
// lint: hot-path
// lint: no-f64
fn quant8_scalar(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    for (o, s) in out.iter_mut().zip(src) {
        *o = (s * inv_scale).clamp(-Q8_MAX, Q8_MAX).round_ties_even() as i32 as i8;
    }
}

/// AVX2 twin of [`quant8_scalar`]: multiply, clamp, `VCVTPS2DQ`
/// (round-to-nearest-even, matching the scalar `round_ties_even`),
/// saturating pack to bytes, lane-order fixup.
///
/// # Safety
/// Caller must ensure AVX2+FMA is available (dispatch through
/// [`crate::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn quant8_avx2(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(src.len(), out.len());
    let sp = src.as_ptr();
    let op = out.as_mut_ptr();
    let n = src.len();
    let sv = _mm256_set1_ps(inv_scale);
    let lo = _mm256_set1_ps(-Q8_MAX);
    let hi = _mm256_set1_ps(Q8_MAX);
    // After packs_epi32 + packs_epi16 the four 8-lane groups sit in
    // dword order [a0 b0 c0 d0 | a1 b1 c1 d1]; this permutation
    // restores [a0 a1 b0 b1 c0 c1 d0 d1] = source order.
    let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    let mut i = 0;
    while i + 32 <= n {
        let q = |off: usize| {
            let v = _mm256_mul_ps(_mm256_loadu_ps(sp.add(off)), sv);
            _mm256_cvtps_epi32(_mm256_max_ps(lo, _mm256_min_ps(hi, v)))
        };
        let a = q(i);
        let b = q(i + 8);
        let c = q(i + 16);
        let d = q(i + 24);
        let ab = _mm256_packs_epi32(a, b);
        let cd = _mm256_packs_epi32(c, d);
        let abcd = _mm256_packs_epi16(ab, cd);
        let ordered = _mm256_permutevar8x32_epi32(abcd, fix);
        _mm256_storeu_si256(op.add(i) as *mut __m256i, ordered);
        i += 32;
    }
    while i < n {
        *op.add(i) = (*sp.add(i) * inv_scale).clamp(-Q8_MAX, Q8_MAX).round_ties_even() as i32 as i8;
        i += 1;
    }
}

/// Quantize a slice to i8 with a precomputed inverse scale, dispatching
/// over the twins. The result is bit-identical across the twins for
/// every non-NaN input.
// lint: hot-path
// lint: no-f64
pub fn quant8(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    assert_eq!(src.len(), out.len(), "quantize length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { quant8_avx2(src, inv_scale, out) };
        return;
    }
    quant8_scalar(src, inv_scale, out);
}

/// Serial dequantize: `dst[i] = src[i]·scale`, scalar twin of
/// [`dequant8_avx2`]. Exact: i8→f32 is lossless and the product is a
/// single rounding in both twins.
// lint: hot-path
// lint: no-f64
fn dequant8_scalar(src: &[i8], scale: f32, dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s as f32 * scale;
    }
}

/// AVX2 twin of [`dequant8_scalar`].
///
/// # Safety
/// Caller must ensure AVX2+FMA is available (dispatch through
/// [`crate::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dequant8_avx2(src: &[i8], scale: f32, dst: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(src.len(), dst.len());
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let n = src.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let bytes = _mm_loadl_epi64(sp.add(i) as *const __m128i);
        let ints = _mm256_cvtepi8_epi32(bytes);
        let v = _mm256_mul_ps(_mm256_cvtepi32_ps(ints), sv);
        _mm256_storeu_ps(dp.add(i), v);
        i += 8;
    }
    while i < n {
        *dp.add(i) = *sp.add(i) as f32 * scale;
        i += 1;
    }
}

/// Dequantize i8 values with a scale, dispatching over the twins.
// lint: hot-path
// lint: no-f64
pub fn dequant8(src: &[i8], scale: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "dequantize length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { dequant8_avx2(src, scale, dst) };
        return;
    }
    dequant8_scalar(src, scale, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic non-NaN stress values spanning sign, magnitude,
    /// exact-half ties, and zeros.
    fn stress(i: usize) -> f32 {
        match i % 7 {
            0 => (i as f32 * 0.37).sin() * 3.0,
            1 => -(i as f32) * 0.001,
            2 => (i as f32) * 250.0, // far outside the clamp range
            3 => 0.5 + i as f32,     // exact .5 ties after unit scaling
            4 => -(0.5 + i as f32),
            5 => 0.0,
            _ => f32::from_bits((i as u32).wrapping_mul(0x9e37_79b9) & 0x3fff_ffff),
        }
    }

    #[test]
    fn abs_max_matches_fold() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 100, 257] {
            let xs: Vec<f32> = (0..n).map(stress).collect();
            let want = xs.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            assert_eq!(abs_max(&xs), want, "n={n}");
        }
    }

    #[test]
    fn quant8_round_ties_even_and_clamps() {
        let src = [0.5f32, 1.5, 2.5, -0.5, -1.5, 126.5, 127.49, 128.0, 5000.0, -5000.0];
        let mut out = [0i8; 10];
        quant8(&src, 1.0, &mut out);
        assert_eq!(out, [0, 2, 2, 0, -2, 126, 127, 127, 127, -127]);
    }

    #[test]
    fn dequant_inverts_within_half_step() {
        let xs: Vec<f32> = (0..200).map(stress).collect();
        let m = abs_max(&xs);
        let scale = m / Q8_MAX;
        let mut q = vec![0i8; xs.len()];
        quant8(&xs, 1.0 / scale, &mut q);
        let mut back = vec![0f32; xs.len()];
        dequant8(&q, scale, &mut back);
        for (i, (x, b)) in xs.iter().zip(&back).enumerate() {
            assert!((x - b).abs() <= 0.5001 * scale + 1e-6, "elem {i}: {x} -> {b}, step {scale}");
        }
    }

    /// The AVX2 twins must match the scalar twins bit-for-bit at every
    /// length (full 32-wide body, 8-wide dequant body, tails, empty).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_twins_match_scalar_bitwise() {
        if !crate::have_avx2_fma() {
            return; // nothing to differentiate on this host
        }
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65, 257] {
            let xs: Vec<f32> = (0..n).map(stress).collect();
            // SAFETY: guarded by the dispatch predicate above.
            let vm = unsafe { abs_max_avx2(&xs) };
            assert_eq!(vm.to_bits(), abs_max_scalar(&xs).to_bits(), "abs_max at n={n}");

            let inv = 0.73f32;
            let mut qs = vec![0i8; n];
            let mut qv = vec![0i8; n];
            quant8_scalar(&xs, inv, &mut qs);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { quant8_avx2(&xs, inv, &mut qv) };
            assert_eq!(qs, qv, "quant8 twins diverge at n={n}");

            let mut ds = vec![0f32; n];
            let mut dv = vec![0f32; n];
            dequant8_scalar(&qs, 1.37, &mut ds);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { dequant8_avx2(&qs, 1.37, &mut dv) };
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ds), bits(&dv), "dequant8 twins diverge at n={n}");
        }
    }
}
