//! Runtime CPU-feature dispatch for the vectorized hot-path kernels.
//!
//! The SIMD kernels in `trainer::real::net`, `trainer::real::fp16`, and
//! `collectives::reduce` are written against `std::arch` x86-64
//! intrinsics and guarded by the predicates here: every
//! `#[target_feature]` function has a same-module scalar twin, and every
//! call site dispatches through [`have_avx2_fma`] / [`have_f16c`]
//! (enforced by the `simd-fallback` rule of `cargo run -p xtask -- lint`).
//!
//! Detection is cached in a relaxed atomic after the first query, so the
//! per-call cost on the hot path is one load and one predictable branch —
//! and, crucially, the cached query performs **zero heap allocations**
//! (the zero-alloc proofs in `trainer/tests/zero_alloc.rs` run with
//! dispatch active).
//!
//! On non-x86-64 targets every predicate is a compile-time `false` and
//! the scalar twins are the only code path.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod fp16;
pub mod quant;

/// Cached detection state: 0 = unknown, 1 = absent, 2 = present.
struct Cached(AtomicU8);

impl Cached {
    const fn new() -> Self {
        Cached(AtomicU8::new(0))
    }

    #[inline]
    fn get(&self, detect: impl FnOnce() -> bool) -> bool {
        let state = self.0.load(Ordering::Relaxed); // lint: allow(relaxed): idempotent cpuid cache
        match state {
            2 => true,
            1 => false,
            _ => {
                let present = detect();
                self.0.store(if present { 2 } else { 1 }, Ordering::Relaxed); // lint: allow(relaxed): cpuid cache; detect() is pure so duplicate fills agree
                present
            }
        }
    }
}

static AVX2_FMA: Cached = Cached::new();
static F16C: Cached = Cached::new();

/// True when the CPU supports AVX2 **and** FMA — the feature pair every
/// vectorized f32 kernel in this workspace is compiled against.
// lint: hot-path
#[inline]
pub fn have_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        AVX2_FMA.get(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the CPU supports F16C (hardware fp16 pack/unpack) on top of
/// AVX2 — the gate for the fused fp16 reduction kernels.
// lint: hot-path
#[inline]
pub fn have_f16c() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        F16C.get(|| have_avx2_fma() && std::arch::is_x86_feature_detected!("f16c"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Force-disable every SIMD path for the rest of the process — the
/// differential tests use this to run the scalar twins on hardware that
/// would otherwise dispatch to the vector kernels. Irreversible by
/// design (the caches never re-detect), so call it only from test
/// binaries.
pub fn force_scalar_for_testing() {
    AVX2_FMA.0.store(1, Ordering::Relaxed); // lint: allow(relaxed): cpuid cache; detect() is pure so duplicate fills agree
    F16C.0.store(1, Ordering::Relaxed); // lint: allow(relaxed): cpuid cache; detect() is pure so duplicate fills agree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_and_consistent() {
        let a = have_avx2_fma();
        assert_eq!(a, have_avx2_fma(), "cached result must not flip");
        // F16C implies the AVX2+FMA baseline by construction.
        if have_f16c() {
            assert!(have_avx2_fma());
        }
    }
}
