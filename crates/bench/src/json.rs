//! Tiny JSON helpers for the `BENCH_*.json` perf trackers.
//!
//! The tracker files are written and re-read only by the bench binaries
//! (`bench_step`, `bench_wire`), so a handful of string-level helpers
//! replaces a serde dependency: compact a value, pull out a balanced
//! `{...}`/`[...]`, split an array, read one number. Every helper is
//! string-literal-aware (braces inside strings don't count).

use std::time::{SystemTime, UNIX_EPOCH};

/// Today's date (UTC) as `YYYY-MM-DD`, via the classic days-to-civil
/// conversion — no date dependency needed.
pub fn today_utc() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Strip whitespace outside string literals — embeds a prior flat-format
/// file (or a prior `latest` object) as a one-line history entry.
pub fn compact_json(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut in_str = false;
    let mut escape = false;
    for ch in src.chars() {
        if in_str {
            out.push(ch);
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
        } else if ch == '"' {
            in_str = true;
            out.push(ch);
        } else if !ch.is_whitespace() {
            out.push(ch);
        }
    }
    out
}

/// The balanced `{...}` or `[...]` value following `"key":`, verbatim.
pub fn extract_value<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)?;
    let rest = &src[at + needle.len()..];
    let colon = rest.find(':')?;
    let body = rest[colon + 1..].trim_start();
    let open = body.chars().next()?;
    let close = match open {
        '{' => '}',
        '[' => ']',
        _ => return None,
    };
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, ch) in body.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            c if c == open => depth += 1,
            c if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split a JSON array's body (`[...]` included) into top-level items.
pub fn array_items(array: &str) -> Vec<&str> {
    let inner = array.trim().strip_prefix('[').and_then(|s| s.strip_suffix(']')).unwrap_or("");
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    let mut start = 0usize;
    for (i, ch) in inner.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            ',' if depth == 0 => {
                let item = inner[start..i].trim();
                if !item.is_empty() {
                    items.push(item);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = inner[start..].trim();
    if !last.is_empty() {
        items.push(last);
    }
    items
}

/// The number following `"key":` in the first part of `src` at or after
/// the first occurrence of `anchor` — lets callers read e.g. the
/// `ns_per_step` of one named variant.
pub fn number_after(src: &str, anchor: &str, key: &str) -> Option<f64> {
    let at = src.find(anchor)?;
    let rest = &src[at..];
    let needle = format!("\"{key}\":");
    let k = rest.find(&needle)?;
    let tail = rest[k + needle.len()..].trim_start();
    let end =
        tail.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_preserves_strings() {
        assert_eq!(compact_json("{ \"a b\": [1, 2] }"), "{\"a b\":[1,2]}");
        assert_eq!(compact_json("\"esc \\\" quote \""), "\"esc \\\" quote \"");
    }

    #[test]
    fn extracts_balanced_values() {
        let src = "{\"latest\": {\"x\": [1, {\"y\": 2}]}, \"history\": [ {\"a\":1}, {\"b\":2} ]}";
        assert_eq!(extract_value(src, "latest"), Some("{\"x\": [1, {\"y\": 2}]}"));
        let items = array_items(extract_value(src, "history").unwrap());
        assert_eq!(items, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(extract_value(src, "missing"), None);
    }

    #[test]
    fn number_after_reads_anchored_keys() {
        let src = "{\"a\": {\"n\": 1.5}, \"b\": {\"n\": -2}}";
        assert_eq!(number_after(src, "\"a\"", "n"), Some(1.5));
        assert_eq!(number_after(src, "\"b\"", "n"), Some(-2.0));
        assert_eq!(number_after(src, "\"c\"", "n"), None);
    }

    #[test]
    fn civil_date_is_plausible() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert!(d[..4].parse::<u32>().unwrap() >= 2026);
    }
}
