//! Shared harness code for the experiment binaries.
//!
//! Each `src/bin/<exp>.rs` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the common
//! setup — the Summit machine at paper scale, the models, the default and
//! tuned configurations — and the paper-vs-measured reporting helpers
//! that EXPERIMENTS.md quotes.

pub mod json;

use dlmodels::{deeplab_paper, GpuModel, ModelGraph};
use horovod::HorovodConfig;
use mpi_profiles::Backend;
use summit_sim::{Machine, MachineConfig};
use tuner::Candidate;

/// Steps simulated per scaling point (averages the straggler jitter).
pub const SIM_STEPS: usize = 5;

/// The per-GPU batch size of the scaling experiments. Segmentation at
/// 513² trains with small per-GPU batches; 1 reproduces the paper's
/// communication-bound regime (see DESIGN.md).
pub const BATCH_PER_GPU: usize = 1;

/// Root seed for every experiment.
pub const SEED: u64 = 2020;

/// The machine at the paper's maximum scale (22 nodes = 132 GPUs).
pub fn paper_machine() -> Machine {
    Machine::new(MachineConfig::summit_for_gpus(132))
}

/// The DLv3+ workload.
pub fn paper_model() -> ModelGraph {
    deeplab_paper()
}

pub fn v100() -> GpuModel {
    GpuModel::v100()
}

/// The paper's baseline: default Horovod knobs over the system MPI.
pub fn default_candidate() -> Candidate {
    Candidate::paper_default()
}

/// The tuned configuration (the fixed point `t7_autotune` converges to):
/// MVAPICH2-GDR, 16 MB fusion, 1 ms cycle, cache on, hierarchical off
/// (MV2's own selection table already picks the two-level algorithm in
/// the mid-size range).
pub fn tuned_candidate() -> Candidate {
    Candidate {
        backend: Backend::Mvapich2Gdr,
        config: HorovodConfig::default().with_fusion(16 << 20).with_cycle(1e-3),
    }
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, reproduces: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("reproduces: {reproduces}");
    println!("================================================================");
}

/// Print a paper-vs-measured comparison line (quoted by EXPERIMENTS.md).
/// The deviation is signed: positive means the measurement exceeds the
/// paper's value.
pub fn compare(metric: &str, paper: f64, measured: f64, unit: &str) {
    let err = if paper == 0.0 {
        summit_metrics::stats::rel_err(measured, paper) * 100.0
    } else {
        (measured - paper) / paper.abs() * 100.0
    };
    println!(
        "  {metric:<44} paper {paper:>9.2} {unit:<6} measured {measured:>9.2} {unit:<6} ({err:+.1}% rel)",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_132_gpus() {
        assert_eq!(paper_machine().config.total_gpus(), 132);
    }

    #[test]
    fn tuned_candidate_uses_mv2() {
        let c = tuned_candidate();
        assert_eq!(c.backend, Backend::Mvapich2Gdr);
        assert!(c.config.fusion_threshold < HorovodConfig::default().fusion_threshold);
        assert!(c.config.cycle_time < HorovodConfig::default().cycle_time);
    }
}
