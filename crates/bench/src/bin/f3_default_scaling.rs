//! F3 — default-configuration scaling of DLv3+ (claim C2).
//!
//! Horovod's default knobs (64 MB fusion, 5 ms cycle) over each MPI
//! backend, 6–132 GPUs: the paper's "poor default scaling" observation.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED, SIM_STEPS};
use horovod::HorovodConfig;
use mpi_profiles::Backend;
use summit_metrics::Table;
use trainer::{paper_gpu_counts, SweepSpec};

fn main() {
    header("F3", "DLv3+ scaling with default Horovod knobs", "abstract claim C2");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();

    let mut table = Table::new(
        "images/second (weak scaling, batch 1/GPU) — default knobs",
        &["GPUs", "Spectrum (default)", "eff", "MVAPICH2-GDR", "eff", "NCCL-like", "eff"],
    );
    let counts = paper_gpu_counts();
    let mut rows: Vec<Vec<String>> = counts.iter().map(|n| vec![n.to_string()]).collect();
    for backend in Backend::all() {
        let spec = SweepSpec {
            machine: &machine,
            profile: backend.profile(),
            config: HorovodConfig::default(),
            model: &model,
            gpu: &gpu,
            batch_per_gpu: BATCH_PER_GPU,
            steps: SIM_STEPS,
            seed: SEED,
        };
        let series = spec.sweep(backend.profile().name, &counts);
        for (i, (n, eff)) in series.efficiencies().iter().enumerate() {
            let thr = series.throughput_at(*n).expect("measured");
            rows[i].push(format!("{thr:.1}"));
            rows[i].push(format!("{:.1}%", eff * 100.0));
        }
    }
    for r in rows {
        table.row(&r);
    }
    table.print();
    println!(
        "The default-MPI curve flattens past ~48 GPUs — the paper's \"poor default\n\
         scaling performance of DLv3+ on Summit\" (exact default efficiency is\n\
         compared against the paper's 68.1% in F6)."
    );
}
