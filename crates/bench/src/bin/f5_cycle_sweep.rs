//! F5 — `HOROVOD_CYCLE_TIME` sweep at 96 GPUs.
//!
//! The second Horovod-knob sweep: short cycles react quickly but pay
//! negotiation more often (especially with the response cache off); long
//! cycles leave gradients idle and push communication past the end of
//! the backward pass.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED, SIM_STEPS};
use horovod::{HorovodConfig, StepSim};
use mpi_profiles::Backend;
use summit_metrics::Table;

fn main() {
    header("F5", "Cycle-time sweep (96 GPUs)", "tuning methodology, knob 2");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let n = 96;
    let cycles_ms = [0.5f64, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0];

    for cache in [true, false] {
        let mut t = Table::new(
            format!("MVAPICH2-GDR @ {n} GPUs, response cache {}", if cache { "on" } else { "off" }),
            &["cycle (ms)", "img/s", "efficiency", "active cycles/step"],
        );
        for &c in &cycles_ms {
            let sim = StepSim::new(
                &machine,
                Backend::Mvapich2Gdr.profile(),
                HorovodConfig::default()
                    .with_fusion(16 << 20)
                    .with_cycle(c * 1e-3)
                    .with_cache(cache),
                &model,
                &gpu,
                BATCH_PER_GPU,
                n,
                SEED,
            );
            let r = sim.simulate_training(SIM_STEPS);
            t.row(&[
                format!("{c}"),
                format!("{:.1}", r.throughput),
                format!("{:.1}%", r.efficiency * 100.0),
                r.steps[0].n_active_cycles.to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "Shape: 1-2.5 ms is the sweet spot; 25-50 ms cycles quantize gradient\n\
         pickup and stall the tail of the step. Disabling the response cache\n\
         raises the cost of short cycles."
    );
}
