//! T7 — the autotuner's best-found configuration per scale.
//!
//! Runs the coordinate-descent tuner (the paper's one-knob-family-at-a-
//! time methodology) from the system default at several GPU counts and
//! reports the winning knob values, sweep cost, and gain over default.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED};
use summit_metrics::{fmt_bytes, Table};
use tuner::{coordinate_descent, Candidate, KnobSpace, Objective};

fn main() {
    header("T7", "Autotuned best configuration per scale", "tuning methodology outcome");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let space = KnobSpace::paper();
    println!("knob space: {} candidates (grid)", space.size());

    let mut t = Table::new(
        "coordinate descent from the default, 3 rounds max",
        &[
            "GPUs",
            "backend",
            "fusion",
            "cycle (ms)",
            "cache",
            "hier",
            "default img/s",
            "best img/s",
            "gain",
            "evals",
        ],
    );
    for n in [24usize, 48, 96, 132] {
        let obj = Objective::new(&machine, &model, &gpu, BATCH_PER_GPU, n, 3, SEED);
        let report = coordinate_descent(&space, &obj, Candidate::paper_default(), 3);
        let default_throughput = report.trajectory[0].throughput;
        let b = &report.best.candidate;
        t.row(&[
            n.to_string(),
            format!("{:?}", b.backend),
            fmt_bytes(b.config.fusion_threshold),
            format!("{:.1}", b.config.cycle_time * 1e3),
            u8::from(b.config.response_cache).to_string(),
            u8::from(b.config.hierarchical_allreduce).to_string(),
            format!("{default_throughput:.1}"),
            format!("{:.1}", report.best.throughput),
            format!("{:.2}x", report.best.throughput / default_throughput),
            report.evaluations.to_string(),
        ]);
    }
    t.print();
    println!(
        "The tuner consistently switches the backend to MVAPICH2-GDR and\n\
         tightens fusion/cycle below the 64 MB / 5 ms defaults — the paper's\n\
         conclusion, found automatically at a fraction of the grid cost."
    );
}
