//! V0 — model validation: the discrete-event simulation against the
//! closed-form α–β–γ bounds.
//!
//! Before trusting any reproduced figure, check that the simulator's
//! uncontended behaviour brackets the textbook cost models: simulated
//! time must sit at or above the analytic lower bound and within a small
//! factor of it in the bandwidth-dominated regime, for every algorithm.

use bench::header;
use collectives::{allreduce_cost, simulate_dense, Algorithm, AlphaBeta, LeaderAlgo, UniformCost};
use summit_metrics::Table;
use summit_sim::{Machine, MachineConfig};

fn main() {
    header("V0", "Simulator vs analytic α–β–γ bounds", "model validation");
    // Single node: all transfers uncontended NVLink, so the analytic
    // model (α = software + wire latency, β = 1/50 GB/s, γ = 1/250 GB/s)
    // is directly comparable.
    let machine = Machine::new(MachineConfig::summit(1));
    let cost = UniformCost::default();
    let ab = AlphaBeta::new(4e-6, 50e9, 250e9);

    let algos: Vec<(&str, Algorithm)> = vec![
        ("ring", Algorithm::Ring),
        ("chunked-ring(4)", Algorithm::ChunkedRing { chunks: 4 }),
        ("recursive-doubling", Algorithm::RecursiveDoubling),
        ("rabenseifner", Algorithm::Rabenseifner),
        ("tree", Algorithm::Tree),
        ("hier(rab)", Algorithm::Hierarchical { per_node: 3, leader: LeaderAlgo::Rabenseifner }),
    ];

    for bytes in [64u64 << 10, 4 << 20, 64 << 20] {
        let mut t = Table::new(
            format!("6 ranks, {} allreduce", summit_metrics::fmt_bytes(bytes)),
            &["algorithm", "analytic (µs)", "simulated (µs)", "sim/analytic"],
        );
        for (name, algo) in &algos {
            let bound = allreduce_cost(*algo, 6, bytes, &ab);
            let sim = simulate_dense(&algo.build(6, (bytes / 4) as usize), &machine, &cost)
                .makespan
                .as_secs_f64();
            t.row(&[
                name.to_string(),
                format!("{:.1}", bound * 1e6),
                format!("{:.1}", sim * 1e6),
                format!("{:.2}x", sim / bound),
            ]);
        }
        t.print();
    }
    println!(
        "Reading: ratios near 1x mean the fluid simulation matches the\n\
         uncontended textbook cost; ratios above 1x reflect topology effects\n\
         the analytic model cannot see (cross-socket X-bus hops, route\n\
         latency asymmetry). Ratios below ~0.75x would indicate a simulator\n\
         bug — `collectives::analytic` tests enforce that bound."
    );
}
