//! F8 — mIoU convergence of real data-parallel training (claim C6).
//!
//! Paper: "We achieved a mIOU accuracy of 80.8% for distributed training,
//! which is on par with published accuracy for this model."
//!
//! Per the substitution in DESIGN.md §2, Pascal-VOC DLv3+ is replaced by
//! the synthetic shapes-segmentation task and the from-scratch conv net;
//! the transferable claim — distributed gradient averaging matches serial
//! training's accuracy — is demonstrated with real numerics: every
//! gradient crosses worker threads through a real ring allreduce.

use bench::{compare, header, SEED};
use collectives::{Algorithm, CodecKind};
use summit_metrics::{series::bar, Table};
use trainer::real::{train, DataConfig, NetConfig, TrainConfig};

fn config(workers: usize, batch_per_worker: usize) -> TrainConfig {
    let data = DataConfig { noise: 0.86, ..DataConfig::default() };
    let net = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    TrainConfig {
        data,
        net,
        workers,
        batch_per_worker,
        steps: 160,
        base_lr: 0.4,
        lr_scale: 1.0, // same global batch in every run below
        warmup_steps: 12,
        momentum: 0.9,
        weight_decay: 0.0,
        accumulation_steps: 1,
        algo: Algorithm::Ring,
        pipeline: false,
        fp16_gradients: false,
        codec: CodecKind::None,
        error_feedback: false,
        augment: false,
        eval_every: 20,
        eval_samples: 64,
        seed: SEED,
        faults: None,
        checkpoint: None,
        trace: None,
    }
}

fn main() {
    header(
        "F8",
        "mIoU convergence, serial vs data-parallel (real training)",
        "abstract claim C6 (80.8% mIoU, distributed on par with serial)",
    );

    // Same global batch (8) split across 1, 2, 4, 8 workers.
    let runs: Vec<(usize, usize)> = vec![(1, 8), (2, 4), (4, 2), (8, 1)];
    let mut results = Vec::new();
    for &(w, b) in &runs {
        let r = train(&config(w, b));
        println!("workers={w} (batch {b}/worker): final mIoU {:.3}", r.final_miou);
        for p in &r.curve {
            println!(
                "    step {:>4}  loss {:>6.3}  mIoU {:>6.3}  {}",
                p.step,
                p.train_loss,
                p.miou,
                bar(p.miou, 1.0, 30)
            );
        }
        results.push((w, r));
    }

    let mut t = Table::new(
        "final accuracy by worker count (global batch 8, 160 steps)",
        &["workers", "mIoU", "pixel acc", "Δ mIoU vs serial"],
    );
    let serial_miou = results[0].1.final_miou;
    for (w, r) in &results {
        t.row(&[
            w.to_string(),
            format!("{:.3}", r.final_miou),
            format!("{:.3}", r.final_pixel_accuracy),
            format!("{:+.3}", r.final_miou - serial_miou),
        ]);
    }
    t.print();

    let dist_miou = results.last().expect("runs").1.final_miou;
    println!("Paper-vs-measured:");
    compare("distributed-training mIoU", 0.808, dist_miou, "");
    compare("serial-vs-distributed mIoU gap", 0.0, (dist_miou - serial_miou).abs(), "");
    println!(
        "\n(The absolute mIoU lands near the paper's 80.8% by construction of\n\
         the synthetic task's noise level; the reproduced *finding* is the\n\
         ~zero gap between serial and distributed training.)"
    );
}
