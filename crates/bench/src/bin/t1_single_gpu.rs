//! T1 — single-GPU training throughput (claim C1).
//!
//! Paper: "we observed just 6.7 images/second on a single Volta GPU for
//! training DeepLab-v3+ ... a Volta GPU can process 300 images/second for
//! training ResNet-50".

use bench::{compare, header, v100};
use dlmodels::{deeplab_paper, resnet50};
use summit_metrics::Table;

fn main() {
    header("T1", "Single-V100 training throughput", "abstract claim C1 (6.7 vs 300 img/s)");
    let gpu = v100();
    let dl = deeplab_paper();
    let rn = resnet50(224);

    let mut t = Table::new(
        "Model inventory",
        &["model", "input", "params (M)", "fwd GFLOPs", "grad payload", "tensors"],
    );
    for m in [&dl, &rn] {
        t.row(&[
            m.name.clone(),
            format!("{}x{}", m.input.0, m.input.1),
            format!("{:.1}", m.total_params() as f64 / 1e6),
            format!("{:.1}", m.total_fwd_flops() as f64 / 1e9),
            summit_metrics::fmt_bytes(m.gradient_bytes()),
            m.n_grad_tensors().to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Throughput vs per-GPU batch size (img/s)",
        &["batch", "DLv3+ (513x513)", "ResNet-50 (224x224)"],
    );
    for bs in [1usize, 2, 4, 8, 16, 32] {
        t.row(&[
            bs.to_string(),
            format!("{:.2}", gpu.throughput(&dl, bs)),
            format!("{:.1}", gpu.throughput(&rn, bs)),
        ]);
    }
    t.print();

    println!("Paper-vs-measured (batch 8 / 32):");
    compare("DLv3+ single-V100 throughput", 6.7, gpu.throughput(&dl, 8), "img/s");
    compare("ResNet-50 single-V100 throughput", 300.0, gpu.throughput(&rn, 32), "img/s");
    compare(
        "throughput gap (ResNet-50 / DLv3+)",
        300.0 / 6.7,
        gpu.throughput(&rn, 32) / gpu.throughput(&dl, 8),
        "x",
    );
}
