//! A9 — ablation: two-level hierarchical allreduce vs flat algorithms.
//!
//! Where the topology-aware composition wins and where it loses, across
//! message sizes and scales — the design-choice analysis behind the MPI
//! personalities' selection tables (DESIGN.md §5).

use bench::header;
use collectives::{simulate_dense, Algorithm, LeaderAlgo, UniformCost};
use summit_metrics::{fmt_bytes, Table};
use summit_sim::{Machine, MachineConfig};

fn main() {
    header("A9", "Hierarchical vs flat allreduce", "design-choice ablation");
    let cost = UniformCost::default();
    let algos: Vec<(&str, Algorithm)> = vec![
        ("ring", Algorithm::Ring),
        ("ring/4ch", Algorithm::ChunkedRing { chunks: 4 }),
        ("recursive-doubling", Algorithm::RecursiveDoubling),
        ("rabenseifner", Algorithm::Rabenseifner),
        ("hier(rab)", Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Rabenseifner }),
        ("hier(ring)", Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Ring }),
        ("rsag", Algorithm::HierarchicalRsag { per_node: 6 }),
    ];

    for gpus in [12usize, 48, 132] {
        let machine = Machine::new(MachineConfig::summit_for_gpus(gpus));
        let mut t = Table::new(
            format!("allreduce latency (µs) @ {gpus} GPUs"),
            &[
                "size",
                "ring",
                "ring/4ch",
                "recursive-doubling",
                "rabenseifner",
                "hier(rab)",
                "hier(ring)",
                "rsag",
                "winner",
            ],
        );
        for pow in [10u32, 14, 17, 20, 23, 26, 28] {
            let bytes = 1u64 << pow;
            let elems = (bytes / 4) as usize;
            let mut row = vec![fmt_bytes(bytes)];
            let mut best = (f64::INFINITY, "");
            for (name, algo) in &algos {
                let us = simulate_dense(&algo.build(gpus, elems), &machine, &cost)
                    .makespan
                    .as_secs_f64()
                    * 1e6;
                if us < best.0 {
                    best = (us, name);
                }
                row.push(format!("{us:.1}"));
            }
            row.push(best.1.to_string());
            t.row(&row);
        }
        t.print();
    }
    println!(
        "Shape: recursive doubling owns the latency regime (<=64 KiB),\n\
         hierarchical variants own the fused-buffer regime (~128 KiB-8 MiB),\n\
         and ring variants own the huge-message regime — exactly the selection\n\
         table MVAPICH2-GDR's personality encodes. RSAG (every GPU injecting\n\
         1/6 of the buffer) and chunked rings refine their respective bands."
    );
}
