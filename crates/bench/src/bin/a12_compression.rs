//! A12 — gradient compression codecs: wire formats and timing effect.
//!
//! A thin driver over [`collectives::compression`] — the codecs live
//! there (and are accuracy-validated for real by `bench_wire`); this
//! binary checks that every codec's *measured* wire bytes match its
//! declared format exactly, shows what each buys per MPI backend at the
//! paper's scale, and sweeps GPU counts to find where compression
//! overtakes the paper's fusion-tuning-only approach.

use bench::{header, paper_model, v100, BATCH_PER_GPU, SEED, SIM_STEPS};
use collectives::compression::{codec_for, CodecKind, EncodeScratch};
use horovod::{Compression, HorovodConfig, StepSim};
use mpi_profiles::Backend;
use summit_metrics::rng::splitmix64;
use summit_metrics::Table;
use summit_sim::{Machine, MachineConfig};

/// A deterministic gradient-like buffer (mixed magnitudes, both signs).
fn gradient(n: usize) -> Vec<f32> {
    (0..n as u64)
        .map(|i| {
            let h = splitmix64(SEED ^ i);
            let mag = 10f32.powi((h % 5) as i32 - 4); // 1e-4 ..= 1
            let frac = ((h >> 8) % 20011) as f32 / 20011.0 - 0.5;
            mag * frac
        })
        .collect()
}

fn main() {
    header("A12", "gradient compression: wire formats and timing", "extension study");

    // --- measured vs declared wire format ---------------------------
    // Whole chunks (exact bytes/elem) and a ragged tail (encoded_len
    // still exact): the bench asserts, not just prints.
    let mut t = Table::new(
        "codec wire formats (measured on a 64Ki-element gradient)",
        &["codec", "declared B/elem", "measured B/elem", "ratio", "max |err|"],
    );
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::new();
    for kind in CodecKind::ALL {
        let codec = codec_for(kind);
        for n in [1usize << 16, 100_003] {
            let src = gradient(n);
            codec.encode(&src, &mut out, &mut scratch);
            assert_eq!(
                out.len(),
                kind.encoded_len(n),
                "{kind}: encoded {} B, declared {} B for n={n}",
                out.len(),
                kind.encoded_len(n),
            );
        }
        // Whole-chunk case: measured bytes/elem must equal the declared
        // nominal exactly.
        let n = 1usize << 16;
        let src = gradient(n);
        codec.encode(&src, &mut out, &mut scratch);
        let measured = out.len() as f64 / n as f64;
        assert!(
            (measured - kind.bytes_per_element()).abs() < 1e-12,
            "{kind}: measured {measured} B/elem vs declared {}",
            kind.bytes_per_element(),
        );
        let mut dec = vec![0.0f32; n];
        codec.decode(&out, &mut dec, &mut scratch);
        let max_err = src.iter().zip(&dec).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        t.row(&[
            kind.name().into(),
            format!("{:.6}", kind.bytes_per_element()),
            format!("{measured:.6}"),
            format!("{:.2}x", kind.ratio()),
            format!("{max_err:.2e}"),
        ]);
    }
    t.print();

    // --- simulated throughput per backend at the paper's scale ------
    let machine = Machine::new(MachineConfig::summit_for_gpus(132));
    let model = paper_model();
    let gpu = v100();
    let sim = |machine: &Machine, backend: Backend, cfg: HorovodConfig, gpus: usize| {
        StepSim::new(machine, backend.profile(), cfg, &model, &gpu, BATCH_PER_GPU, gpus, SEED)
            .simulate_training(SIM_STEPS)
            .throughput
    };
    let mut t = Table::new(
        "simulated throughput at 96 GPUs, batch 1/GPU",
        &["backend", "fp32", "fp16", "int8", "int4", "topk"],
    );
    for backend in Backend::all() {
        let mut row = vec![backend.profile().name.to_string()];
        let fp32 = sim(&machine, backend, HorovodConfig::default(), 96);
        row.push(format!("{fp32:.1}"));
        for c in [Compression::Fp16, Compression::Int8, Compression::Int4, Compression::TopK] {
            let x = sim(&machine, backend, HorovodConfig::default().with_compression(c), 96);
            row.push(format!("{x:.1} ({:+.0}%)", (x / fp32 - 1.0) * 100.0));
        }
        t.row(&row);
    }
    t.print();

    // --- codec vs fusion tuning across scale ------------------------
    // The paper's recipe is tuning-only (fusion threshold sweep, no
    // compression). Where does int8/top-k over *default* knobs beat the
    // *best-tuned* fp32 configuration?
    let thresholds: [u64; 5] = [0, 8 << 20, 16 << 20, 64 << 20, 256 << 20];
    let backend = Backend::SpectrumDefault;
    let mut t = Table::new(
        "best-tuned fp32 fusion vs untuned codecs (spectrum default backend)",
        &["GPUs", "fp32 tuned", "int8 default", "topk default", "int8/tuned"],
    );
    let mut crossover = None;
    for gpus in [6usize, 12, 24, 48, 96, 132, 264, 528] {
        let m = Machine::new(MachineConfig::summit_for_gpus(gpus));
        let tuned = thresholds
            .iter()
            .map(|&th| sim(&m, backend, HorovodConfig::default().with_fusion(th), gpus))
            .fold(0.0f64, f64::max);
        let int8 =
            sim(&m, backend, HorovodConfig::default().with_compression(Compression::Int8), gpus);
        let topk =
            sim(&m, backend, HorovodConfig::default().with_compression(Compression::TopK), gpus);
        if int8 > tuned && crossover.is_none() {
            crossover = Some(gpus);
        }
        t.row(&[
            gpus.to_string(),
            format!("{tuned:.1}"),
            format!("{int8:.1}"),
            format!("{topk:.1}"),
            format!("{:.2}x", int8 / tuned),
        ]);
    }
    t.print();
    match crossover {
        Some(g) => println!(
            "Finding: untuned int8 compression overtakes the best-tuned fp32\n\
             configuration at {g} GPUs — past that scale the wire is the\n\
             bottleneck and no fusion threshold can buy back a 3.9x payload."
        ),
        None => println!(
            "Finding: fusion tuning stays ahead of untuned int8 at every scale\n\
             tested — compression overhead dominates in this regime."
        ),
    }
}
