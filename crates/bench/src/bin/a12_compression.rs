//! A12 — fp16 gradient compression: timing effect (simulated) and
//! accuracy effect (real numerics).
//!
//! Horovod's `HOROVOD_COMPRESSION=fp16` halves the wire bytes. The
//! simulated half shows what that buys per backend and scale; the real
//! half round-trips actual gradients through a from-scratch IEEE
//! binary16 implementation during training and measures the mIoU cost.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED, SIM_STEPS};
use collectives::Algorithm;
use horovod::{Compression, HorovodConfig, StepSim};
use mpi_profiles::Backend;
use summit_metrics::Table;
use trainer::real::{train, DataConfig, NetConfig, TrainConfig};

fn main() {
    header("A12", "fp16 gradient compression: time and accuracy", "extension study");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();

    let mut t = Table::new(
        "simulated throughput at 96 GPUs, batch 1/GPU",
        &["backend", "fp32 img/s", "fp16 img/s", "speedup"],
    );
    let mut speedups = Vec::new();
    for backend in Backend::all() {
        let run = |c: Compression| {
            StepSim::new(
                &machine,
                backend.profile(),
                HorovodConfig::default().with_compression(c),
                &model,
                &gpu,
                BATCH_PER_GPU,
                96,
                SEED,
            )
            .simulate_training(SIM_STEPS)
            .throughput
        };
        let fp32 = run(Compression::None);
        let fp16 = run(Compression::Fp16);
        speedups.push(fp16 / fp32);
        t.row(&[
            backend.profile().name.to_string(),
            format!("{fp32:.1}"),
            format!("{fp16:.1}"),
            format!("{:.2}x", fp16 / fp32),
        ]);
    }
    t.print();

    // Real accuracy: identical training with and without fp16 rounding.
    let cfg = |fp16: bool| {
        let data = DataConfig { noise: 0.86, ..DataConfig::default() };
        let net = NetConfig {
            height: data.height,
            width: data.width,
            cin: data.channels,
            n_classes: data.n_classes,
            ..NetConfig::default()
        };
        TrainConfig {
            data,
            net,
            workers: 4,
            batch_per_worker: 2,
            steps: 160,
            base_lr: 0.4,
            lr_scale: 1.0,
            warmup_steps: 12,
            momentum: 0.9,
            weight_decay: 0.0,
            accumulation_steps: 1,
            algo: Algorithm::Ring,
            pipeline: false,
            fp16_gradients: fp16,
            augment: false,
            eval_every: 0,
            eval_samples: 64,
            seed: SEED,
            faults: None,
            checkpoint: None,
            trace: None,
        }
    };
    let fp32 = train(&cfg(false));
    let fp16 = train(&cfg(true));
    let mut t = Table::new(
        "real training (4 workers, ring allreduce, 160 steps)",
        &["gradients", "mIoU", "pixel acc"],
    );
    t.row(&[
        "fp32".into(),
        format!("{:.3}", fp32.final_miou),
        format!("{:.3}", fp32.final_pixel_accuracy),
    ]);
    t.row(&[
        "fp16".into(),
        format!("{:.3}", fp16.final_miou),
        format!("{:.3}", fp16.final_pixel_accuracy),
    ]);
    t.print();
    println!(
        "Finding: fp16 compression buys {:+.0}% throughput on the slow default\n\
         backend (comm-bound) and {:+.0}% on MV2-GDR (comm already hidden), at\n\
         an mIoU cost of {:+.3} — consistent with why the paper's tuning-only\n\
         approach did not need it.",
        (speedups[0] - 1.0) * 100.0,
        (speedups[1] - 1.0) * 100.0,
        fp16.final_miou - fp32.final_miou
    );
}
