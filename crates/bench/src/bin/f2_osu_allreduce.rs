//! F2 — OSU-style allreduce microbenchmark across MPI personalities.
//!
//! The communication-level mechanism behind the scaling results: latency
//! vs message size for MVAPICH2-GDR, the Spectrum-MPI-like default, and
//! the NCCL-like backend, at 1, 4 and 16 Summit nodes.

use bench::{header, paper_machine};
use mpi_profiles::{allreduce_sweep, size_ladder, Backend};
use summit_metrics::{series::render_columns, Series};

fn main() {
    header(
        "F2",
        "osu_allreduce latency vs message size",
        "mechanism behind claims C2/C3 (default vs tuned MPI)",
    );
    let machine = paper_machine();
    let sizes = size_ladder(1 << 10, 256 << 20);

    for gpus in [6usize, 24, 96] {
        println!("--- {gpus} GPUs ({} nodes) ---", gpus / 6);
        let mut series = Vec::new();
        for backend in Backend::all() {
            let profile = backend.profile();
            let pts = allreduce_sweep(&profile, &machine, gpus, &sizes);
            let mut s = Series::new(profile.name);
            for p in pts {
                s.push(p.bytes as f64, p.latency_us);
            }
            series.push(s);
        }
        print!("{}", render_columns("bytes", &series));

        // Headline ratio at the fused-buffer scale (64 MiB).
        let idx = sizes.iter().position(|&b| b == 64 << 20).expect("64 MiB in ladder");
        let spec = series[0].points[idx].1;
        let mv2 = series[1].points[idx].1;
        println!(
            "  at 64 MiB: Spectrum/MV2 latency ratio = {:.2}x (paper reports MV2-GDR clearly ahead)\n",
            spec / mv2
        );
    }
}
