//! F15 — the intro's contrast: ResNet-50 scales fine where DLv3+ does
//! not.
//!
//! The paper motivates the study by noting ResNet-50 (300 img/s,
//! ~100 MiB gradients, short steps) was already well-served by existing
//! distributed-training practice, while DLv3+ (6.7 img/s, ~200 MiB
//! gradients, but *per-GPU batch pinned small by memory*) was not. This
//! binary runs both models through the identical stack.

use bench::{default_candidate, header, paper_machine, tuned_candidate, v100, SEED, SIM_STEPS};
use dlmodels::{deeplab_paper, resnet50};
use horovod::StepSim;
use summit_metrics::Table;

fn main() {
    header("F15", "ResNet-50 vs DLv3+ under the same stack", "the paper's motivation");
    let machine = paper_machine();
    let gpu = v100();
    let dl = deeplab_paper();
    let rn = resnet50(224);

    let mut t = Table::new(
        "efficiency at 132 GPUs (ResNet-50 at batch 32/GPU, DLv3+ at 1/GPU)",
        &["model", "config", "img/s", "efficiency"],
    );
    for (model, bs) in [(&rn, 32usize), (&dl, 1usize)] {
        for cand in [default_candidate(), tuned_candidate()] {
            let r = StepSim::new(
                &machine,
                cand.backend.profile(),
                cand.config.clone(),
                model,
                &gpu,
                bs,
                132,
                SEED,
            )
            .simulate_training(SIM_STEPS);
            t.row(&[
                model.name.clone(),
                if cand.backend == mpi_profiles::Backend::SpectrumDefault {
                    "default"
                } else {
                    "tuned"
                }
                .to_string(),
                format!("{:.0}", r.throughput),
                format!("{:.1}%", r.efficiency * 100.0),
            ]);
        }
    }
    t.print();
    println!(
        "Shape: ResNet-50 is near-linear even on the default stack (its large\n\
         batch buys a long backward pass to hide ~100 MiB of gradients), while\n\
         DLv3+ on the default stack collapses — the gap the paper's tuning\n\
         closes. Same machine, same runtime, different workload shape."
    );
}
