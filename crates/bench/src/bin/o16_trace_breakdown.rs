//! O16 — per-rank trace and critical-path breakdown, default vs tuned
//! (the paper's methodology, instrumented).
//!
//! Anthony et al. diagnose the default configuration's poor scaling by
//! reading the Horovod timeline, then verify the tuning by watching the
//! allreduce share of the step shrink. This experiment reproduces that
//! loop end to end: simulate one step per configuration at 4 ranks with
//! a timeline **per rank**, write Chrome-trace JSON (one pid per rank,
//! compute/comm lanes per pid), and run the critical-path analyzer —
//! per-phase busy time is an interval *union*, so the mirrored
//! synchronous allreduce is not quadruple-counted. The tuned
//! configuration must show a smaller allreduce busy-time fraction.
//!
//! A real 4-worker training run (genuine gradients over the threaded
//! ring allreduce) then produces a measured trace from the span
//! recorder, plus the metrics registry's Prometheus-style exposition.

use std::sync::Arc;

use bench::{default_candidate, header, paper_model, tuned_candidate, v100, BATCH_PER_GPU, SEED};
use horovod::{StepSim, Timeline};
use summit_sim::{Machine, MachineConfig};
use trace::{analyze, write_trace, Breakdown, TraceSession};
use trainer::real::{train, TrainConfig};
use tuner::Candidate;

/// Rank count of the traced runs (one Chrome pid each).
const N_RANKS: usize = 4;

fn traced_step(cand: Candidate, machine: &Machine, label: &str) -> (Breakdown, String) {
    let model = paper_model();
    let sim = StepSim::new(
        machine,
        cand.backend.profile(),
        cand.config,
        &model,
        &v100(),
        BATCH_PER_GPU,
        N_RANKS,
        SEED,
    );
    let (_, per_rank) = sim.simulate_step_per_rank(0);
    let mut merged = Timeline::default();
    for tl in &per_rank {
        merged.merge(tl);
    }
    let events = merged.to_chrome_events();
    let path = artifact_path(&format!("o16_trace_{label}.json"));
    std::fs::write(&path, write_trace(&events)).expect("write trace");
    (analyze(&events), path)
}

/// All report binaries drop their JSON into the gitignored
/// `artifacts/` directory instead of littering the repo root.
fn artifact_path(name: &str) -> String {
    std::fs::create_dir_all("artifacts").expect("create artifacts dir");
    format!("artifacts/{name}")
}

fn main() {
    header(
        "O16",
        "Per-rank timeline and critical-path breakdown, default vs tuned (4 GPUs)",
        "methodology: timeline-driven tuning (paper §IV) — allreduce share shrinks",
    );
    // 4 ranks as 2 nodes x 2 GPUs: each pair shares its node's EDR
    // injection bandwidth, the smallest topology where the paper's
    // communication regime is visible. (4 ranks on one Summit node
    // would talk over NVLink, where the tuning knobs barely matter.)
    let machine =
        Machine::new(MachineConfig { nodes: 2, gpus_per_node: 2, ..MachineConfig::summit(2) });

    let (bd_default, path_default) = traced_step(default_candidate(), &machine, "default");
    let (bd_tuned, path_tuned) = traced_step(tuned_candidate(), &machine, "tuned");

    println!("--- default: {} ---", default_candidate().label());
    println!("{}", bd_default.table());
    println!("--- tuned: {} ---", tuned_candidate().label());
    println!("{}", bd_tuned.table());

    let f_default = bd_default.allreduce_fraction();
    let f_tuned = bd_tuned.allreduce_fraction();
    println!(
        "allreduce busy-time fraction of the step: default {:.1}%  ->  tuned {:.1}%",
        100.0 * f_default,
        100.0 * f_tuned
    );
    assert!(
        f_tuned < f_default,
        "tuning must shrink the allreduce share: {f_tuned:.4} vs {f_default:.4}"
    );
    println!("wrote {path_default} and {path_tuned} — load in chrome://tracing\n");

    // Real numerics: train 4 workers for a few steps with the span
    // recorder enabled; the trace comes out of the actual executor
    // threads (SEND/RECV per schedule hop) and worker compute spans.
    let session = Arc::new(TraceSession::new());
    let mut cfg = TrainConfig::quick(N_RANKS);
    cfg.steps = 6;
    cfg.trace = Some(session.clone());
    let result = train(&cfg);
    let events = session.recorder.to_chrome_events();
    let real_path = artifact_path("o16_trace_real.json");
    std::fs::write(&real_path, write_trace(&events)).expect("write trace");
    println!("--- real 4-worker training ({} steps, measured) ---", cfg.steps);
    println!("{}", analyze(&events).table());
    println!("final mIoU after {} steps: {:.3}", cfg.steps, result.final_miou);
    println!("wrote {real_path}\n");

    // The layer-pipelined executor, same workload: its per-layer tile
    // reductions should land *inside* other workers' backprop, which the
    // per-phase overlap column makes a single-command check.
    let pipe_session = Arc::new(TraceSession::new());
    let mut pipe_cfg = TrainConfig::quick(N_RANKS);
    pipe_cfg.steps = 6;
    pipe_cfg.pipeline = true;
    pipe_cfg.trace = Some(pipe_session.clone());
    let pipe_result = train(&pipe_cfg);
    let pipe_events = pipe_session.recorder.to_chrome_events();
    let pipe_path = artifact_path("o16_trace_pipelined.json");
    std::fs::write(&pipe_path, write_trace(&pipe_events)).expect("write trace");
    let pipe_bd = analyze(&pipe_events);
    println!("--- pipelined 4-worker training ({} steps, measured) ---", pipe_cfg.steps);
    println!("{}", pipe_bd.table());
    println!("final mIoU after {} steps: {:.3}", pipe_cfg.steps, pipe_result.final_miou);
    let ar = pipe_bd.phases.iter().find(|p| p.cat == "MPI_ALLREDUCE").expect("allreduce spans");
    println!(
        "pipelined allreduce: busy {:.3} ms, {:.1}% hidden behind compute",
        ar.busy_us / 1e3,
        100.0 * ar.overlap_fraction()
    );
    // With a single-lane pool the reductions run on the only worker and
    // nothing can overlap; the acceptance check needs real concurrency.
    if rayon::current_num_threads() >= 2 {
        assert!(
            ar.overlap_us > 0.0,
            "pipelined tile reductions must overlap backprop, got {:.3} ms over {:.3} ms busy",
            ar.overlap_us / 1e3,
            ar.busy_us / 1e3
        );
    } else {
        println!("(single-lane pool: overlap assertion skipped)");
    }
    println!("wrote {pipe_path}\n");

    println!("--- metrics exposition ---");
    print!("{}", session.registry.snapshot().to_prometheus_text());
}
