//! A11 — ablation: how much of the tuned result depends on the machine?
//!
//! Three counterfactual Summits — PCIe-only nodes (no NVLink),
//! single-rail injection (half NIC bandwidth), and round-robin rank
//! placement — re-run the tuned 96-GPU configuration to show which
//! hardware/launcher properties the near-linear scaling rests on.

use bench::{
    default_candidate, header, paper_model, tuned_candidate, v100, BATCH_PER_GPU, SEED, SIM_STEPS,
};
use horovod::StepSim;
use summit_metrics::Table;
use summit_sim::{Machine, MachineConfig};

fn main() {
    header(
        "A11",
        "Interconnect & placement sensitivity (96 GPUs, tuned config)",
        "design ablation",
    );
    let model = paper_model();
    let gpu = v100();
    let cand = tuned_candidate();
    let n = 96;

    let machines: Vec<(&str, Machine)> = vec![
        ("Summit (baseline)", Machine::new(MachineConfig::summit_for_gpus(n))),
        ("PCIe-only nodes (no NVLink)", Machine::new(MachineConfig::summit_pcie_only(16))),
        (
            "single-rail EDR (half NIC)",
            Machine::new(MachineConfig::summit_for_gpus(n).with_nic_scale(0.5)),
        ),
    ];

    let mut t = Table::new(
        "batch 1/GPU, 96 GPUs",
        &["machine", "tuned img/s", "tuned eff", "default img/s", "default eff"],
    );
    for (name, machine) in &machines {
        let run = |c: &tuner::Candidate| {
            StepSim::new(
                machine,
                c.backend.profile(),
                c.config.clone(),
                &model,
                &gpu,
                BATCH_PER_GPU,
                n,
                SEED,
            )
            .simulate_training(SIM_STEPS)
        };
        let tuned = run(&cand);
        let default = run(&default_candidate());
        t.row(&[
            name.to_string(),
            format!("{:.1}", tuned.throughput),
            format!("{:.1}%", tuned.efficiency * 100.0),
            format!("{:.1}", default.throughput),
            format!("{:.1}%", default.efficiency * 100.0),
        ]);
    }
    t.print();

    // Placement sensitivity, measured at the allreduce level.
    use collectives::{simulate, Algorithm, UniformCost};
    use summit_sim::Placement;
    let machine = &machines[0].1;
    let sched = Algorithm::Ring.build(n, (16 << 20) / 4);
    let cost = UniformCost::default();
    let mut t = Table::new(
        "16 MiB ring allreduce by rank placement",
        &["placement", "latency (ms)", "slowdown"],
    );
    let base = simulate(&sched, machine, &Placement::Dense.assign(machine, n), &cost)
        .makespan
        .as_secs_f64();
    for p in [Placement::Dense, Placement::SocketInterleaved, Placement::RoundRobinNodes] {
        let tm = simulate(&sched, machine, &p.assign(machine, n), &cost).makespan.as_secs_f64();
        t.row(&[format!("{p:?}"), format!("{:.2}", tm * 1e3), format!("{:.2}x", tm / base)]);
    }
    t.print();
    println!(
        "Shape: the tuned result needs NVLink (PCIe-only nodes lose heavily in\n\
         the intra-node phases) and packed placement (round-robin ranks push\n\
         every ring hop through the fabric); single-rail operation costs\n\
         inter-node bandwidth but overlap still hides most of it."
    );
}
