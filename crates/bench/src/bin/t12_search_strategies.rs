//! T12 — tuning-strategy comparison at a fixed evaluation budget:
//! exhaustive grid vs greedy coordinate descent vs random search.
//!
//! The paper's methodology is one-knob-family-at-a-time (≈ coordinate
//! descent). This experiment quantifies what that buys over naive
//! random search and how close it lands to the full grid's optimum.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED};
use summit_metrics::Table;
use tuner::{coordinate_descent, grid_search, random_search, Candidate, KnobSpace, Objective};

fn main() {
    header("T12", "Grid vs coordinate descent vs random search (96 GPUs)", "methodology study");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let space = KnobSpace::paper();
    let n = 96;

    // Full grid: the reference optimum (expensive).
    let grid_obj = Objective::new(&machine, &model, &gpu, BATCH_PER_GPU, n, 2, SEED);
    let grid = grid_search(&space, &grid_obj);

    // Coordinate descent from the default.
    let cd_obj = Objective::new(&machine, &model, &gpu, BATCH_PER_GPU, n, 2, SEED);
    let cd = coordinate_descent(&space, &cd_obj, Candidate::paper_default(), 3);

    // Random search with the same budget coordinate descent used.
    let rs_obj = Objective::new(&machine, &model, &gpu, BATCH_PER_GPU, n, 2, SEED);
    let rs = random_search(&space, &rs_obj, cd.evaluations, SEED);

    let mut t = Table::new(
        format!("space = {} candidates", space.size()),
        &["strategy", "evaluations", "best img/s", "vs grid optimum"],
    );
    for (name, report) in
        [("grid (exhaustive)", &grid), ("coordinate descent", &cd), ("random", &rs)]
    {
        t.row(&[
            name.to_string(),
            report.evaluations.to_string(),
            format!("{:.1}", report.best.throughput),
            format!("{:.1}%", report.best.throughput / grid.best.throughput * 100.0),
        ]);
    }
    t.print();
    println!("grid optimum: {}", grid.best.candidate.label());
    println!("coord descent: {}", cd.best.candidate.label());
    println!("random best : {}", rs.best.candidate.label());
    println!(
        "\nFinding: once the backend swap to MVAPICH2-GDR and a sub-ms cycle are\n\
         found, the remaining knobs are flat at this scale, so every strategy\n\
         reaches the same plateau — the methodology's value is getting there\n\
         deterministically at ~{}x below grid cost (random matching it depends\n\
         on the draw: ~1/3 of candidates use the right backend).",
        space.size() / cd.evaluations.max(1)
    );
}
