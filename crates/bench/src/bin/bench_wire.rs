//! BENCH_wire: gradient-codec accuracy vs wire bytes, tracked across
//! PRs in `BENCH_wire.json`.
//!
//! For every codec in [`collectives::compression`] this runs the *real*
//! data-parallel trainer (the `f8_miou` configuration: 4 workers, ring
//! allreduce, synthetic shapes segmentation) with the codec on the
//! gradient path — lossy codecs with error feedback — and records
//!
//! * wire/raw bytes from the trainer's own metrics registry (exact, per
//!   the codec wire format), and
//! * the accuracy cost: final mIoU delta and tail training loss vs the
//!   fp32 baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run -p bench --bin bench_wire --release [-- --quick] [-- --check]
//! ```
//!
//! `--quick` shrinks the runs for CI smoke. `--check` fails (exit 1) if
//! any codec's measured wire-byte ratio fell below the committed
//! `BENCH_wire.json` baseline — the wire format is deterministic, so a
//! drop means someone broke an encoder. Accuracy is gated in-run: int8
//! must reach a ≥3.5x wire reduction at ≤0.5 pt of mIoU.

use std::sync::Arc;

use bench::json::{array_items, compact_json, extract_value, number_after, today_utc};
use bench::{header, SEED};
use collectives::{Algorithm, CodecKind};
use summit_metrics::Table;
use trace::TraceSession;
use trainer::real::{train, DataConfig, NetConfig, TrainConfig};

/// In-run accuracy gate for int8 (full mode): ≤ 0.5 pt of mIoU.
const INT8_MIOU_LIMIT: f64 = 0.005;
/// Quick runs are short and noisy; gate loosely, the committed baseline
/// carries the full-run numbers.
const QUICK_MIOU_LIMIT: f64 = 0.05;
/// Int8 must shrink the wire at least this much (acceptance floor).
const INT8_RATIO_FLOOR: f64 = 3.5;

struct CodecRun {
    codec: CodecKind,
    error_feedback: bool,
    wire_bytes: u64,
    raw_bytes: u64,
    miou: f64,
    miou_delta: f64,
    tail_loss: f64,
}

fn config(steps: usize, eval_samples: usize) -> TrainConfig {
    let data = DataConfig { noise: 0.86, ..DataConfig::default() };
    let net = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    TrainConfig {
        data,
        net,
        workers: 4,
        batch_per_worker: 2,
        steps,
        base_lr: 0.4,
        lr_scale: 1.0,
        warmup_steps: 12,
        momentum: 0.9,
        weight_decay: 0.0,
        accumulation_steps: 1,
        algo: Algorithm::Ring,
        pipeline: false,
        fp16_gradients: false,
        codec: CodecKind::None,
        error_feedback: false,
        augment: false,
        eval_every: 0,
        eval_samples,
        seed: SEED,
        faults: None,
        checkpoint: None,
        trace: None,
    }
}

fn tail_loss(losses: &[f64]) -> f64 {
    let k = losses.len().clamp(1, 10);
    losses[losses.len() - k..].iter().sum::<f64>() / k as f64
}

/// The comm backend the measured run exercised. This bench drives the
/// in-process threaded trainer; entries measured over the socket
/// transport (a future `--backend socket` mode) must be distinguishable
/// in the tracker, so the schema carries the field from day one.
const BACKEND: &str = "thread";

/// Normalize one history entry to the current schema: entries written
/// before the `backend` field existed were all measured on the threaded
/// backend, so inject that explicitly (same idiom as `bench_step`'s
/// date/cores injection); returns whether the entry needed fixing.
fn normalize_history_entry(entry: &str) -> (String, bool) {
    let mut e = entry.trim().to_string();
    if !e.starts_with('{') || e.contains("\"backend\"") {
        return (e, false);
    }
    e.insert_str(1, "\"backend\":\"thread\",");
    (e, true)
}

fn run_codec(steps: usize, eval_samples: usize, codec: CodecKind, ef: bool) -> CodecRun {
    let mut cfg = config(steps, eval_samples);
    cfg.codec = codec;
    cfg.error_feedback = ef;
    let ts = Arc::new(TraceSession::new());
    cfg.trace = Some(ts.clone());
    let r = train(&cfg);
    let m = ts.registry.snapshot();
    let get = |name: &str| m.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    CodecRun {
        codec,
        error_feedback: ef,
        wire_bytes: get("train_wire_bytes_total"),
        raw_bytes: get("train_raw_bytes_total"),
        miou: r.final_miou,
        miou_delta: 0.0, // filled in once the fp32 baseline exists
        tail_loss: tail_loss(&r.step_losses),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let (steps, eval_samples) = if quick { (48, 32) } else { (160, 64) };

    header(
        "BENCH_wire",
        "gradient codecs end-to-end: wire bytes vs accuracy",
        "the compression trajectory across PRs, gated against wire-format regressions",
    );

    let previous = std::fs::read_to_string("BENCH_wire.json").ok();

    // Lossy codecs run with error feedback — that is the configuration
    // the convergence argument (DESIGN.md §5g) is made for.
    let plan: [(CodecKind, bool); 5] = [
        (CodecKind::None, false),
        (CodecKind::Fp16, false),
        (CodecKind::Int8, true),
        (CodecKind::Int4, true),
        (CodecKind::TopK, true),
    ];
    let mut runs: Vec<CodecRun> = Vec::new();
    for (codec, ef) in plan {
        println!("  running {codec}{} ...", if ef { "+ef" } else { "" });
        runs.push(run_codec(steps, eval_samples, codec, ef));
    }
    let base_miou = runs[0].miou;
    for r in runs.iter_mut() {
        r.miou_delta = r.miou - base_miou;
    }

    let mut t = Table::new(
        format!("4 workers, ring allreduce, {steps} steps"),
        &["codec", "wire ratio", "wire MB", "mIoU", "delta (pt)", "tail loss"],
    );
    for r in &runs {
        let ratio = r.raw_bytes as f64 / r.wire_bytes.max(1) as f64;
        t.row(&[
            format!("{}{}", r.codec, if r.error_feedback { "+ef" } else { "" }),
            format!("{ratio:.2}x"),
            format!("{:.2}", r.wire_bytes as f64 / 1e6),
            format!("{:.3}", r.miou),
            format!("{:+.2}", r.miou_delta * 100.0),
            format!("{:.4}", r.tail_loss),
        ]);
    }
    t.print();

    // --- in-run acceptance gates ------------------------------------
    let int8 = runs.iter().find(|r| r.codec == CodecKind::Int8).expect("int8 ran");
    let int8_ratio = int8.raw_bytes as f64 / int8.wire_bytes as f64;
    assert!(
        int8_ratio >= INT8_RATIO_FLOOR,
        "int8 wire reduction {int8_ratio:.2}x is below the {INT8_RATIO_FLOOR}x floor"
    );
    let limit = if quick { QUICK_MIOU_LIMIT } else { INT8_MIOU_LIMIT };
    assert!(
        int8.miou_delta.abs() <= limit,
        "int8+ef mIoU delta {:.4} exceeds the {limit} limit (fp32 {base_miou:.4}, int8 {:.4})",
        int8.miou_delta,
        int8.miou,
    );

    // --- fold history and write the tracker -------------------------
    // Every entry is normalized to the current schema on the way in:
    // pre-`backend` entries were all measured on the threaded backend.
    let mut history: Vec<String> = Vec::new();
    let mut normalized = 0usize;
    if let Some(prev) = &previous {
        if let Some(h) = extract_value(prev, "history") {
            for item in array_items(h) {
                let (fixed, did) = normalize_history_entry(item);
                history.push(fixed);
                if did {
                    normalized += 1;
                }
            }
        }
        if let Some(latest) = extract_value(prev, "latest") {
            let (fixed, did) = normalize_history_entry(&compact_json(latest));
            history.push(fixed);
            if did {
                normalized += 1;
            }
        }
    }
    if normalized > 0 {
        eprintln!(
            "  warning: normalized {normalized} pre-schema history entr{} (injected \
             backend=\"thread\" stub)",
            if normalized == 1 { "y" } else { "ies" }
        );
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let codecs_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "      {{\"codec\": \"{}\", \"error_feedback\": {}, \"ratio\": {:.4}, \
                 \"wire_bytes\": {}, \"raw_bytes\": {}, \"miou\": {:.4}, \"miou_delta\": \
                 {:.4}, \"tail_loss\": {:.4}}}",
                r.codec,
                r.error_feedback,
                r.raw_bytes as f64 / r.wire_bytes.max(1) as f64,
                r.wire_bytes,
                r.raw_bytes,
                r.miou,
                r.miou_delta,
                r.tail_loss,
            )
        })
        .collect();
    let latest = format!(
        "{{\n    \"date\": \"{}\",\n    \"backend\": \"{BACKEND}\",\n    \"cores\": {cores},\n    \
         \"workers\": 4,\n    \"steps\": {steps},\n    \"codecs\": [\n{}\n    ]\n  }}",
        today_utc(),
        codecs_json.join(",\n"),
    );
    let history_json = if history.is_empty() {
        String::new()
    } else {
        format!("\n    {}\n  ", history.join(",\n    "))
    };
    let json = format!(
        "{{\n  \"bench\": \"BENCH_wire\",\n  \"latest\": {latest},\n  \"history\": \
         [{history_json}]\n}}\n"
    );
    std::fs::write("BENCH_wire.json", &json).expect("write BENCH_wire.json");
    println!("  wrote BENCH_wire.json ({} history entries)", history.len());

    // --- regression check against the committed baseline ------------
    if check {
        match &previous {
            Some(prev) => {
                let mut failed = false;
                for r in &runs {
                    let anchor = format!("\"{}\"", r.codec);
                    let Some(base_ratio) = number_after(prev, &anchor, "ratio") else {
                        eprintln!(
                            "  warning: no committed baseline for codec {}, skipped",
                            r.codec
                        );
                        continue;
                    };
                    let ratio = r.raw_bytes as f64 / r.wire_bytes.max(1) as f64;
                    // The wire format is deterministic: any drop means an
                    // encoder started emitting more bytes.
                    if ratio < base_ratio - 1e-3 {
                        eprintln!(
                            "  REGRESSION: {} wire ratio {ratio:.4} fell below the committed \
                             {base_ratio:.4}",
                            r.codec
                        );
                        failed = true;
                    } else {
                        println!(
                            "  ratio check {}: {ratio:.4} vs baseline {base_ratio:.4} ok",
                            r.codec
                        );
                    }
                }
                if failed {
                    std::process::exit(1);
                }
            }
            None => eprintln!(
                "  warning: regression check SKIPPED — no committed BENCH_wire.json baseline"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_loss_averages_the_last_ten() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert!((tail_loss(&xs) - 14.5).abs() < 1e-12);
        assert!((tail_loss(&[2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_ratio_is_readable_back() {
        let src = "{\"latest\": {\"codecs\": [{\"codec\": \"int8\", \"ratio\": 3.9385}]}}";
        assert_eq!(number_after(src, "\"int8\"", "ratio"), Some(3.9385));
    }

    #[test]
    fn legacy_history_entries_get_a_thread_backend_stub() {
        let legacy = "{\"date\":\"2026-08-01\",\"cores\":8,\"codecs\":[]}";
        let (fixed, did) = normalize_history_entry(legacy);
        assert!(did);
        assert!(fixed.starts_with("{\"backend\":\"thread\","), "{fixed}");

        // Already-normalized entries pass through untouched.
        let (again, did2) = normalize_history_entry(&fixed);
        assert!(!did2);
        assert_eq!(again, fixed);
    }
}
