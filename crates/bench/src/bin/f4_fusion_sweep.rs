//! F4 — `HOROVOD_FUSION_THRESHOLD` sweep at 96 GPUs.
//!
//! The first of the paper's two Horovod-knob sweeps: fusion too small
//! drowns in per-message latency and negotiation; too large delays the
//! first allreduce and shrinks the overlap window.

use bench::{header, paper_machine, paper_model, v100, BATCH_PER_GPU, SEED, SIM_STEPS};
use horovod::{HorovodConfig, StepSim};
use mpi_profiles::Backend;
use summit_metrics::{fmt_bytes, Table};

fn main() {
    header("F4", "Fusion-threshold sweep (96 GPUs)", "tuning methodology, knob 1");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let n = 96;

    let thresholds: Vec<u64> = vec![
        0,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
        16 << 20,
        32 << 20,
        64 << 20,
        128 << 20,
        256 << 20,
    ];

    for backend in [Backend::SpectrumDefault, Backend::Mvapich2Gdr] {
        let mut t = Table::new(
            format!("{} @ {n} GPUs", backend.profile().name),
            &["fusion", "img/s", "efficiency", "buffers/step", "exposed comm (ms)"],
        );
        for &th in &thresholds {
            let sim = StepSim::new(
                &machine,
                backend.profile(),
                HorovodConfig::default().with_fusion(th),
                &model,
                &gpu,
                BATCH_PER_GPU,
                n,
                SEED,
            );
            let r = sim.simulate_training(SIM_STEPS);
            let b = &r.steps[0];
            t.row(&[
                if th == 0 { "off".to_string() } else { fmt_bytes(th) },
                format!("{:.1}", r.throughput),
                format!("{:.1}%", r.efficiency * 100.0),
                b.n_buffers.to_string(),
                format!("{:.1}", b.exposed_comm * 1e3),
            ]);
        }
        t.print();
    }
    println!(
        "Shape: on the default backend, throughput collapses with fusion off\n\
         (hundreds of small allreduces) and recovers through the 8-64 MB\n\
         band. On MVAPICH2-GDR the knob is nearly flat — communication is\n\
         already hidden — which is itself the paper's point: the backend\n\
         choice dominates, then fusion/cycle fine-tune the default backend."
    );
}
