//! F6 — tuned vs default scaling: the paper's headline figure
//! (claims C3, C4, C5).
//!
//! Paper: "Our optimization approach achieves near-linear (92%) scaling
//! with MVAPICH2-GDR ... an improvement in scaling efficiency by 23.9%
//! over default Horovod training, which translates to a 1.3× speedup."

use bench::{
    compare, default_candidate, header, paper_machine, paper_model, tuned_candidate, v100,
    BATCH_PER_GPU, SEED, SIM_STEPS,
};
use summit_metrics::scaling::compare_at;
use summit_metrics::Table;
use trainer::{paper_gpu_counts, SweepSpec};

fn main() {
    header(
        "F6",
        "Tuned (MVAPICH2-GDR) vs default Horovod scaling of DLv3+",
        "abstract claims C3 (92% @ 132), C4 (+23.9 pts), C5 (1.3x)",
    );
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let counts = paper_gpu_counts();

    let run = |cand: tuner::Candidate, label: &str| {
        let spec = SweepSpec {
            machine: &machine,
            profile: cand.backend.profile(),
            config: cand.config,
            model: &model,
            gpu: &gpu,
            batch_per_gpu: BATCH_PER_GPU,
            steps: SIM_STEPS,
            seed: SEED,
        };
        spec.sweep(label, &counts)
    };

    let default = run(default_candidate(), "default");
    let tuned = run(tuned_candidate(), "tuned");

    let mut t = Table::new(
        "images/second and efficiency (batch 1/GPU)",
        &["GPUs", "default img/s", "default eff", "tuned img/s", "tuned eff", "speedup"],
    );
    for &n in &counts {
        let (et, ed, _, spd) = compare_at(&tuned, &default, n).expect("point measured");
        t.row(&[
            n.to_string(),
            format!("{:.1}", default.throughput_at(n).unwrap()),
            format!("{:.1}%", ed * 100.0),
            format!("{:.1}", tuned.throughput_at(n).unwrap()),
            format!("{:.1}%", et * 100.0),
            format!("{spd:.2}x"),
        ]);
    }
    t.print();

    println!("Tuned configuration: {}", tuned_candidate().label());
    println!("Default configuration: {}", default_candidate().label());
    println!();
    let (et, ed, delta, spd) = compare_at(&tuned, &default, 132).expect("132-GPU point");
    println!("Paper-vs-measured at 132 GPUs:");
    compare("tuned scaling efficiency", 92.0, et * 100.0, "%");
    compare("default scaling efficiency", 68.1, ed * 100.0, "%");
    compare("efficiency improvement", 23.9, delta, "pts");
    compare("training speedup (tuned/default)", 1.3, spd, "x");
}
