//! BENCH_step: measures training-step throughput and tracks it across
//! PRs in `BENCH_step.json`.
//!
//! Three variant families run in one process:
//!
//! * `naive_reference` — the retained pre-optimization per-sample path
//!   (allocates, scalar).
//! * `optimized_workspace` — the zero-allocation single-thread batch
//!   path over the SIMD kernels. This is the key the regression gate
//!   compares across runs.
//! * `pipeline_{n}w` — the full pipelined step (work-stealing pool,
//!   per-layer tile allreduce, optimizer update) at 1/2/4 workers, the
//!   per-core scaling curve. Worker counts above the machine's core
//!   count are skipped (timesharing would only measure noise); the
//!   recorded `cores` field says why a curve is short.
//!
//! The JSON keeps the perf trajectory: the newest run always sits at
//! the stable `latest` key and every previous `latest` is appended to
//! the `history` array (a pre-history flat-format file becomes the
//! first history entry).
//!
//! Run with:
//!
//! ```text
//! cargo run -p bench --bin bench_step --release [-- --quick] [-- --check]
//! ```
//!
//! `--quick` shrinks warmup/measure step counts for CI smoke runs;
//! `--check` fails (exit 1) if `optimized_workspace` regressed by more
//! than 20% against the committed `BENCH_step.json` baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bench::header;
use bench::json::{array_items, compact_json, extract_value, number_after, today_utc};
use collectives::CodecKind;
use trainer::real::net::{BatchWorkspace, NetConfig, SegNet};
use trainer::real::pipeline::PipelineExecutor;
use trainer::real::segdata::{generate_batch, DataConfig, Sample};
use trainer::real::sgd::{LrSchedule, MomentumSgd};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BATCH: usize = 8;
/// Pipelined variants: replicas × batch-per-replica = BATCH samples per
/// step, so images/s is directly comparable across variant families.
const REPLICAS: usize = 2;
const SCALING_WORKERS: [usize; 3] = [1, 2, 4];
/// The regression gate: `--check` fails beyond this slowdown.
const REGRESSION_LIMIT: f64 = 1.20;

struct Measurement {
    name: String,
    ns_per_step: f64,
    imgs_per_s: f64,
    allocs_per_step: f64,
}

fn measure(
    name: impl Into<String>,
    warmup: usize,
    steps: usize,
    mut step: impl FnMut() -> f64,
) -> Measurement {
    let mut sink = 0.0;
    for _ in 0..warmup {
        sink += step();
    }
    let allocs_before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..steps {
        sink += step();
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - allocs_before;
    assert!(sink.is_finite(), "loss diverged during benchmark");
    let ns_per_step = elapsed.as_nanos() as f64 / steps as f64;
    Measurement {
        name: name.into(),
        ns_per_step,
        imgs_per_s: BATCH as f64 / (ns_per_step * 1e-9),
        allocs_per_step: allocs as f64 / steps as f64,
    }
}

fn reference_step(net: &SegNet, batch: &[Sample]) -> f64 {
    // The pre-optimization step: allocate per sample, average by hand.
    let mut grad = vec![0.0f32; net.n_params()];
    let mut loss = 0.0;
    for s in batch {
        let (l, g) = net.reference_loss_grad(s);
        loss += l;
        for (acc, gi) in grad.iter_mut().zip(&g) {
            *acc += gi;
        }
    }
    let inv = 1.0 / batch.len() as f32;
    for g in &mut grad {
        *g *= inv;
    }
    loss / batch.len() as f64
}

/// `ns_per_step` of `variant` — first occurrence wins, and `latest`
/// precedes `history` in the current layout, so this reads the newest
/// number from either format.
fn extract_ns_per_step(src: &str, variant: &str) -> Option<f64> {
    number_after(src, &format!("\"{variant}\""), "ns_per_step")
}

/// Normalize one history entry to the current schema: pre-history
/// entries (the folded flat-format file) lack `date` and `cores`, which
/// would make them silently unusable to any consumer that keys on
/// those. Inject explicit unknown markers so every entry parses the
/// same way; returns whether the entry needed fixing.
fn normalize_history_entry(entry: &str) -> (String, bool) {
    let mut e = entry.trim().to_string();
    if !e.starts_with('{') {
        return (e, false);
    }
    let mut fixed = false;
    // Insert in reverse order so both end up at the front.
    for (key, inject) in [("cores", "\"cores\":0,"), ("date", "\"date\":\"unknown\",")] {
        if !e.contains(&format!("\"{key}\"")) {
            e.insert_str(1, inject);
            fixed = true;
        }
    }
    (e, fixed)
}

fn json_entry(m: &Measurement) -> String {
    format!(
        "      {{\"variant\": \"{}\", \"imgs_per_s\": {:.1}, \"ns_per_step\": {:.0}, \
         \"allocs_per_step\": {:.1}}}",
        m.name, m.imgs_per_s, m.ns_per_step, m.allocs_per_step
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let (warmup, steps) = if quick { (2, 12) } else { (5, 60) };

    header(
        "BENCH_step",
        "step throughput: naive vs optimized vs pipelined, with scaling curve",
        "the perf trajectory across PRs, gated against >20% regression",
    );

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let previous = std::fs::read_to_string("BENCH_step.json").ok();
    let baseline_ns =
        previous.as_deref().and_then(|s| extract_ns_per_step(s, "optimized_workspace"));

    let data = DataConfig::default();
    let cfg = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    let net = SegNet::new(cfg, 42);
    let batch = generate_batch(&data, 42, 0, BATCH);
    let mut bw = BatchWorkspace::new(&cfg);

    let optimized =
        measure("optimized_workspace", warmup, steps, || net.batch_loss_grad_ws(&batch, &mut bw));
    let reference = measure("naive_reference", warmup, steps, || reference_step(&net, &batch));
    let speedup = optimized.imgs_per_s / reference.imgs_per_s;

    // Per-core scaling: the identical pipelined step (compute + tile
    // allreduce + update) at increasing worker counts.
    let shards: Vec<Vec<Sample>> = (0..REPLICAS)
        .map(|r| generate_batch(&data, 42, (r * (BATCH / REPLICAS)) as u64, BATCH / REPLICAS))
        .collect();
    let lr = LrSchedule::constant(0.01, usize::MAX);
    let mut scaling: Vec<Measurement> = Vec::new();
    for workers in SCALING_WORKERS {
        if workers > 1 && workers > cores {
            println!("  pipeline_{workers}w       skipped ({cores} core(s) available)");
            continue;
        }
        let mut exec = PipelineExecutor::new(&cfg, REPLICAS, BATCH / REPLICAS, 1, workers);
        let mut nets: Vec<SegNet> = (0..REPLICAS).map(|_| SegNet::new(cfg, 7)).collect();
        let mut opts: Vec<MomentumSgd> =
            (0..REPLICAS).map(|_| MomentumSgd::new(lr, 0.9, net.n_params())).collect();
        scaling.push(measure(format!("pipeline_{workers}w"), warmup, steps, || {
            exec.step(nets.iter_mut().zip(opts.iter_mut()), &shards, CodecKind::None, false)
        }));
    }

    for m in [&optimized, &reference].into_iter().chain(&scaling) {
        println!(
            "  {:<22} {:>10.1} imgs/s  {:>12.0} ns/step  {:>7.1} allocs/step",
            m.name, m.imgs_per_s, m.ns_per_step, m.allocs_per_step
        );
    }
    println!("  speedup (optimized / reference): {speedup:.2}x");
    if let Some(base) = scaling.first() {
        for m in &scaling[1..] {
            println!(
                "  scaling {}: {:.2}x over pipeline_1w",
                m.name,
                base.ns_per_step / m.ns_per_step
            );
        }
    }

    // Fold the previous run into history: a prior `latest` moves to the
    // end of `history`; a pre-history flat file becomes the first entry.
    // Every entry is normalized to the current schema on the way in.
    let mut history: Vec<String> = Vec::new();
    let mut normalized = 0usize;
    if let Some(prev) = &previous {
        if let Some(h) = extract_value(prev, "history") {
            history.extend(array_items(h).iter().map(|s| s.to_string()));
        }
        if let Some(latest) = extract_value(prev, "latest") {
            history.push(compact_json(latest));
        } else if prev.contains("\"variants\"") {
            history.push(compact_json(prev));
        }
    }
    for h in history.iter_mut() {
        let (fixed, did) = normalize_history_entry(h);
        if did {
            *h = fixed;
            normalized += 1;
        }
    }
    if normalized > 0 {
        eprintln!(
            "  warning: normalized {normalized} pre-schema history entr{} (injected \
             date/cores markers)",
            if normalized == 1 { "y" } else { "ies" }
        );
    }

    let variants: Vec<String> =
        [&optimized, &reference].into_iter().chain(&scaling).map(json_entry).collect();
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|m| {
            let workers: usize = m
                .name
                .trim_start_matches("pipeline_")
                .trim_end_matches('w')
                .parse()
                .expect("variant name encodes the worker count");
            format!(
                "      {{\"workers\": {workers}, \"ns_per_step\": {:.0}, \"imgs_per_s\": {:.1}, \
                 \"speedup_vs_1w\": {:.3}}}",
                m.ns_per_step,
                m.imgs_per_s,
                scaling[0].ns_per_step / m.ns_per_step
            )
        })
        .collect();
    let latest = format!(
        "{{\n    \"date\": \"{}\",\n    \"batch\": {BATCH},\n    \"steps\": {steps},\n    \
         \"threads\": {},\n    \"cores\": {cores},\n    \"variants\": [\n{}\n    ],\n    \
         \"scaling\": [\n{}\n    ],\n    \"speedup\": {speedup:.3}\n  }}",
        today_utc(),
        rayon::current_num_threads(),
        variants.join(",\n"),
        scaling_json.join(",\n"),
    );
    let history_json = if history.is_empty() {
        String::new()
    } else {
        format!("\n    {}\n  ", history.join(",\n    "))
    };
    let json = format!(
        "{{\n  \"bench\": \"BENCH_step\",\n  \"latest\": {latest},\n  \"history\": \
         [{history_json}]\n}}\n"
    );
    std::fs::write("BENCH_step.json", &json).expect("write BENCH_step.json");
    println!("  wrote BENCH_step.json ({} history entries)", history.len());

    assert!(
        speedup >= 2.0,
        "perf target missed: optimized path is only {speedup:.2}x the reference (target 2.0x)"
    );
    // The 4-worker scaling target only means something on hardware that
    // can actually run 4 lanes at once.
    if cores >= 4 {
        if let Some(m4) = scaling.iter().find(|m| m.name == "pipeline_4w") {
            let s = scaling[0].ns_per_step / m4.ns_per_step;
            assert!(s >= 3.0, "scaling target missed: pipeline_4w is only {s:.2}x pipeline_1w");
        }
    }
    if check {
        match baseline_ns {
            Some(base) => {
                let ratio = optimized.ns_per_step / base;
                println!(
                    "  regression check: {:.0} ns vs baseline {base:.0} ns ({ratio:.3}x, limit \
                     {REGRESSION_LIMIT:.2}x)",
                    optimized.ns_per_step
                );
                if ratio > REGRESSION_LIMIT {
                    eprintln!(
                        "  REGRESSION: optimized_workspace {ratio:.2}x slower than the committed \
                         baseline"
                    );
                    std::process::exit(1);
                }
            }
            None => eprintln!(
                "  warning: regression check SKIPPED — no parsable \
                 optimized_workspace baseline in BENCH_step.json"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEGACY: &str = r#"{
  "bench": "BENCH_step",
  "batch": 8,
  "variants": [
    {"variant": "optimized_workspace", "imgs_per_s": 2941.9, "ns_per_step": 2719350, "allocs_per_step": 0.0},
    {"variant": "naive_reference", "imgs_per_s": 540.0, "ns_per_step": 14814426, "allocs_per_step": 65.0}
  ],
  "speedup": 5.448
}"#;

    #[test]
    fn normalizes_legacy_history_entries() {
        let legacy = compact_json(LEGACY);
        assert!(!legacy.contains("\"date\"") && !legacy.contains("\"cores\""));
        let (fixed, did) = normalize_history_entry(&legacy);
        assert!(did);
        assert!(fixed.starts_with("{\"date\":\"unknown\",\"cores\":0,"), "{fixed}");
        // The payload survives and the baseline stays readable.
        assert_eq!(extract_ns_per_step(&fixed, "optimized_workspace"), Some(2719350.0));
        // Idempotent: a conforming entry passes through untouched.
        let (again, did2) = normalize_history_entry(&fixed);
        assert!(!did2);
        assert_eq!(again, fixed);
    }

    #[test]
    fn reads_baseline_from_legacy_and_current_formats() {
        assert_eq!(extract_ns_per_step(LEGACY, "optimized_workspace"), Some(2719350.0));
        assert_eq!(extract_ns_per_step(LEGACY, "naive_reference"), Some(14814426.0));
        // Current format: `latest` precedes `history`, so the first
        // occurrence is the newest number.
        let current = format!(
            "{{\"bench\": \"BENCH_step\", \"latest\": {{\"variants\": [{{\"variant\": \
             \"optimized_workspace\", \"ns_per_step\": 1300000}}]}}, \"history\": [{}]}}",
            compact_json(LEGACY)
        );
        assert_eq!(extract_ns_per_step(&current, "optimized_workspace"), Some(1300000.0));
    }
}
