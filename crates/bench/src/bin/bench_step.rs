//! BENCH_step: measures single-worker training-step throughput of the
//! optimized zero-allocation gradient path against the retained naive
//! reference, in the same process and run, and writes `BENCH_step.json`.
//!
//! Reported per variant: images/s, ns per step (one step = one batch of
//! `BATCH` samples), and heap allocation events per step counted by a
//! `#[global_allocator]` wrapper.
//!
//! Run with:
//!
//! ```text
//! cargo run -p bench --bin bench_step --release
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bench::header;
use trainer::real::net::{BatchWorkspace, NetConfig, SegNet};
use trainer::real::segdata::{generate_batch, DataConfig, Sample};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BATCH: usize = 8;
const WARMUP_STEPS: usize = 5;
const MEASURE_STEPS: usize = 60;

struct Measurement {
    name: &'static str,
    ns_per_step: f64,
    imgs_per_s: f64,
    allocs_per_step: f64,
}

fn measure(name: &'static str, mut step: impl FnMut() -> f64) -> Measurement {
    let mut sink = 0.0;
    for _ in 0..WARMUP_STEPS {
        sink += step();
    }
    let allocs_before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..MEASURE_STEPS {
        sink += step();
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - allocs_before;
    assert!(sink.is_finite(), "loss diverged during benchmark");
    let ns_per_step = elapsed.as_nanos() as f64 / MEASURE_STEPS as f64;
    Measurement {
        name,
        ns_per_step,
        imgs_per_s: BATCH as f64 / (ns_per_step * 1e-9),
        allocs_per_step: allocs as f64 / MEASURE_STEPS as f64,
    }
}

fn reference_step(net: &SegNet, batch: &[Sample]) -> f64 {
    // The pre-optimization step: allocate per sample, average by hand.
    let mut grad = vec![0.0f32; net.n_params()];
    let mut loss = 0.0;
    for s in batch {
        let (l, g) = net.reference_loss_grad(s);
        loss += l;
        for (acc, gi) in grad.iter_mut().zip(&g) {
            *acc += gi;
        }
    }
    let inv = 1.0 / batch.len() as f32;
    for g in &mut grad {
        *g *= inv;
    }
    loss / batch.len() as f64
}

fn json_entry(m: &Measurement) -> String {
    format!(
        "    {{\"variant\": \"{}\", \"imgs_per_s\": {:.1}, \"ns_per_step\": {:.0}, \
         \"allocs_per_step\": {:.1}}}",
        m.name, m.imgs_per_s, m.ns_per_step, m.allocs_per_step
    )
}

fn main() {
    header(
        "BENCH_step",
        "single-worker step throughput: optimized hot path vs naive reference",
        "the PR-2 perf target: >=2x images/s at identical numerics",
    );

    let data = DataConfig::default();
    let cfg = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    let net = SegNet::new(cfg, 42);
    let batch = generate_batch(&data, 42, 0, BATCH);
    let mut bw = BatchWorkspace::new(&cfg);

    let optimized = measure("optimized_workspace", || net.batch_loss_grad_ws(&batch, &mut bw));
    let reference = measure("naive_reference", || reference_step(&net, &batch));
    let speedup = optimized.imgs_per_s / reference.imgs_per_s;

    for m in [&optimized, &reference] {
        println!(
            "  {:<22} {:>10.1} imgs/s  {:>12.0} ns/step  {:>7.1} allocs/step",
            m.name, m.imgs_per_s, m.ns_per_step, m.allocs_per_step
        );
    }
    println!("  speedup (optimized / reference): {speedup:.2}x");

    let json = format!
        ("{{\n  \"bench\": \"BENCH_step\",\n  \"batch\": {BATCH},\n  \"steps\": {MEASURE_STEPS},\n  \"threads\": {},\n  \"variants\": [\n{},\n{}\n  ],\n  \"speedup\": {speedup:.3}\n}}\n",
        rayon::current_num_threads(),
        json_entry(&optimized),
        json_entry(&reference),
    );
    std::fs::write("BENCH_step.json", &json).expect("write BENCH_step.json");
    println!("  wrote BENCH_step.json");

    assert!(
        speedup >= 2.0,
        "perf target missed: optimized path is only {speedup:.2}x the reference (target 2.0x)"
    );
}
