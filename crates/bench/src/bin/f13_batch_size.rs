//! F13 — per-GPU batch-size sensitivity: why the paper's workload is
//! communication-bound.
//!
//! Segmentation at 513² forces small per-GPU batches (memory), which
//! shrinks the backward-pass overlap budget. This sweep shows the whole
//! default-vs-tuned gap collapsing as the batch grows — locating the
//! regime in which the paper's tuning matters.

use bench::{
    default_candidate, header, paper_machine, paper_model, tuned_candidate, v100, SEED, SIM_STEPS,
};
use horovod::StepSim;
use summit_metrics::Table;

fn main() {
    header("F13", "Per-GPU batch-size sensitivity (132 GPUs)", "regime analysis");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let n = 132;

    let mut t = Table::new(
        "weak-scaling efficiency at 132 GPUs by per-GPU batch",
        &["batch/GPU", "default eff", "tuned eff", "gap (pts)", "tuned speedup"],
    );
    for bs in [1usize, 2, 4, 8] {
        let run = |c: tuner::Candidate| {
            StepSim::new(&machine, c.backend.profile(), c.config, &model, &gpu, bs, n, SEED)
                .simulate_training(SIM_STEPS)
        };
        let d = run(default_candidate());
        let tu = run(tuned_candidate());
        t.row(&[
            bs.to_string(),
            format!("{:.1}%", d.efficiency * 100.0),
            format!("{:.1}%", tu.efficiency * 100.0),
            format!("{:.1}", (tu.efficiency - d.efficiency) * 100.0),
            format!("{:.2}x", tu.throughput / d.throughput),
        ]);
    }
    t.print();
    println!(
        "Shape: at batch 1 the gap is the paper's ~24 points; by batch 4-8 the\n\
         longer backward pass hides even the default backend's communication\n\
         and the gap closes — tuning matters exactly when memory limits force\n\
         small per-GPU batches, as 513x513 segmentation does."
    );
}
