//! A10 — ablation: backward/allreduce overlap on vs off.
//!
//! Horovod's central performance idea is hiding communication under the
//! backward pass. "Overlap off" is computed from the same step breakdown
//! by serializing: step = compute + full comm-stream busy time.

use bench::{header, paper_machine, paper_model, tuned_candidate, v100, BATCH_PER_GPU, SEED};
use horovod::StepSim;
use summit_metrics::Table;
use trainer::paper_gpu_counts;

fn main() {
    header("A10", "Compute/communication overlap ablation", "design-choice ablation");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let cand = tuned_candidate();

    let mut t = Table::new(
        "tuned configuration, batch 1/GPU",
        &[
            "GPUs",
            "comm busy (ms)",
            "exposed w/ overlap (ms)",
            "overlap img/s",
            "no-overlap img/s",
            "overlap gain",
        ],
    );
    for n in paper_gpu_counts() {
        let sim = StepSim::new(
            &machine,
            cand.backend.profile(),
            cand.config.clone(),
            &model,
            &gpu,
            BATCH_PER_GPU,
            n,
            SEED,
        );
        let steps: Vec<_> = (0..5).map(|s| sim.simulate_step(s, None)).collect();
        let mean = |f: &dyn Fn(&horovod::StepBreakdown) -> f64| {
            steps.iter().map(f).sum::<f64>() / steps.len() as f64
        };
        let step_time = mean(&|b| b.step_time);
        let compute = mean(&|b| b.compute_time);
        let comm = mean(&|b| b.comm_busy);
        let exposed = mean(&|b| b.exposed_comm);
        let overlap_thr = n as f64 * BATCH_PER_GPU as f64 / step_time;
        let serial_thr = n as f64 * BATCH_PER_GPU as f64 / (compute + comm);
        t.row(&[
            n.to_string(),
            format!("{:.1}", comm * 1e3),
            format!("{:.1}", exposed * 1e3),
            format!("{overlap_thr:.1}"),
            format!("{serial_thr:.1}"),
            format!("{:.2}x", overlap_thr / serial_thr),
        ]);
    }
    t.print();
    println!(
        "Shape: the comm stream hides almost entirely under the backward\n\
         pass at every scale (sub-ms exposed), so serializing it instead\n\
         would cost 1.2-1.6x throughput — without overlap the tuned\n\
         configuration would not reach near-linear scaling either."
    );
}
