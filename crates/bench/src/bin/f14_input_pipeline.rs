//! F14 — input-pipeline sensitivity: GPFS reads + CPU decode feeding the
//! GPUs.
//!
//! A tuned communication stack is wasted if the data loader cannot keep
//! up. This sweep varies loader workers per node (and prefetch) under
//! the tuned 96-GPU configuration.

use bench::{header, paper_machine, paper_model, tuned_candidate, v100, SEED, SIM_STEPS};
use horovod::StepSim;
use summit_metrics::Table;
use trainer::input::InputPipeline;

fn main() {
    header("F14", "Input-pipeline sensitivity (96 GPUs, tuned config)", "substrate study");
    let machine = paper_machine();
    let model = paper_model();
    let gpu = v100();
    let (n, bs) = (96usize, 2usize);
    let cand = tuned_candidate();

    let train = StepSim::new(
        &machine,
        cand.backend.profile(),
        cand.config.clone(),
        &model,
        &gpu,
        bs,
        n,
        SEED,
    )
    .simulate_training(SIM_STEPS);
    let train_step = train.mean_step_time;
    let images_per_node = machine.config.gpus_per_node * bs;
    println!(
        "train step (compute+comm): {:.1} ms; {} images/node/step\n",
        train_step * 1e3,
        images_per_node
    );

    let mut t = Table::new(
        "effective throughput by loader workers per node",
        &["workers", "prefetch", "input (ms)", "effective img/s", "input-bound?"],
    );
    for &workers in &[1usize, 2, 4, 8, 16] {
        for prefetch in [true, false] {
            let pipe =
                InputPipeline { cpu_workers: workers, prefetch, ..InputPipeline::summit_voc() };
            let eff_step = pipe.effective_step_time(train_step, images_per_node);
            t.row(&[
                workers.to_string(),
                if prefetch { "on" } else { "off" }.to_string(),
                format!("{:.1}", pipe.input_step_time(images_per_node) * 1e3),
                format!("{:.1}", n as f64 * bs as f64 / eff_step),
                if pipe.input_bound(train_step, images_per_node) { "YES" } else { "no" }
                    .to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "Shape: below ~2 loader workers/node the pipeline, not the network,\n\
         bounds training; with prefetch and >=4 workers the input is fully\n\
         hidden — the precondition all the scaling results above assume."
    );
}
