//! Criterion benchmarks of the real numerical training path: forward,
//! forward+backward, and a full data-parallel step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use collectives::Algorithm;
use trainer::real::{generate, train, DataConfig, NetConfig, SegNet, TrainConfig};

fn bench_net(c: &mut Criterion) {
    let data = DataConfig::default();
    let cfg = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    let net = SegNet::new(cfg, 42);
    let sample = generate(&data, 42, 0);
    c.bench_function("segnet_forward_24x24", |b| {
        b.iter(|| black_box(net.forward_logits(&sample.pixels)));
    });
    c.bench_function("segnet_loss_grad_24x24", |b| {
        b.iter(|| black_box(net.loss_grad(&sample)));
    });
}

fn bench_parallel_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataparallel_train");
    g.sample_size(10);
    for workers in [1usize, 4] {
        g.bench_function(format!("{workers}workers_5steps"), |b| {
            b.iter(|| {
                let mut cfg = TrainConfig::quick(workers);
                cfg.steps = 5;
                cfg.algo = Algorithm::Ring;
                black_box(train(&cfg))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_net, bench_parallel_step);
criterion_main!(benches);
