//! Criterion benchmarks of the Horovod step simulation — the inner loop
//! of every scaling sweep and tuning run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlmodels::{deeplab_paper, GpuModel};
use horovod::{HorovodConfig, StepSim};
use mpi_profiles::Backend;
use summit_sim::{Machine, MachineConfig};

fn bench_step_by_backend(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::summit_for_gpus(96));
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    let mut g = c.benchmark_group("stepsim_96gpus");
    g.sample_size(10);
    for backend in Backend::all() {
        let sim = StepSim::new(
            &machine,
            backend.profile(),
            HorovodConfig::default(),
            &model,
            &gpu,
            1,
            96,
            42,
        );
        // Warm the allreduce-oracle cache so the bench measures the
        // steady-state sweep cost.
        sim.simulate_step(0, None);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{backend:?}")), &sim, |b, sim| {
            b.iter(|| black_box(sim.simulate_step(1, None)));
        });
    }
    g.finish();
}

fn bench_emission_schedule(c: &mut Criterion) {
    let model = deeplab_paper();
    let gpu = GpuModel::v100();
    c.bench_function("emission_schedule_dlv3plus", |b| {
        b.iter(|| black_box(dlmodels::EmissionSchedule::build(&model, &gpu, 8)));
    });
}

criterion_group!(benches, bench_step_by_backend, bench_emission_schedule);
criterion_main!(benches);
