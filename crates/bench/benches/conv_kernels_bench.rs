//! Criterion benchmarks of the convolution kernels: the cache-blocked
//! im2col + tiled-matmul path against the retained naive reference, at
//! the SegNet layer shapes and at a larger feature map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use trainer::real::net::{
    conv_backward, conv_forward, im2col_len, reference_conv_backward, reference_conv_forward,
};

/// (label, h, w, cin, cout, k) — layers 1 and 2 of the default net plus
/// a 64×64 map that no longer fits the smallest cache levels.
const SHAPES: [(&str, usize, usize, usize, usize, usize); 4] = [
    ("l1_24x24_3to8_k3", 24, 24, 3, 8, 3),
    ("l2_24x24_8to16_k3", 24, 24, 8, 16, 3),
    ("head_24x24_16to4_k1", 24, 24, 16, 4, 1),
    ("big_64x64_8to16_k3", 64, 64, 8, 16, 3),
];

fn det(i: usize) -> f32 {
    ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0
}

fn bench_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_forward");
    for &(label, h, w, cin, cout, k) in &SHAPES {
        let npix = h * w;
        let input: Vec<f32> = (0..cin * npix).map(det).collect();
        let weights: Vec<f32> = (0..cout * cin * k * k).map(det).collect();
        let bias: Vec<f32> = (0..cout).map(det).collect();
        let mut out = vec![0.0f32; cout * npix];
        let mut cols = vec![0.0f32; im2col_len(cin, k, npix)];
        g.bench_with_input(BenchmarkId::new("optimized", label), &(), |b, ()| {
            b.iter(|| {
                conv_forward(
                    black_box(&input),
                    cin,
                    h,
                    w,
                    &weights,
                    &bias,
                    k,
                    cout,
                    false,
                    &mut cols,
                    &mut out,
                );
                black_box(out[0])
            });
        });
        g.bench_with_input(BenchmarkId::new("reference", label), &(), |b, ()| {
            b.iter(|| {
                reference_conv_forward(
                    black_box(&input),
                    cin,
                    h,
                    w,
                    &weights,
                    &bias,
                    k,
                    cout,
                    &mut out,
                );
                black_box(out[0])
            });
        });
    }
    g.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv_backward");
    for &(label, h, w, cin, cout, k) in &SHAPES {
        let npix = h * w;
        let input: Vec<f32> = (0..cin * npix).map(det).collect();
        let weights: Vec<f32> = (0..cout * cin * k * k).map(det).collect();
        let bias: Vec<f32> = (0..cout).map(det).collect();
        let dout: Vec<f32> = (0..cout * npix).map(det).collect();
        let mut cols = vec![0.0f32; im2col_len(cin, k, npix)];
        let mut out = vec![0.0f32; cout * npix];
        conv_forward(&input, cin, h, w, &weights, &bias, k, cout, false, &mut cols, &mut out);
        let mut dcols = vec![0.0f32; cols.len()];
        let mut dw = vec![0.0f32; weights.len()];
        let mut db = vec![0.0f32; cout];
        let mut din = vec![0.0f32; input.len()];
        g.bench_with_input(BenchmarkId::new("optimized", label), &(), |b, ()| {
            b.iter(|| {
                dw.fill(0.0);
                db.fill(0.0);
                din.fill(0.0);
                conv_backward(
                    black_box(&input),
                    cin,
                    h,
                    w,
                    &weights,
                    k,
                    cout,
                    &dout,
                    &cols,
                    &mut dcols,
                    &mut dw,
                    &mut db,
                    Some(&mut din),
                );
                black_box(dw[0])
            });
        });
        g.bench_with_input(BenchmarkId::new("reference", label), &(), |b, ()| {
            b.iter(|| {
                dw.fill(0.0);
                db.fill(0.0);
                din.fill(0.0);
                reference_conv_backward(
                    black_box(&input),
                    cin,
                    h,
                    w,
                    &weights,
                    k,
                    cout,
                    &dout,
                    &mut dw,
                    &mut db,
                    Some(&mut din),
                );
                black_box(dw[0])
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
