//! Criterion benchmarks of the discrete-event core: flow churn and the
//! rank-program executor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use summit_sim::{
    DataPath, Executor, FlowNet, GpuId, Machine, MachineConfig, Op, Program, SimTime,
};

fn bench_flow_churn(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::summit(4));
    c.bench_function("flownet_1000_flow_churn", |b| {
        b.iter(|| {
            let mut net: FlowNet<u32> = FlowNet::new(&machine);
            for i in 0..1000u32 {
                let src = GpuId((i as usize) % 24);
                let dst = GpuId((i as usize + 7) % 24);
                let r = machine.route(src, dst, DataPath::Gdr);
                let f = net.start(r.links, 1e6, f64::INFINITY, i);
                if i % 2 == 0 {
                    let (t, fid) = net.next_completion().expect("flow");
                    net.advance_to(t);
                    net.finish(fid);
                    black_box(fid);
                } else {
                    black_box(f);
                }
            }
            black_box(net.n_active())
        });
    });
}

fn bench_executor_ring_round(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::summit(8));
    c.bench_function("executor_48rank_ring_round", |b| {
        b.iter(|| {
            let exec = Executor::dense(&machine, 48);
            let mut p = vec![Program::new(); 48];
            for step in 0..4u64 {
                for (r, prog) in p.iter_mut().enumerate() {
                    prog.step(vec![
                        Op::send(
                            (r + 1) % 48,
                            1 << 20,
                            step * 48 + r as u64,
                            DataPath::Gdr,
                            SimTime::ZERO,
                        ),
                        Op::recv((r + 47) % 48, step * 48 + ((r + 47) % 48) as u64),
                    ]);
                }
            }
            black_box(exec.run(p))
        });
    });
}

criterion_group!(benches, bench_flow_churn, bench_executor_ring_round);
criterion_main!(benches);
