//! Criterion microbenchmarks of the collectives layer: schedule
//! construction and simulated execution per algorithm, plus the real
//! threaded allreduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use collectives::{exec_thread, simulate_dense, Algorithm, LeaderAlgo, ReduceOp, UniformCost};
use summit_sim::{Machine, MachineConfig};

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Rabenseifner },
    ]
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_build_132ranks_16M");
    g.sample_size(20);
    for algo in algorithms() {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, algo| {
            b.iter(|| black_box(algo.build(132, 4 << 20)));
        });
    }
    g.finish();
}

fn bench_simulated_allreduce(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::summit_for_gpus(48));
    let cost = UniformCost::default();
    let mut g = c.benchmark_group("simulate_allreduce_48ranks_4MiB");
    g.sample_size(10);
    for algo in algorithms() {
        let sched = algo.build(48, 1 << 20);
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &sched, |b, s| {
            b.iter(|| black_box(simulate_dense(s, &machine, &cost)));
        });
    }
    g.finish();
}

fn bench_threaded_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_allreduce_8ranks");
    g.sample_size(10);
    for elems in [1usize << 12, 1 << 16, 1 << 20] {
        let sched = Algorithm::Ring.build(8, elems);
        g.bench_with_input(BenchmarkId::from_parameter(elems * 4), &sched, |b, s| {
            b.iter(|| {
                let mut bufs: Vec<Vec<f32>> = (0..8).map(|r| vec![r as f32; elems]).collect();
                exec_thread::allreduce(s, &mut bufs, ReduceOp::Sum).unwrap();
                black_box(bufs)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schedule_build,
    bench_simulated_allreduce,
    bench_threaded_allreduce
);
criterion_main!(benches);
