//! Criterion benchmarks of the single-worker training step: the
//! workspace-reusing optimized gradient path against the retained naive
//! reference, plus the pooled data-parallel allreduce step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use collectives::{exec_thread, Algorithm, ReduceOp};
use trainer::real::net::{BatchWorkspace, NetConfig, SegNet, Workspace};
use trainer::real::segdata::{generate_batch, DataConfig};

fn paper_cfg() -> (DataConfig, NetConfig) {
    let data = DataConfig::default();
    let cfg = NetConfig {
        height: data.height,
        width: data.width,
        cin: data.channels,
        n_classes: data.n_classes,
        ..NetConfig::default()
    };
    (data, cfg)
}

fn bench_sample_grad(c: &mut Criterion) {
    let (data, cfg) = paper_cfg();
    let net = SegNet::new(cfg, 42);
    let sample = &generate_batch(&data, 42, 0, 1)[0];
    let mut g = c.benchmark_group("sample_grad");
    let mut ws = Workspace::new(&cfg);
    let mut grad = vec![0.0f32; net.n_params()];
    g.bench_function("optimized_workspace", |b| {
        b.iter(|| {
            grad.fill(0.0);
            black_box(net.loss_grad_acc(black_box(sample), &mut ws, &mut grad))
        });
    });
    g.bench_function("optimized_allocating", |b| {
        b.iter(|| black_box(net.loss_grad(black_box(sample))));
    });
    g.bench_function("reference", |b| {
        b.iter(|| black_box(net.reference_loss_grad(black_box(sample))));
    });
    g.finish();
}

fn bench_batch_step(c: &mut Criterion) {
    let (data, cfg) = paper_cfg();
    let net = SegNet::new(cfg, 42);
    let batch = generate_batch(&data, 42, 0, 8);
    let mut g = c.benchmark_group("batch_step");
    g.sample_size(20);
    let mut bw = BatchWorkspace::new(&cfg);
    g.bench_function("batch8_workspace", |b| {
        b.iter(|| black_box(net.batch_loss_grad_ws(black_box(&batch), &mut bw)));
    });
    g.bench_function("batch8_reference", |b| {
        b.iter(|| {
            let mut loss = 0.0;
            for s in &batch {
                loss += net.reference_loss_grad(black_box(s)).0;
            }
            black_box(loss)
        });
    });
    g.finish();
}

fn bench_gradient_allreduce(c: &mut Criterion) {
    let cfg = paper_cfg().1;
    let n_params = cfg.n_params();
    let workers = 4;
    let schedule = Algorithm::Ring.build(workers, n_params);
    let ctx = exec_thread::ExecContext::new();
    let mut g = c.benchmark_group("gradient_allreduce");
    g.sample_size(30);
    g.bench_function("ring4_pooled", |b| {
        let mut grads: Vec<Vec<f32>> = (0..workers)
            .map(|r| (0..n_params).map(|i| (r * n_params + i) as f32 * 1e-6).collect())
            .collect();
        b.iter(|| {
            ctx.allreduce(&schedule, black_box(&mut grads), ReduceOp::Average).unwrap();
            black_box(grads[0][0])
        });
    });
    g.bench_function("ring4_throwaway", |b| {
        let mut grads: Vec<Vec<f32>> = (0..workers)
            .map(|r| (0..n_params).map(|i| (r * n_params + i) as f32 * 1e-6).collect())
            .collect();
        b.iter(|| {
            exec_thread::allreduce(&schedule, black_box(&mut grads), ReduceOp::Average).unwrap();
            black_box(grads[0][0])
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sample_grad, bench_batch_step, bench_gradient_allreduce);
criterion_main!(benches);
