//! Bounded model check of the resend/ack protocol behind
//! `exec_fault` (see `crates/collectives/src/exec_fault.rs`), via the
//! vendored explicit-state checker (`vendor/interleave`).
//!
//! The model is the wire protocol distilled to its atomic actions: each
//! sender assigns consecutive sequence numbers, keeps a resend buffer of
//! sent-but-unacked payloads, and answers NACKs by re-sending the clean
//! copy; the receiver applies in sequence order, ACKs every delivery,
//! discards duplicates idempotently, and NACKs a sequence number it can
//! prove lost (sent, not applied, nothing in flight — the model's
//! timeout). An adversary drops and duplicates in-flight payloads under
//! a bounded budget.
//!
//! Checked exhaustively over every interleaving:
//!
//! * **No duplicate apply** — no payload is ever combined into the
//!   destination twice (gradient corruption).
//! * **No lost gradient** — every payload the protocol claims finished
//!   was applied exactly once; a silently lost payload shows up as a
//!   deadlock (the receiver can never complete), which the checker
//!   reports with a minimal schedule.
//!
//! Two mutants must be *refuted*: a sender that ignores NACKs
//! (drop-without-retry ⇒ deadlock under loss) and a receiver that
//! applies duplicates (⇒ invariant violation under duplication).

use interleave::{check, Model, Options, Step, Verdict};

/// Payloads per sender lane. Two is enough to exercise ordering,
/// dedup, and the resend buffer holding several entries.
const M: u8 = 2;

/// Full protocol state: wire + control queues plus every agent's
/// locals. One "lane" per sender; the receiver handles lanes
/// independently (per-peer sequence tracking, as in the executor).
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct St {
    /// In-flight payload seqs per lane, FIFO.
    wire: Vec<Vec<u8>>,
    /// ACKed seqs travelling back per lane, FIFO.
    acks: Vec<Vec<u8>>,
    /// NACKed seqs travelling back per lane, FIFO.
    nacks: Vec<Vec<u8>>,
    /// Next seq each sender will send.
    next: Vec<u8>,
    /// Sent-but-unacked seqs per lane (the resend buffer).
    pending: Vec<Vec<u8>>,
    /// Receiver's next expected seq per lane.
    expected: Vec<u8>,
    /// Times each (lane, seq) payload was applied.
    applied: Vec<[u8; M as usize]>,
    /// Remaining adversary budgets.
    drops: u8,
    dups: u8,
}

/// The protocol (or a mutant of it) under bounded adversarial faults.
struct ResendModel {
    senders: usize,
    drops: u8,
    dups: u8,
    /// false ⇒ the drop-without-retry mutant: NACKs are ignored.
    retry: bool,
    /// false ⇒ the no-dedup mutant: duplicates are applied again.
    dedup: bool,
}

impl ResendModel {
    fn correct(senders: usize, drops: u8, dups: u8) -> Self {
        ResendModel { senders, drops, dups, retry: true, dedup: true }
    }
}

impl Model for ResendModel {
    type State = St;

    fn initial(&self) -> St {
        let n = self.senders;
        St {
            wire: vec![Vec::new(); n],
            acks: vec![Vec::new(); n],
            nacks: vec![Vec::new(); n],
            next: vec![0; n],
            pending: vec![Vec::new(); n],
            expected: vec![0; n],
            applied: vec![[0; M as usize]; n],
            drops: self.drops,
            dups: self.dups,
        }
    }

    /// Per lane: sender, receiver, dropper, duplicator.
    fn n_threads(&self) -> usize {
        self.senders * 4
    }

    fn step(&self, s: &St, tid: usize) -> Step<St> {
        let lane = tid % self.senders;
        let mut st = s.clone();
        match tid / self.senders {
            // Sender: service ctl traffic first, then send fresh seqs,
            // then wait for the resend buffer to drain.
            0 => {
                if let Some(a) = take_front(&mut st.acks[lane]) {
                    st.pending[lane].retain(|&q| q != a);
                    Step::Ready(st)
                } else if let Some(q) = take_front(&mut st.nacks[lane]) {
                    if self.retry && st.pending[lane].contains(&q) {
                        st.wire[lane].push(q); // resend the clean copy
                    }
                    Step::Ready(st)
                } else if st.next[lane] < M {
                    let q = st.next[lane];
                    st.wire[lane].push(q);
                    st.pending[lane].push(q);
                    st.next[lane] += 1;
                    Step::Ready(st)
                } else if st.pending[lane].is_empty() {
                    Step::Done
                } else {
                    Step::Blocked // awaiting acks
                }
            }
            // Receiver (per-peer loop): apply in order, ack everything,
            // drop duplicates, nack provable losses.
            1 => {
                if let Some(q) = take_front(&mut st.wire[lane]) {
                    if q == st.expected[lane] {
                        st.applied[lane][q as usize] += 1;
                        st.expected[lane] += 1;
                        st.acks[lane].push(q);
                    } else if q < st.expected[lane] {
                        // Duplicate: idempotent discard, re-ack so the
                        // sender's resend buffer still drains.
                        if !self.dedup {
                            st.applied[lane][q as usize] += 1; // mutant
                        }
                        st.acks[lane].push(q);
                    }
                    return Step::Ready(st);
                }
                let e = st.expected[lane];
                if e < M {
                    // Timeout model: `e` was sent, is not applied, and
                    // nothing is in flight ⇒ it was dropped. One
                    // outstanding NACK per lane, like one pending
                    // deadline per blocked receive.
                    let lost = st.pending[lane].contains(&e) && st.nacks[lane].is_empty();
                    if self.retry && lost {
                        st.nacks[lane].push(e);
                        return Step::Ready(st);
                    }
                    return Step::Blocked;
                }
                Step::Done
            }
            // Dropper: consume an in-flight payload, within budget.
            2 => {
                if st.drops > 0 && !st.wire[lane].is_empty() {
                    st.wire[lane].remove(0);
                    st.drops -= 1;
                    Step::Ready(st)
                } else {
                    Step::Done
                }
            }
            // Duplicator: re-deliver the oldest in-flight payload
            // behind itself, within budget.
            _ => {
                if st.dups > 0 && !st.wire[lane].is_empty() {
                    let q = st.wire[lane][0];
                    st.wire[lane].push(q);
                    st.dups -= 1;
                    Step::Ready(st)
                } else {
                    Step::Done
                }
            }
        }
    }

    fn invariant(&self, s: &St) -> Result<(), String> {
        for lane in 0..self.senders {
            for (q, &n) in s.applied[lane].iter().enumerate() {
                if n > 1 {
                    return Err(format!("lane {lane} seq {q} applied {n} times"));
                }
                // Everything the receiver has moved past must be in.
                if (q as u8) < s.expected[lane] && n != 1 {
                    return Err(format!("lane {lane} seq {q} passed but applied {n} times"));
                }
            }
        }
        Ok(())
    }
}

fn take_front(q: &mut Vec<u8>) -> Option<u8> {
    if q.is_empty() {
        None
    } else {
        Some(q.remove(0))
    }
}

#[test]
fn two_rank_protocol_survives_drops_and_duplicates_exhaustively() {
    // One sender→receiver pair (2 ranks), 2 payloads, 2 drops + 1
    // duplication for the adversary: every interleaving must deliver
    // both payloads exactly once with no deadlock.
    let m = ResendModel::correct(1, 2, 1);
    let report = check(&m, Options::default()).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.states > 100, "adversary actually explored: {report:?}");
    assert!(report.depth >= 2 * M as usize, "{report:?}");
}

#[test]
fn three_rank_protocol_keeps_lanes_independent() {
    // Two senders feeding one receiver (3 ranks): per-peer sequence
    // tracking must keep the lanes from corrupting each other while
    // the shared adversary budget roams across both.
    let m = ResendModel::correct(2, 1, 1);
    let report = check(&m, Options::default()).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.states > 1_000, "cross-lane space explored: {report:?}");
}

#[test]
fn fault_free_run_has_no_protocol_overhead_states() {
    // With no adversary budget the protocol is just FIFO delivery; it
    // must still pass, with a far smaller state space.
    let quiet = check(&ResendModel::correct(1, 0, 0), Options::default()).unwrap();
    let noisy = check(&ResendModel::correct(1, 2, 1), Options::default()).unwrap();
    assert!(quiet.states < noisy.states, "{quiet:?} vs {noisy:?}");
}

#[test]
fn drop_without_retry_mutant_is_refuted() {
    // Sender that ignores NACKs: a single dropped payload must wedge
    // the collective — the checker finds the deadlock schedule.
    let mutant = ResendModel { retry: false, ..ResendModel::correct(1, 1, 0) };
    match check(&mutant, Options::default()) {
        Err(Verdict::Deadlock { schedule, state }) => {
            assert!(!schedule.is_empty());
            assert!(state.expected[0] < M, "receiver is stuck short of completion: {state:?}");
        }
        other => panic!("drop-without-retry must deadlock, got {other:?}"),
    }
}

#[test]
fn apply_without_dedup_mutant_is_refuted() {
    // Receiver that applies duplicates: one duplicated payload must
    // violate the exactly-once invariant.
    let mutant = ResendModel { dedup: false, ..ResendModel::correct(1, 0, 1) };
    match check(&mutant, Options::default()) {
        Err(Verdict::InvariantViolated { reason, .. }) => {
            assert!(reason.contains("applied 2 times"), "{reason}");
        }
        other => panic!("no-dedup must violate exactly-once, got {other:?}"),
    }
}
