//! Verifier edge cases: degenerate configurations every generator must
//! survive, plus property tests over the awkward corners (single rank,
//! non-power-of-two rank counts, zero-length tensors, tiny tensors
//! forcing empty segments).

use collectives::{Algorithm, LeaderAlgo, Schedule};
use proptest::prelude::*;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::Tree,
        Algorithm::Hierarchical { per_node: 3, leader: LeaderAlgo::Ring },
        Algorithm::Hierarchical { per_node: 4, leader: LeaderAlgo::Rabenseifner },
        Algorithm::ChunkedRing { chunks: 3 },
        Algorithm::HierarchicalRsag { per_node: 3 },
    ]
}

fn assert_clean(s: &Schedule, ctx: &str) {
    s.verify_allreduce().unwrap_or_else(|violations| {
        panic!("{ctx}: schedule failed full verification: {violations:#?}")
    });
}

#[test]
fn single_rank_schedules_verify() {
    for algo in all_algorithms() {
        for e in [0usize, 1, 7, 100] {
            assert_clean(&algo.build(1, e), &format!("{algo} n=1 e={e}"));
        }
    }
}

#[test]
fn zero_length_tensors_verify() {
    for algo in all_algorithms() {
        for n in 1usize..=9 {
            assert_clean(&algo.build(n, 0), &format!("{algo} n={n} e=0"));
        }
    }
}

#[test]
fn non_power_of_two_rd_and_rabenseifner_verify() {
    // These two algorithms fold to a power-of-two core; the fold/unfold
    // RecvReplace traffic is where coverage and matching bugs would
    // hide.
    for algo in [Algorithm::RecursiveDoubling, Algorithm::Rabenseifner] {
        for n in [3usize, 5, 6, 7, 9, 11, 12, 13, 15, 17, 33] {
            for e in [1usize, 2, 31, 64] {
                assert_clean(&algo.build(n, e), &format!("{algo} n={n} e={e}"));
            }
        }
    }
}

#[test]
fn fewer_elements_than_ranks_verify() {
    // Partitioned algorithms degrade to zero-length segments when
    // e < n; the verifier must accept empty segments without tripping
    // coverage or overlap rules.
    for algo in all_algorithms() {
        for n in [4usize, 6, 8, 13] {
            for e in [1usize, 2, 3] {
                assert_clean(&algo.build(n, e), &format!("{algo} n={n} e={e}"));
            }
        }
    }
}

#[test]
fn fingerprint_distinguishes_algorithms_and_sizes() {
    // The determinism fingerprint is over per-rank combine sequences:
    // distinct algorithms (or sizes) at n >= 4 must not collide, and
    // repeated builds must agree.
    let n = 8;
    let e = 64;
    let mut seen = std::collections::HashMap::new();
    for algo in all_algorithms() {
        let fp = algo.build(n, e).combine_order_fingerprint();
        assert_eq!(fp, algo.build(n, e).combine_order_fingerprint(), "{algo} not stable");
        if let Some(prev) = seen.insert(fp, algo) {
            // Hierarchical variants may legitimately coincide if their
            // leader stages coincide; anything else is suspicious.
            panic!("fingerprint collision between {prev} and {algo}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degenerate corner sweep: every generator on every (n, e) with
    /// tiny e relative to n passes the full allreduce verification.
    #[test]
    fn tiny_tensor_corner_sweep(
        n in 1usize..16,
        e in 0usize..6,
    ) {
        for algo in all_algorithms() {
            let s = algo.build(n, e);
            prop_assert_eq!(s.verify_allreduce(), Ok(()), "{} n={} e={}", algo, n, e);
        }
    }

    /// Verification is invariant under cloning (no hidden state).
    #[test]
    fn verification_is_pure(
        n in 1usize..12,
        e in 0usize..40,
    ) {
        let s = Algorithm::Rabenseifner.build(n, e);
        let c = s.clone();
        prop_assert_eq!(s.verify_allreduce(), c.verify_allreduce());
        prop_assert_eq!(s.combine_order_fingerprint(), c.combine_order_fingerprint());
    }
}
