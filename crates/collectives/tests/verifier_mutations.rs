//! Mutation tests: hand-corrupt known-good schedules and assert the
//! verifier trips the *specific* rule each corruption violates. This is
//! the evidence that every diagnostic is reachable — a verifier that
//! accepts everything would pass the generator tests too.

use collectives::{Action, Algorithm, Rule, Schedule, Seg};

/// Rules tripped by full allreduce verification of `s`.
fn rules_allreduce(s: &Schedule) -> Vec<Rule> {
    match s.verify_allreduce() {
        Ok(()) => Vec::new(),
        Err(violations) => violations.iter().map(|v| v.rule).collect(),
    }
}

/// Rules tripped by universal (`validate`) verification of `s`.
fn rules_universal(s: &Schedule) -> Vec<Rule> {
    match s.validate() {
        Ok(()) => Vec::new(),
        Err(violations) => violations.iter().map(|v| v.rule).collect(),
    }
}

fn base() -> Schedule {
    let s = Algorithm::Ring.build(4, 16);
    assert_eq!(s.verify_allreduce(), Ok(()), "baseline must be clean");
    s
}

#[test]
fn dropped_send_trips_unmatched_recv() {
    let mut s = base();
    // Remove rank 2's send in round 1: its receiver still expects it.
    let pos = s.rounds[1].per_rank[2]
        .iter()
        .position(|a| a.is_send())
        .expect("ring rank has a send per round");
    s.rounds[1].per_rank[2].remove(pos);
    assert!(rules_universal(&s).contains(&Rule::UnmatchedRecv), "{:?}", rules_universal(&s));
}

#[test]
fn dropped_recv_trips_unmatched_send() {
    let mut s = base();
    s.rounds[0].per_rank[1].retain(|a| a.is_send());
    assert!(rules_universal(&s).contains(&Rule::UnmatchedSend), "{:?}", rules_universal(&s));
}

#[test]
fn segment_mismatch_is_caught() {
    let mut s = base();
    // Shrink the segment of one receive so it disagrees with the send.
    for a in s.rounds[0].per_rank.iter_mut().flatten() {
        if let Action::RecvReduce { seg, .. } = a {
            seg.len -= 1;
            break;
        }
    }
    assert!(rules_universal(&s).contains(&Rule::SegMismatch), "{:?}", rules_universal(&s));
}

#[test]
fn duplicate_pair_is_caught() {
    let mut s = base();
    // Duplicate one rank's send: two messages for the same ordered
    // pair in one round.
    let dup = *s.rounds[0].per_rank[0]
        .iter()
        .find(|a| a.is_send())
        .expect("ring rank 0 sends in round 0");
    s.rounds[0].per_rank[0].push(dup);
    assert!(rules_universal(&s).contains(&Rule::DuplicatePair), "{:?}", rules_universal(&s));
}

#[test]
fn self_message_is_caught() {
    let mut s = base();
    s.rounds[0].per_rank[3].push(Action::Send { peer: 3, seg: Seg::new(0, 4) });
    assert!(rules_universal(&s).contains(&Rule::SelfMessage), "{:?}", rules_universal(&s));
}

#[test]
fn out_of_range_peer_and_segment_are_caught() {
    let mut s = base();
    s.rounds[0].per_rank[0].push(Action::Send { peer: 9, seg: Seg::new(0, 4) });
    assert!(rules_universal(&s).contains(&Rule::RankOutOfRange), "{:?}", rules_universal(&s));

    let mut s = base();
    // A matched exchange whose segment runs past the tensor.
    s.rounds[0].per_rank[0].push(Action::Send { peer: 1, seg: Seg::new(12, 8) });
    s.rounds[0].per_rank[1].push(Action::RecvReduce { peer: 0, seg: Seg::new(12, 8) });
    assert!(rules_universal(&s).contains(&Rule::SegOutOfRange), "{:?}", rules_universal(&s));
}

#[test]
fn wrong_rank_count_is_caught() {
    let mut s = base();
    s.rounds[0].per_rank.pop();
    assert!(rules_universal(&s).contains(&Rule::WrongRankCount), "{:?}", rules_universal(&s));
}

#[test]
fn repeated_exchange_round_trips_double_contribution() {
    // Duplicate an early reduce-scatter round of the ring: the same
    // partial sums flow twice, so some rank combines a contribution it
    // already holds. Structurally legal — only the coverage dataflow
    // sees it.
    let mut s = base();
    let dup = s.rounds[0].clone();
    s.rounds.insert(1, dup);
    assert_eq!(s.validate(), Ok(()), "mutation must stay structurally clean");
    assert!(rules_allreduce(&s).contains(&Rule::DoubleContribution), "{:?}", rules_allreduce(&s));
}

#[test]
fn truncated_schedule_trips_missing_contribution() {
    // Drop the final allgather round: every rank still lacks some
    // peer's contribution on part of the tensor.
    let mut s = base();
    s.rounds.pop();
    assert_eq!(s.validate(), Ok(()), "mutation must stay structurally clean");
    assert!(rules_allreduce(&s).contains(&Rule::MissingContribution), "{:?}", rules_allreduce(&s));
}

#[test]
fn recv_before_send_on_both_sides_trips_deadlock_cycle() {
    // Build a 2-rank exchange where each rank's receive precedes its
    // send in the action list: under in-order issue each rank waits for
    // the other's send forever.
    let mut s = Schedule::new(2, 8);
    s.rounds.push(collectives::Round {
        per_rank: vec![
            vec![
                Action::RecvReduce { peer: 1, seg: Seg::new(4, 4) },
                Action::Send { peer: 1, seg: Seg::new(0, 4) },
            ],
            vec![
                Action::RecvReduce { peer: 0, seg: Seg::new(0, 4) },
                Action::Send { peer: 0, seg: Seg::new(4, 4) },
            ],
        ],
    });
    assert!(rules_universal(&s).contains(&Rule::DeadlockCycle), "{:?}", rules_universal(&s));
}

#[test]
fn overlapping_recv_segments_trip_determinism_rule() {
    // Two same-round receives into overlapping ranges of one rank: the
    // combine result would depend on message arrival order.
    let mut s = Schedule::new(3, 8);
    s.rounds.push(collectives::Round {
        per_rank: vec![
            vec![
                Action::RecvReduce { peer: 1, seg: Seg::new(0, 6) },
                Action::RecvReduce { peer: 2, seg: Seg::new(4, 4) },
            ],
            vec![Action::Send { peer: 0, seg: Seg::new(0, 6) }],
            vec![Action::Send { peer: 0, seg: Seg::new(4, 4) }],
        ],
    });
    assert!(
        rules_universal(&s).contains(&Rule::OverlappingRecvSegments),
        "{:?}",
        rules_universal(&s)
    );
}

#[test]
fn swapped_rounds_violate_coverage() {
    // Reversing the ring's round order is structurally fine (every
    // round is matched in isolation) but the dataflow no longer
    // assembles full sums everywhere.
    let mut s = base();
    s.rounds.reverse();
    let rules = rules_allreduce(&s);
    assert!(
        rules.contains(&Rule::MissingContribution) || rules.contains(&Rule::DoubleContribution),
        "reversed ring must break coverage: {rules:?}"
    );
}

#[test]
fn violations_name_the_culprit_ranks_and_round() {
    let mut s = base();
    s.rounds[1].per_rank[2].retain(|a| !a.is_send());
    let violations = s.validate().expect_err("dropped send must be caught");
    let v = violations
        .iter()
        .find(|v| v.rule == Rule::UnmatchedRecv)
        .expect("an UnmatchedRecv violation");
    assert_eq!(v.round, Some(1));
    assert!(v.ranks.contains(&2), "sender rank 2 must be named: {v:?}");
    let rendered = v.to_string();
    assert!(rendered.contains("unmatched-recv"), "{rendered}");
}
