//! Bounded interleaving model checking of the threaded executor's
//! concurrency protocols, via the vendored `interleave` explicit-state
//! checker (`vendor/interleave`).
//!
//! Three families of models:
//!
//! 1. [`PoolModel`] — the `exec_thread::PayloadPool` acquire/release
//!    protocol, checked exhaustively on 2- and 3-thread configurations.
//!    Buggy variants (double release, lost buffer) that the checker
//!    must refute prove the harness is not vacuous.
//! 2. [`HintModel`] — the pool's capacity-hint counter: the real
//!    single-step `fetch_max` passes every interleaving; a racy
//!    load-compare-store version is caught losing an update.
//! 3. [`ExecModel`] — real generated schedules (ring, recursive
//!    doubling, chunked ring; 2–3 ranks) executed over per-pair FIFO
//!    queues with small integer buffers. Every interleaving must be
//!    deadlock-free, drain every channel, and end with every rank
//!    holding the exact element-wise sums. A recv-before-send mutant
//!    shows the checker genuinely finds executor deadlocks.

use collectives::{Action, Algorithm, Schedule};
use interleave::{check, replay, Model, Options, Step, Verdict};

// ---------------------------------------------------------------------
// 1. PayloadPool acquire/release
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum PoolBug {
    None,
    /// Thread 0 keeps a stale handle after its final release and pushes
    /// it to the free list a second time.
    DoubleRelease,
    /// Thread 0 drops its buffer on the floor instead of releasing it
    /// on the final iteration.
    LostBuffer,
}

/// Faithful abstraction of `PayloadPool`: each thread loops `iters`
/// times over { acquire, release }. Acquire is one atomic step (the
/// real pool holds the mutex across `free.pop()`, minting a fresh
/// buffer only when the pool is dry); release is one atomic step
/// (`free.push`). Buffers are ids; `fresh` counts minted ids exactly
/// like the pool's allocation counter.
struct PoolModel {
    threads: usize,
    iters: u8,
    bug: PoolBug,
}

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct PoolState {
    /// Free-list stack of buffer ids.
    free: Vec<u8>,
    /// The buffer each thread currently owns, if any.
    held: Vec<Option<u8>>,
    /// Ids minted so far (the allocation counter).
    fresh: u8,
    /// Per-thread step counter: even = acquire next, odd = release next.
    pc: Vec<u8>,
    /// Stale handle kept by the double-release bug.
    stale: Option<u8>,
}

impl PoolModel {
    fn steps_for(&self, tid: usize) -> u8 {
        let base = 2 * self.iters;
        if tid == 0 && self.bug == PoolBug::DoubleRelease {
            base + 1
        } else {
            base
        }
    }
}

impl Model for PoolModel {
    type State = PoolState;

    fn initial(&self) -> PoolState {
        PoolState {
            free: Vec::new(),
            held: vec![None; self.threads],
            fresh: 0,
            pc: vec![0; self.threads],
            stale: None,
        }
    }

    fn n_threads(&self) -> usize {
        self.threads
    }

    fn step(&self, s: &PoolState, tid: usize) -> Step<PoolState> {
        let pc = s.pc[tid];
        if pc >= self.steps_for(tid) {
            return Step::Done;
        }
        let mut st = s.clone();
        st.pc[tid] += 1;
        if pc == 2 * self.iters {
            // Double-release epilogue: push the stale handle again.
            st.free.push(st.stale.expect("stale handle recorded at final release"));
            return Step::Ready(st);
        }
        if pc.is_multiple_of(2) {
            // Acquire: pop the free list or mint a fresh id.
            let id = match st.free.pop() {
                Some(id) => id,
                None => {
                    let id = st.fresh;
                    st.fresh += 1;
                    id
                }
            };
            st.held[tid] = Some(id);
        } else {
            // Release.
            let id = st.held[tid].take().expect("release without a held buffer");
            let last = pc == 2 * self.iters - 1;
            match self.bug {
                PoolBug::LostBuffer if tid == 0 && last => {} // dropped on the floor
                PoolBug::DoubleRelease if tid == 0 && last => {
                    st.free.push(id);
                    st.stale = Some(id);
                }
                _ => st.free.push(id),
            }
        }
        Step::Ready(st)
    }

    fn invariant(&self, s: &PoolState) -> Result<(), String> {
        // No id may appear twice across the free list and all holders.
        let mut seen = std::collections::HashSet::new();
        for &id in &s.free {
            if !seen.insert(id) {
                return Err(format!("buffer {id} appears twice in the free list"));
            }
        }
        for (tid, held) in s.held.iter().enumerate() {
            if let Some(id) = held {
                if !seen.insert(*id) {
                    return Err(format!("buffer {id} owned twice (thread {tid} vs pool/peer)"));
                }
            }
        }
        // Conservation: every minted buffer is either free or held.
        let accounted = s.free.len() + s.held.iter().flatten().count();
        if accounted != s.fresh as usize {
            return Err(format!("{} buffers minted but {accounted} accounted for", s.fresh));
        }
        // Termination: everything returns to the pool.
        let all_done = (0..self.threads).all(|t| s.pc[t] >= self.steps_for(t));
        if all_done && s.free.len() != s.fresh as usize {
            return Err(format!(
                "terminated with {} of {} buffers in the pool",
                s.free.len(),
                s.fresh
            ));
        }
        Ok(())
    }
}

#[test]
fn pool_protocol_two_threads_exhaustive() {
    let r = check(&PoolModel { threads: 2, iters: 3, bug: PoolBug::None }, Options::default())
        .unwrap_or_else(|v| panic!("pool protocol refuted: {v}"));
    assert!(r.states > 10, "exploration must be non-trivial ({} states)", r.states);
}

#[test]
fn pool_protocol_three_threads_exhaustive() {
    let r = check(&PoolModel { threads: 3, iters: 2, bug: PoolBug::None }, Options::default())
        .unwrap_or_else(|v| panic!("pool protocol refuted: {v}"));
    assert!(r.states > 50, "exploration must be non-trivial ({} states)", r.states);
}

#[test]
fn pool_double_release_is_caught() {
    let model = PoolModel { threads: 2, iters: 1, bug: PoolBug::DoubleRelease };
    match check(&model, Options::default()) {
        Err(Verdict::InvariantViolated { schedule, state, reason }) => {
            assert!(
                reason.contains("twice") || reason.contains("accounted"),
                "unexpected reason: {reason}"
            );
            // The counterexample replays to the same violating state.
            let states = replay(&model, &schedule);
            assert_eq!(states.last(), Some(&state));
        }
        other => panic!("double release must violate an invariant, got {other:?}"),
    }
}

#[test]
fn pool_lost_buffer_is_caught() {
    let model = PoolModel { threads: 2, iters: 2, bug: PoolBug::LostBuffer };
    match check(&model, Options::default()) {
        Err(Verdict::InvariantViolated { reason, .. }) => {
            assert!(reason.contains("accounted"), "unexpected reason: {reason}");
        }
        other => panic!("lost buffer must violate conservation, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// 2. Capacity-hint counter
// ---------------------------------------------------------------------

/// The pool's `reserve_hint`: concurrent raises of a shared maximum.
/// The real code uses `AtomicUsize::fetch_max` — one atomic step. The
/// racy variant models the tempting `if hint.load() < v { store(v) }`,
/// where load and store are separate steps and a lost update lurks.
struct HintModel {
    atomic: bool,
    targets: [u8; 2],
}

/// (hint, per-thread (pc, loaded value))
type HintState = (u8, [(u8, u8); 2]);

impl Model for HintModel {
    type State = HintState;

    fn initial(&self) -> HintState {
        (0, [(0, 0); 2])
    }

    fn n_threads(&self) -> usize {
        2
    }

    fn step(&self, s: &HintState, tid: usize) -> Step<HintState> {
        let (hint, mut locals) = *s;
        let (pc, loaded) = locals[tid];
        let v = self.targets[tid];
        if self.atomic {
            match pc {
                0 => {
                    locals[tid] = (1, 0);
                    Step::Ready((hint.max(v), locals)) // fetch_max: one step
                }
                _ => Step::Done,
            }
        } else {
            match pc {
                0 => {
                    locals[tid] = (1, hint); // load
                    Step::Ready((hint, locals))
                }
                1 => {
                    locals[tid] = (2, loaded);
                    if loaded < v {
                        Step::Ready((v, locals)) // store over a stale read
                    } else {
                        Step::Ready((hint, locals))
                    }
                }
                _ => Step::Done,
            }
        }
    }

    fn invariant(&self, s: &HintState) -> Result<(), String> {
        let end_pc = if self.atomic { 1 } else { 2 };
        let all_done = s.1.iter().all(|&(pc, _)| pc >= end_pc);
        let want = self.targets[0].max(self.targets[1]);
        if all_done && s.0 != want {
            return Err(format!("hint settled at {} instead of {want}", s.0));
        }
        Ok(())
    }
}

#[test]
fn hint_fetch_max_passes_every_interleaving() {
    check(&HintModel { atomic: true, targets: [3, 5] }, Options::default())
        .unwrap_or_else(|v| panic!("fetch_max hint refuted: {v}"));
}

#[test]
fn hint_load_then_store_race_is_found() {
    match check(&HintModel { atomic: false, targets: [3, 5] }, Options::default()) {
        Err(Verdict::InvariantViolated { state, reason, .. }) => {
            assert!(reason.contains("instead of 5"), "unexpected reason: {reason}");
            assert_eq!(state.0, 3, "the larger raise must be the one lost");
        }
        other => panic!("load-then-store hint must lose an update, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// 3. Real schedules over FIFO queues
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum EKind {
    Send,
    Reduce,
    Replace,
}

#[derive(Clone, Copy, Debug)]
struct EOp {
    round: usize,
    peer: usize,
    offset: usize,
    len: usize,
    kind: EKind,
}

/// A generated [`Schedule`] compiled to per-rank atomic-op programs and
/// executed over per-ordered-pair FIFO queues, exactly mirroring
/// `exec_thread::rank_main`: per round, sends are issued first (phase
/// A snapshot semantics), then receives block in action order. Each
/// channel push/pop is one atomic step. Buffers hold small integers so
/// the final element-wise sums are exact.
struct ExecModel {
    n: usize,
    prog: Vec<Vec<EOp>>,
    init: Vec<Vec<i64>>,
    expected: Vec<i64>,
}

#[derive(Clone, Hash, PartialEq, Eq, Debug)]
struct ExecState {
    bufs: Vec<Vec<i64>>,
    /// FIFO per ordered pair: `queues[src * n + dst]`, messages are
    /// `(round, offset, payload)` as in the executor.
    queues: Vec<Vec<(usize, usize, Vec<i64>)>>,
    pc: Vec<usize>,
    /// Set when a popped message disagrees with the receiving action
    /// (wrong round, offset, or length) — must be unreachable.
    mismatch: bool,
}

impl ExecModel {
    /// Compile a schedule the way `rank_main` consumes it.
    fn from_schedule(s: &Schedule) -> Self {
        let n = s.n_ranks;
        let mut prog: Vec<Vec<EOp>> = vec![Vec::new(); n];
        for (ri, round) in s.rounds.iter().enumerate() {
            for (rank, prog_r) in prog.iter_mut().enumerate() {
                let actions = &round.per_rank[rank];
                for a in actions {
                    if let Action::Send { peer, seg } = *a {
                        prog_r.push(EOp {
                            round: ri,
                            peer,
                            offset: seg.offset,
                            len: seg.len,
                            kind: EKind::Send,
                        });
                    }
                }
                for a in actions {
                    match *a {
                        Action::Send { .. } => {}
                        Action::RecvReduce { peer, seg } => prog_r.push(EOp {
                            round: ri,
                            peer,
                            offset: seg.offset,
                            len: seg.len,
                            kind: EKind::Reduce,
                        }),
                        Action::RecvReplace { peer, seg } => prog_r.push(EOp {
                            round: ri,
                            peer,
                            offset: seg.offset,
                            len: seg.len,
                            kind: EKind::Replace,
                        }),
                    }
                }
            }
        }
        let init: Vec<Vec<i64>> = (0..n)
            .map(|r| (0..s.n_elems).map(|i| ((r * 7 + i * 3) % 11) as i64 + 1).collect())
            .collect();
        let expected = (0..s.n_elems).map(|i| init.iter().map(|b| b[i]).sum()).collect();
        ExecModel { n, prog, init, expected }
    }
}

impl Model for ExecModel {
    type State = ExecState;

    fn initial(&self) -> ExecState {
        ExecState {
            bufs: self.init.clone(),
            queues: vec![Vec::new(); self.n * self.n],
            pc: vec![0; self.n],
            mismatch: false,
        }
    }

    fn n_threads(&self) -> usize {
        self.n
    }

    fn step(&self, s: &ExecState, tid: usize) -> Step<ExecState> {
        let ops = &self.prog[tid];
        if s.pc[tid] >= ops.len() {
            return Step::Done;
        }
        let op = ops[s.pc[tid]];
        match op.kind {
            EKind::Send => {
                let mut st = s.clone();
                st.pc[tid] += 1;
                let payload = st.bufs[tid][op.offset..op.offset + op.len].to_vec();
                st.queues[tid * self.n + op.peer].push((op.round, op.offset, payload));
                Step::Ready(st)
            }
            EKind::Reduce | EKind::Replace => {
                if s.queues[op.peer * self.n + tid].is_empty() {
                    return Step::Blocked;
                }
                let mut st = s.clone();
                st.pc[tid] += 1;
                let (round, offset, payload) = st.queues[op.peer * self.n + tid].remove(0);
                if round != op.round || offset != op.offset || payload.len() != op.len {
                    st.mismatch = true;
                    return Step::Ready(st);
                }
                let dst = &mut st.bufs[tid][op.offset..op.offset + op.len];
                match op.kind {
                    EKind::Reduce => {
                        for (d, p) in dst.iter_mut().zip(&payload) {
                            *d += p;
                        }
                    }
                    EKind::Replace => dst.copy_from_slice(&payload),
                    EKind::Send => unreachable!(),
                }
                Step::Ready(st)
            }
        }
    }

    fn invariant(&self, s: &ExecState) -> Result<(), String> {
        if s.mismatch {
            return Err("received message disagrees with the scheduled action".into());
        }
        let all_done = (0..self.n).all(|r| s.pc[r] >= self.prog[r].len());
        if all_done {
            if s.queues.iter().any(|q| !q.is_empty()) {
                return Err("terminated with undrained channels".into());
            }
            for (rank, buf) in s.bufs.iter().enumerate() {
                if buf != &self.expected {
                    return Err(format!(
                        "rank {rank} ended with {buf:?}, expected {:?}",
                        self.expected
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Exhaustively check one algorithm at (n_ranks, n_elems).
fn check_schedule(algo: Algorithm, n: usize, e: usize) {
    let s = algo.build(n, e);
    let model = ExecModel::from_schedule(&s);
    let r = check(&model, Options::default())
        .unwrap_or_else(|v| panic!("{algo} n={n} e={e} refuted: {v}"));
    assert!(r.states > n, "{algo} n={n}: exploration trivial ({} states)", r.states);
}

#[test]
fn ring_schedules_exhaustively_correct() {
    check_schedule(Algorithm::Ring, 2, 2);
    check_schedule(Algorithm::Ring, 3, 3);
}

#[test]
fn chunked_ring_exhaustively_correct() {
    check_schedule(Algorithm::ChunkedRing { chunks: 2 }, 2, 4);
    check_schedule(Algorithm::ChunkedRing { chunks: 2 }, 3, 4);
}

#[test]
fn recursive_doubling_exhaustively_correct() {
    check_schedule(Algorithm::RecursiveDoubling, 2, 2);
    // Non-power-of-two: exercises the fold/unfold RecvReplace path.
    check_schedule(Algorithm::RecursiveDoubling, 3, 2);
}

#[test]
fn recv_before_send_variant_deadlocks() {
    // Round 0 is a legal send-first exchange; round 1 issues the
    // receive *before* the send on both sides — the in-order issue
    // deadlock the verifier's happens-before rule rejects statically.
    // The checker must find it dynamically.
    let op = |round, peer, kind| EOp { round, peer, offset: 0, len: 1, kind };
    let prog = vec![
        vec![
            op(0, 1, EKind::Send),
            op(0, 1, EKind::Reduce),
            op(1, 1, EKind::Reduce),
            op(1, 1, EKind::Send),
        ],
        vec![
            op(0, 0, EKind::Send),
            op(0, 0, EKind::Reduce),
            op(1, 0, EKind::Reduce),
            op(1, 0, EKind::Send),
        ],
    ];
    let model = ExecModel {
        n: 2,
        prog,
        init: vec![vec![1], vec![2]],
        expected: vec![3], // never reached
    };
    match check(&model, Options::default()) {
        Err(Verdict::Deadlock { state, .. }) => {
            assert_eq!(state.pc, vec![2, 2], "both ranks blocked at the round-1 receive");
        }
        other => panic!("recv-before-send must deadlock, got {other:?}"),
    }
}
