//! Counting-allocator proof for the socket transport: once a
//! [`SocketMesh`] is warmed up, a steady-state allreduce step over real
//! Unix-domain sockets allocates nothing — payload buffers recycle
//! through the connection pool, the frame rings and encode scratch are
//! retained, and the executor's working state is reused. The socket
//! backend may allocate only at connection setup/teardown.
//!
//! The in-process channel backend's zero-alloc story is covered by the
//! executor proofs; this test pins the harder claim for the byte-stream
//! path, where serialization buffers could easily regress into per-step
//! allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use collectives::{Algorithm, CtlSignal, PeerExecutor, ReduceOp};
use faults::RetryPolicy;
use transport::SocketMesh;

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Minimum allocation count over three runs of `f`: ambient one-time
/// noise (libtest thread parking, lazy TLS) cannot recur in all three,
/// while anything `f` itself allocates does.
fn count_allocs(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap_or(0)
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(50),
        factor: 2,
        max_attempts: 6,
        tick: Duration::from_millis(1),
    }
}

const N_ELEMS: usize = 1024;
const WARMUP: usize = 5;
const MEASURED: usize = 3; // count_allocs runs the step closure 3 times
const TOTAL: usize = WARMUP + MEASURED;

#[test]
fn steady_state_socket_allreduce_is_allocation_free() {
    let (a, b) = UnixStream::pair().expect("socketpair");
    let pol = policy();
    let schedule = Algorithm::Ring.build(2, N_ELEMS);
    schedule.verify_allreduce().expect("ring schedule verifies");

    // Rank 1 runs lockstep on its own thread; both sides step together
    // through the synchronous allreduce, so the measured region covers
    // the full two-rank exchange.
    let peer_schedule = schedule.clone();
    let peer = std::thread::spawn(move || {
        let mesh = SocketMesh::new(1, vec![0, 1], vec![(0, b)], policy()).expect("mesh rank 1");
        let mut exec = PeerExecutor::new(&mesh, policy());
        let mut buf = vec![0.0f32; N_ELEMS];
        for step in 0..TOTAL {
            for (i, x) in buf.iter_mut().enumerate() {
                *x = (step * N_ELEMS + i) as f32 * 0.5 + 1.0;
            }
            exec.begin_step(step);
            exec.allreduce(&peer_schedule, &mut buf, ReduceOp::Sum, &[0, 1], &mut || {
                CtlSignal::Continue
            })
            .expect("rank 1 allreduce");
        }
        buf
    });

    let mesh = SocketMesh::new(0, vec![0, 1], vec![(1, a)], pol).expect("mesh rank 0");
    let mut exec = PeerExecutor::new(&mesh, pol);
    let mut buf = vec![0.0f32; N_ELEMS];
    let mut step = 0usize;
    let mut one_step = |exec: &mut PeerExecutor, buf: &mut Vec<f32>| {
        for (i, x) in buf.iter_mut().enumerate() {
            *x = (step * N_ELEMS + i) as f32 * 0.25 - 3.0;
        }
        exec.begin_step(step);
        exec.allreduce(&schedule, buf, ReduceOp::Sum, &[0, 1], &mut || CtlSignal::Continue)
            .expect("rank 0 allreduce");
        step += 1;
    };

    for _ in 0..WARMUP {
        one_step(&mut exec, &mut buf);
    }

    let n = count_allocs(|| one_step(&mut exec, &mut buf));
    assert_eq!(
        n, 0,
        "steady-state socket allreduce allocated {n} times; the wire path must recycle \
         every buffer after warmup"
    );

    // The math still holds on the measured steps: both ranks computed
    // the same final sum.
    let peer_buf = peer.join().expect("rank 1 thread");
    let last = TOTAL - 1;
    for (i, (&mine, &theirs)) in buf.iter().zip(&peer_buf).enumerate() {
        assert_eq!(mine.to_bits(), theirs.to_bits(), "elem {i} disagrees across ranks");
        let want =
            (last * N_ELEMS + i) as f32 * 0.5 + 1.0 + ((last * N_ELEMS + i) as f32 * 0.25 - 3.0);
        assert_eq!(mine.to_bits(), want.to_bits(), "elem {i} has the wrong sum");
    }
}

/// The telemetry plane makes the same promise as the gradient path: a
/// warmed worker records its per-step metrics and flight spans, encodes
/// the snapshot, frames it, and ships it down a real socket without a
/// single allocation. Mirrors the exact sequence `run_worker` +
/// `heartbeat_main` perform each step: record → `encode_into` →
/// payload swap → frame encode → `write_all`.
#[test]
fn steady_state_telemetry_encode_and_ship_is_allocation_free() {
    use std::io::{Read, Write};
    use trace::telemetry::{metric, WorkerTelemetry};
    use transport::frame::{encode_into, Frame, FrameKind};

    let (mut tx, mut rx) = UnixStream::pair().expect("socketpair");
    let sink = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        let mut total = 0usize;
        loop {
            match rx.read(&mut buf) {
                Ok(0) | Err(_) => return total,
                Ok(n) => total += n,
            }
        }
    });

    let tel = WorkerTelemetry::new(0);
    let mut payload: Vec<u8> = Vec::new();
    let mut wire: Vec<u8> = Vec::new();
    let mut frame = Frame::control(FrameKind::Telemetry, 0, 0, 0);
    let mut step = 0u32;
    let mut one_step = || {
        tel.begin_step(step);
        tel.add(metric::STEPS_BEGUN, 1);
        tel.add(metric::WIRE_BYTES, 4096);
        tel.set(metric::STEP_LATENCY_US, 1234);
        tel.flight("STEP", "begin", step, 0, 0);
        tel.flight("COMPUTE", "grad_compute", step, 500, 0);
        tel.flight("MPI_ALLREDUCE", "exchange", step, 900, 0);
        frame.seq = tel.encode_into(&mut payload);
        frame.step = step;
        std::mem::swap(&mut frame.payload, &mut payload);
        encode_into(&frame, &mut wire);
        tx.write_all(&wire).expect("ship telemetry");
        std::mem::swap(&mut frame.payload, &mut payload);
        step += 1;
    };

    // Warm until the flight ring has wrapped (capacity 32, 3 spans per
    // step): once it is saturated the payload size is steady, so the
    // encode buffers stop growing.
    for _ in 0..16 {
        one_step();
    }

    let n = count_allocs(&mut one_step);
    assert_eq!(
        n, 0,
        "steady-state telemetry encode+ship allocated {n} times; snapshots must reuse \
         the payload and wire buffers after warmup"
    );

    drop(tx);
    let total = sink.join().expect("sink thread");
    assert!(total > 0, "the sink must have received the telemetry bytes");
}
