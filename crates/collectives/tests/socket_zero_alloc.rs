//! Counting-allocator proof for the socket transport: once a
//! [`SocketMesh`] is warmed up, a steady-state allreduce step over real
//! Unix-domain sockets allocates nothing — payload buffers recycle
//! through the connection pool, the frame rings and encode scratch are
//! retained, and the executor's working state is reused. The socket
//! backend may allocate only at connection setup/teardown.
//!
//! The in-process channel backend's zero-alloc story is covered by the
//! executor proofs; this test pins the harder claim for the byte-stream
//! path, where serialization buffers could easily regress into per-step
//! allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use collectives::{Algorithm, CtlSignal, PeerExecutor, ReduceOp};
use faults::RetryPolicy;
use transport::SocketMesh;

struct CountingAlloc;

static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Minimum allocation count over three runs of `f`: ambient one-time
/// noise (libtest thread parking, lazy TLS) cannot recur in all three,
/// while anything `f` itself allocates does.
fn count_allocs(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOC_EVENTS.load(Ordering::Relaxed);
            f();
            ALLOC_EVENTS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap_or(0)
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(50),
        factor: 2,
        max_attempts: 6,
        tick: Duration::from_millis(1),
    }
}

const N_ELEMS: usize = 1024;
const WARMUP: usize = 5;
const MEASURED: usize = 3; // count_allocs runs the step closure 3 times
const TOTAL: usize = WARMUP + MEASURED;

#[test]
fn steady_state_socket_allreduce_is_allocation_free() {
    let (a, b) = UnixStream::pair().expect("socketpair");
    let pol = policy();
    let schedule = Algorithm::Ring.build(2, N_ELEMS);
    schedule.verify_allreduce().expect("ring schedule verifies");

    // Rank 1 runs lockstep on its own thread; both sides step together
    // through the synchronous allreduce, so the measured region covers
    // the full two-rank exchange.
    let peer_schedule = schedule.clone();
    let peer = std::thread::spawn(move || {
        let mesh = SocketMesh::new(1, vec![0, 1], vec![(0, b)], policy()).expect("mesh rank 1");
        let mut exec = PeerExecutor::new(&mesh, policy());
        let mut buf = vec![0.0f32; N_ELEMS];
        for step in 0..TOTAL {
            for (i, x) in buf.iter_mut().enumerate() {
                *x = (step * N_ELEMS + i) as f32 * 0.5 + 1.0;
            }
            exec.begin_step(step);
            exec.allreduce(&peer_schedule, &mut buf, ReduceOp::Sum, &[0, 1], &mut || {
                CtlSignal::Continue
            })
            .expect("rank 1 allreduce");
        }
        buf
    });

    let mesh = SocketMesh::new(0, vec![0, 1], vec![(1, a)], pol).expect("mesh rank 0");
    let mut exec = PeerExecutor::new(&mesh, pol);
    let mut buf = vec![0.0f32; N_ELEMS];
    let mut step = 0usize;
    let mut one_step = |exec: &mut PeerExecutor, buf: &mut Vec<f32>| {
        for (i, x) in buf.iter_mut().enumerate() {
            *x = (step * N_ELEMS + i) as f32 * 0.25 - 3.0;
        }
        exec.begin_step(step);
        exec.allreduce(&schedule, buf, ReduceOp::Sum, &[0, 1], &mut || CtlSignal::Continue)
            .expect("rank 0 allreduce");
        step += 1;
    };

    for _ in 0..WARMUP {
        one_step(&mut exec, &mut buf);
    }

    let n = count_allocs(|| one_step(&mut exec, &mut buf));
    assert_eq!(
        n, 0,
        "steady-state socket allreduce allocated {n} times; the wire path must recycle \
         every buffer after warmup"
    );

    // The math still holds on the measured steps: both ranks computed
    // the same final sum.
    let peer_buf = peer.join().expect("rank 1 thread");
    let last = TOTAL - 1;
    for (i, (&mine, &theirs)) in buf.iter().zip(&peer_buf).enumerate() {
        assert_eq!(mine.to_bits(), theirs.to_bits(), "elem {i} disagrees across ranks");
        let want =
            (last * N_ELEMS + i) as f32 * 0.5 + 1.0 + ((last * N_ELEMS + i) as f32 * 0.25 - 3.0);
        assert_eq!(mine.to_bits(), want.to_bits(), "elem {i} has the wrong sum");
    }
}
