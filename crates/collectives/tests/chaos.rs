//! Chaos suite for the fault-aware collective executor.
//!
//! Seeded fault plans (drops, corruptions, stragglers, crashes) run
//! against real multi-threaded allreduces; recoverable faults must
//! leave the numerics bit-identical to a fault-free run, crashes must
//! degrade onto a re-verified survivor topology with the average
//! rescaled, and the whole thing must replay identically from the same
//! seed. `CHAOS_SEED` (CI sweeps 8 of them) varies the sampled plans.

use collectives::reference::apply_allreduce;
use collectives::{
    Action, Algorithm, CodecKind, ElasticAllreduce, EncodeScratch, ErrorFeedback, FaultSession,
    ReduceOp,
};
use faults::{FaultEvent, FaultKind, FaultPlan, FaultSpec, Injection};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4405)
}

fn inputs(n_ranks: usize, n_elems: usize, salt: u64) -> Vec<Vec<f32>> {
    (0..n_ranks)
        .map(|r| {
            (0..n_elems)
                .map(|i| {
                    let h = (r as u64 * 31 + i as u64 * 7 + salt * 131) % 23;
                    h as f32 * 0.375 - 4.0
                })
                .collect()
        })
        .collect()
}

/// Every algorithm the chaos suite exercises (single-level ones; the
/// hierarchical composites execute through the same primitives).
const ALGOS: &[Algorithm] = &[Algorithm::Ring, Algorithm::RecursiveDoubling];

#[test]
fn recoverable_faults_leave_results_bit_identical() {
    let seed = chaos_seed();
    let (n, e) = (4usize, 96usize);
    for &algo in ALGOS {
        let rounds = algo.build(n, e).rounds.len();
        let plan = FaultPlan::seeded(
            seed,
            &FaultSpec {
                stragglers: 2,
                straggle_ms: 4,
                drops: 2,
                corruptions: 2,
                ..FaultSpec::none(n, 1, rounds)
            },
        );
        assert!(!plan.is_empty());
        let session = FaultSession::new(plan);
        let mut ela = ElasticAllreduce::new(algo, n, e).unwrap();
        let mut faulty = inputs(n, e, seed);
        let report = ela.allreduce(&mut faulty, ReduceOp::Sum, Some(&session)).unwrap();
        assert!(!report.degraded(), "no crashes in this plan");

        let mut clean = inputs(n, e, seed);
        apply_allreduce(ela.schedule(), &mut clean, ReduceOp::Sum);
        assert_eq!(faulty, clean, "{algo:?}: recovery must be bit-exact");
        // The plan actually fired and the protocol actually recovered.
        let c = session.counters().snapshot();
        assert!(c.injected_total() > 0, "{algo:?}: {c}");
    }
}

#[test]
fn crash_mid_collective_degrades_and_passes_verification() {
    let seed = chaos_seed();
    let (n, e) = (4usize, 64usize);
    let victim = (seed % n as u64) as usize;
    let plan = FaultPlan::explicit(
        seed,
        vec![Injection { step: 0, rank: victim, round: 1, kind: FaultKind::Crash }],
    );
    let session = FaultSession::new(plan);
    let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
    let ins = inputs(n, e, seed);
    let mut bufs = ins.clone();
    let report = ela.allreduce(&mut bufs, ReduceOp::Average, Some(&session)).unwrap();

    assert_eq!(report.dead, vec![victim]);
    assert_eq!(report.world, 3);
    assert_eq!(ela.live().len(), 3);
    assert!(!ela.live().contains(&victim));
    // The rebuilt survivor schedule passes the full static verifier.
    assert_eq!(ela.schedule().n_ranks, 3);
    assert_eq!(ela.schedule().verify_allreduce(), Ok(()));
    // Survivor average is exact over the NEW world size.
    let mut survivors: Vec<Vec<f32>> =
        (0..n).filter(|r| *r != victim).map(|r| ins[r].clone()).collect();
    apply_allreduce(ela.schedule(), &mut survivors, ReduceOp::Average);
    assert_eq!(bufs, survivors, "rescaled survivor average must be bit-exact");
    assert!(session
        .events()
        .deterministic_core()
        .iter()
        .any(|ev| matches!(ev, FaultEvent::Degraded { new_world: 3, .. })));
}

#[test]
fn chaos_runs_replay_identically_from_the_same_seed() {
    let seed = chaos_seed();
    let (n, e) = (4usize, 80usize);
    let rounds = Algorithm::Ring.build(n, e).rounds.len();
    let spec = FaultSpec {
        crashes: 1,
        stragglers: 2,
        straggle_ms: 3,
        drops: 1,
        corruptions: 1,
        ..FaultSpec::none(n, 1, rounds)
    };
    let run = || {
        let session = FaultSession::new(FaultPlan::seeded(seed, &spec));
        let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
        let mut bufs = inputs(n, e, seed);
        ela.allreduce(&mut bufs, ReduceOp::Average, Some(&session)).unwrap();
        (
            bufs,
            ela.live().to_vec(),
            session.events().deterministic_core(),
            session.counters().snapshot().deterministic_part(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "numerics replay bit-identically");
    assert_eq!(a.1, b.1, "survivor set replays identically");
    assert_eq!(a.2, b.2, "deterministic event core replays identically");
    assert_eq!(a.3, b.3, "deterministic counters replay identically");
}

/// The compressed training configuration under chaos: every rank runs
/// Int8 + error-feedback compression in front of the elastic allreduce
/// (the same compose order the trainer uses — compensate, quantize,
/// then reduce the dequantized values), and a rank dies mid-collective.
/// The degraded run must still produce the bit-exact rescaled survivor
/// average of the *compressed* inputs, and a compressed run over the
/// rebuilt schedule must bill the wire ledger exactly per `encoded_len`.
#[test]
fn compressed_elastic_run_survives_rank_death_with_exact_wire_accounting() {
    let seed = chaos_seed();
    let (n, e) = (4usize, 720usize);
    let victim = ((seed >> 8) % n as u64) as usize;

    let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
    let mut efs: Vec<ErrorFeedback> = (0..n).map(|_| ErrorFeedback::new(e)).collect();
    let mut scratch = EncodeScratch::new();
    let plan = FaultPlan::explicit(
        seed,
        vec![Injection { step: 1, rank: victim, round: 1, kind: FaultKind::Crash }],
    );
    let session = FaultSession::new(plan);

    // Step 0, clean: warms every rank's residual so the crash step runs
    // with live error-feedback state, not a zeroed one.
    let mut step0 = inputs(n, e, seed);
    for (r, buf) in step0.iter_mut().enumerate() {
        efs[r].roundtrip(CodecKind::Int8, buf, &mut scratch);
    }
    let r0 = ela.allreduce(&mut step0, ReduceOp::Average, Some(&session)).unwrap();
    assert!(!r0.degraded(), "no injection fires at step 0");
    assert!(
        efs.iter().any(|ef| ef.residual().iter().any(|x| *x != 0.0)),
        "int8 quantization must have dropped something into the residuals"
    );

    // Step 1: compensate + quantize per rank, then the crash fires
    // mid-collective. The snapshot/restore inside ElasticAllreduce must
    // retry from exactly these compressed inputs.
    session.begin_step(1);
    let mut step1 = inputs(n, e, seed ^ 0x5EED);
    for (r, buf) in step1.iter_mut().enumerate() {
        efs[r].roundtrip(CodecKind::Int8, buf, &mut scratch);
    }
    let compressed = step1.clone();
    let report = ela.allreduce(&mut step1, ReduceOp::Average, Some(&session)).unwrap();
    assert_eq!(report.dead, vec![victim]);
    assert_eq!(report.world, n - 1);
    assert_eq!(ela.schedule().n_ranks, n - 1);
    assert_eq!(ela.schedule().verify_allreduce(), Ok(()));

    // Survivors' average of the compressed inputs, rescaled to the new
    // world size, bit-exact against the rebuilt schedule's reference.
    let mut survivors: Vec<Vec<f32>> =
        (0..n).filter(|r| *r != victim).map(|r| compressed[r].clone()).collect();
    apply_allreduce(ela.schedule(), &mut survivors, ReduceOp::Average);
    assert_eq!(step1, survivors, "compressed survivor average must be bit-exact");

    // Wire accounting over the REBUILT schedule: a compressed run
    // through the inherited executor must bill encoded bytes per send
    // exactly (the ledger starts at zero — the fault path is uncoded).
    assert_eq!(ela.ctx().wire_bytes(), 0);
    let sends = |f: &dyn Fn(usize) -> u64| -> u64 {
        ela.schedule()
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter_map(|a| match a {
                Action::Send { seg, .. } => Some(f(seg.len)),
                _ => None,
            })
            .sum()
    };
    let expected_wire = sends(&|len| CodecKind::Int8.encoded_len(len) as u64);
    let expected_raw = sends(&|len| 4 * len as u64);
    let mut again = survivors.clone();
    ela.ctx()
        .allreduce_compressed(ela.schedule(), &mut again, ReduceOp::Sum, CodecKind::Int8)
        .unwrap();
    assert_eq!(ela.ctx().wire_bytes(), expected_wire, "wire ledger must bill encoded_len");
    assert_eq!(ela.ctx().raw_bytes(), expected_raw, "raw ledger must bill 4 B/element");
    assert!(
        ela.ctx().raw_bytes() as f64 / ela.ctx().wire_bytes() as f64 >= 3.5,
        "int8 must keep its compression ratio on the degraded topology"
    );
}

#[test]
fn different_seeds_sample_different_plans() {
    let spec = FaultSpec { drops: 2, corruptions: 2, ..FaultSpec::none(4, 3, 6) };
    let a = FaultPlan::seeded(1, &spec);
    let b = FaultPlan::seeded(2, &spec);
    assert_ne!(a.injections(), b.injections());
}
