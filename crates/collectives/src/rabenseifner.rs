//! Rabenseifner's allreduce: recursive-halving reduce-scatter followed by
//! recursive-doubling allgather. Moves `2 (p-1)/p` of the buffer per rank
//! (bandwidth-optimal, like ring) in only `2 log2(p)` rounds (latency
//! close to recursive doubling) — the algorithm tuned MPI libraries pick
//! for large messages at moderate rank counts.
//!
//! Non-power-of-two rank counts reuse the fold/unfold phases from
//! [`crate::rd`].

use crate::rd::{post_unfold, pre_fold, Pof2};
use crate::sched::{Action, Round, Schedule, Seg};

/// Rabenseifner (halving-doubling) allreduce.
pub fn allreduce(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let pof2 = Pof2::of(n_ranks);
    pre_fold(&mut s, &pof2);

    let p = pof2.p;
    let k = p.trailing_zeros() as usize;
    if k == 0 {
        post_unfold(&mut s, &pof2);
        return s;
    }

    // Per-core-rank segment stack: seg[j] is the segment a rank holds
    // *entering* halving round j. seg[0] is the whole buffer.
    let mut seg_stack: Vec<Vec<Seg>> = vec![vec![Seg::whole(n_elems)]; p];

    // Reduce-scatter by recursive halving. Round j pairs rank c with
    // c ^ half where half = p >> (j+1); the pair splits the current
    // segment, low-bit side keeping the first half.
    for j in 0..k {
        let half = p >> (j + 1);
        let mut round = Round::empty(n_ranks);
        #[allow(clippy::needless_range_loop)] // c is a rank id, not just an index
        for c in 0..p {
            let partner = c ^ half;
            let cur = seg_stack[c][j];
            let (first, second) = cur.halves();
            let (keep, give) = if c & half == 0 { (first, second) } else { (second, first) };
            seg_stack[c].push(keep);
            let g = pof2.core_to_global(c);
            let pg = pof2.core_to_global(partner);
            if !give.is_empty() {
                round.per_rank[g].push(Action::Send { peer: pg, seg: give });
            }
            if !keep.is_empty() {
                round.per_rank[g].push(Action::RecvReduce { peer: pg, seg: keep });
            }
        }
        s.rounds.push(round);
    }

    // Allgather by recursive doubling: unwind the halving in reverse,
    // each rank sending everything it has fully reduced so far.
    for j in (0..k).rev() {
        let half = p >> (j + 1);
        let mut round = Round::empty(n_ranks);
        for c in 0..p {
            let partner = c ^ half;
            let mine = seg_stack[c][j + 1];
            let theirs = seg_stack[partner][j + 1];
            let g = pof2.core_to_global(c);
            let pg = pof2.core_to_global(partner);
            if !mine.is_empty() {
                round.per_rank[g].push(Action::Send { peer: pg, seg: mine });
            }
            if !theirs.is_empty() {
                round.per_rank[g].push(Action::RecvReplace { peer: pg, seg: theirs });
            }
        }
        s.rounds.push(round);
    }

    post_unfold(&mut s, &pof2);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply_allreduce, assert_allreduce_result};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 17 + i * 3) % 11) as f32 * 0.25 - 1.0).collect())
            .collect()
    }

    #[test]
    fn correct_on_powers_of_two() {
        for &n in &[2usize, 4, 8, 16] {
            for &e in &[1usize, 7, 16, 33, 100] {
                let s = allreduce(n, e);
                s.validate().unwrap_or_else(|err| panic!("n={n} e={e}: {err:?}"));
                let ins = inputs(n, e);
                let mut bufs = ins.clone();
                apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
                assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
            }
        }
    }

    #[test]
    fn correct_on_non_powers_of_two() {
        for &n in &[3usize, 5, 6, 7, 11, 12] {
            for &e in &[1usize, 8, 29] {
                let s = allreduce(n, e);
                s.validate().unwrap_or_else(|err| panic!("n={n} e={e}: {err:?}"));
                let ins = inputs(n, e);
                let mut bufs = ins.clone();
                apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
                assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
            }
        }
    }

    #[test]
    fn round_count_is_2_log_p_for_pof2() {
        assert_eq!(allreduce(8, 64).n_rounds(), 6);
        assert_eq!(allreduce(16, 64).n_rounds(), 8);
    }

    #[test]
    fn bandwidth_matches_ring_asymptotics() {
        // Per-rank traffic = 2*(p-1)/p * e for power-of-two p with evenly
        // divisible e.
        let (n, e) = (8usize, 64usize);
        let s = allreduce(n, e);
        assert_eq!(s.max_rank_sent_elems(), 2 * (n - 1) * e / n);
    }

    #[test]
    fn fewer_rounds_than_ring_at_scale() {
        let ring = crate::ring::allreduce(32, 1024);
        let rab = allreduce(32, 1024);
        assert!(rab.n_rounds() < ring.n_rounds());
    }

    #[test]
    fn tiny_buffers() {
        for &n in &[4usize, 8] {
            let e = 2; // fewer elements than ranks: deep halving hits empties
            let s = allreduce(n, e);
            s.validate().unwrap();
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-4);
        }
    }

    #[test]
    fn two_ranks_degenerates_to_exchange() {
        let s = allreduce(2, 10);
        assert_eq!(s.n_rounds(), 2); // halve + double
        let ins = inputs(2, 10);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-4);
    }
}
