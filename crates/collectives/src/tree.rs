//! Binomial-tree broadcast and reduce, and the reduce+broadcast
//! allreduce composition. `log2(n)` rounds with whole-buffer payloads;
//! the workhorse of small-message collectives and of the intra-node
//! phases of the hierarchical allreduce.

use crate::sched::{Action, Round, Schedule, Seg};

fn ceil_log2(n: usize) -> usize {
    assert!(n >= 1);
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

/// Binomial broadcast from `root`. Internally computed for root 0 over
/// relative ranks `(r - root) mod n`.
pub fn broadcast(n_ranks: usize, n_elems: usize, root: usize) -> Schedule {
    assert!(root < n_ranks, "root out of range");
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let seg = Seg::whole(n_elems);
    let to_abs = |rel: usize| (rel + root) % n_ranks;
    for j in 0..ceil_log2(n_ranks) {
        let stride = 1 << j;
        let mut round = Round::empty(n_ranks);
        for rel in 0..stride.min(n_ranks) {
            let dst = rel + stride;
            if dst < n_ranks {
                round.per_rank[to_abs(rel)].push(Action::Send { peer: to_abs(dst), seg });
                round.per_rank[to_abs(dst)].push(Action::RecvReplace { peer: to_abs(rel), seg });
            }
        }
        s.rounds.push(round);
    }
    s
}

/// Binomial reduce to `root`: after it, `root` holds the element-wise
/// reduction of all ranks' buffers (other ranks' buffers are clobbered
/// with partial sums).
pub fn reduce(n_ranks: usize, n_elems: usize, root: usize) -> Schedule {
    assert!(root < n_ranks, "root out of range");
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let seg = Seg::whole(n_elems);
    let to_abs = |rel: usize| (rel + root) % n_ranks;
    for j in (0..ceil_log2(n_ranks)).rev() {
        let stride = 1 << j;
        let mut round = Round::empty(n_ranks);
        for rel in 0..stride.min(n_ranks) {
            let src = rel + stride;
            if src < n_ranks {
                round.per_rank[to_abs(src)].push(Action::Send { peer: to_abs(rel), seg });
                round.per_rank[to_abs(rel)].push(Action::RecvReduce { peer: to_abs(src), seg });
            }
        }
        s.rounds.push(round);
    }
    s
}

/// Allreduce as binomial reduce-to-0 followed by binomial broadcast-from-0.
/// Latency `2 log2(n)`, but the root moves `log2(n)` whole buffers —
/// only sensible for small messages.
pub fn allreduce(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = reduce(n_ranks, n_elems, 0);
    let b = broadcast(n_ranks, n_elems, 0);
    let offset = s.n_rounds();
    let map: Vec<usize> = (0..n_ranks).collect();
    s.embed(&b, &map, offset);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply, apply_allreduce, assert_allreduce_result};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| (r + 1) as f32 * 10.0 + i as f32).collect())
            .collect()
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for &n in &[2usize, 3, 5, 6, 8, 13] {
            for root in [0, n - 1, n / 2] {
                let s = broadcast(n, 4, root);
                s.validate().unwrap_or_else(|e| panic!("n={n} root={root}: {e:?}"));
                let mut bufs = vec![vec![0.0; 4]; n];
                bufs[root] = vec![1.0, 2.0, 3.0, 4.0];
                apply(&s, &mut bufs, ReduceOp::Sum);
                for (r, b) in bufs.iter().enumerate() {
                    assert_eq!(b, &vec![1.0, 2.0, 3.0, 4.0], "rank {r} (n={n}, root={root})");
                }
            }
        }
    }

    #[test]
    fn broadcast_round_count_is_ceil_log2() {
        assert_eq!(broadcast(6, 4, 0).n_rounds(), 3);
        assert_eq!(broadcast(8, 4, 0).n_rounds(), 3);
        assert_eq!(broadcast(9, 4, 0).n_rounds(), 4);
    }

    #[test]
    fn reduce_collects_full_sum_at_root() {
        for &n in &[2usize, 3, 6, 7, 8] {
            for root in [0, n - 1] {
                let ins = inputs(n, 5);
                let mut bufs = ins.clone();
                let s = reduce(n, 5, root);
                s.validate().unwrap();
                apply(&s, &mut bufs, ReduceOp::Sum);
                for i in 0..5 {
                    let want: f32 = ins.iter().map(|b| b[i]).sum();
                    assert!((bufs[root][i] - want).abs() < 1e-3, "n={n} root={root} i={i}");
                }
            }
        }
    }

    #[test]
    fn allreduce_via_tree() {
        for &n in &[2usize, 4, 6, 9] {
            let ins = inputs(n, 6);
            let mut bufs = ins.clone();
            let s = allreduce(n, 6);
            s.validate().unwrap();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn single_rank_trees_are_empty() {
        assert_eq!(broadcast(1, 9, 0).n_rounds(), 0);
        assert_eq!(reduce(1, 9, 0).n_rounds(), 0);
        assert_eq!(allreduce(1, 9).n_rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn bad_root_panics() {
        broadcast(4, 1, 4);
    }
}
