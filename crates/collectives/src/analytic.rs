//! Closed-form α–β–γ cost estimates for the allreduce algorithms —
//! the textbook lower bounds (Thakur et al., Chan et al.) used to sanity
//! check the discrete-event simulation and to reason about crossovers
//! without running it.
//!
//! Model per algorithm, for `p` ranks and `n` payload bytes:
//!
//! * latency term: `rounds × α`
//! * bandwidth term: `bytes_moved_per_rank × β`
//! * reduction term: `bytes_reduced_per_rank × γ`
//!
//! These are *uncontended* estimates: they assume every rank's links are
//! private. The simulator adds topology and contention on top, so the
//! simulated time must always be ≥ the analytic bound for a consistent
//! pair of parameter sets — which `tests::simulation_respects_bounds`
//! asserts.

use crate::algo::Algorithm;

/// Point-to-point machine parameters for the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBeta {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Inverse bandwidth, seconds/byte.
    pub beta: f64,
    /// Inverse reduction rate, seconds/byte.
    pub gamma: f64,
}

impl AlphaBeta {
    pub fn new(alpha: f64, bandwidth: f64, reduce_bw: f64) -> Self {
        assert!(alpha >= 0.0 && bandwidth > 0.0 && reduce_bw > 0.0);
        AlphaBeta { alpha, beta: 1.0 / bandwidth, gamma: 1.0 / reduce_bw }
    }
}

fn ceil_log2(p: usize) -> f64 {
    (usize::BITS - (p - 1).leading_zeros()) as f64
}

/// Analytic allreduce cost in seconds for `algo` over `p` ranks and
/// `bytes` payload.
pub fn allreduce_cost(algo: Algorithm, p: usize, bytes: u64, m: &AlphaBeta) -> f64 {
    assert!(p >= 1);
    if p == 1 || bytes == 0 {
        return 0.0;
    }
    let n = bytes as f64;
    let pf = p as f64;
    let frac = (pf - 1.0) / pf;
    match algo {
        Algorithm::Ring => {
            2.0 * (pf - 1.0) * m.alpha + 2.0 * frac * n * m.beta + frac * n * m.gamma
        }
        Algorithm::ChunkedRing { chunks } => {
            // Same traffic as ring; pipelining hides the γ term behind β
            // but pays (chunks-1) extra latency rounds to fill/drain.
            let c = chunks.max(1) as f64;
            (2.0 * (pf - 1.0) + (c - 1.0)) * m.alpha
                + (2.0 * frac * n * m.beta).max(frac * n * m.gamma)
        }
        Algorithm::RecursiveDoubling => {
            let lg = ceil_log2(p);
            lg * (m.alpha + n * m.beta + n * m.gamma)
        }
        Algorithm::Rabenseifner => {
            2.0 * ceil_log2(p) * m.alpha + 2.0 * frac * n * m.beta + frac * n * m.gamma
        }
        Algorithm::Tree => {
            // Reduce + broadcast, binomial: 2·log2(p) whole-buffer hops.
            let lg = ceil_log2(p);
            2.0 * lg * m.alpha + 2.0 * lg * n * m.beta + lg * n * m.gamma
        }
        Algorithm::Hierarchical { per_node, leader } => {
            let g = per_node.min(p).max(1);
            let nodes = p.div_ceil(g);
            let intra = if g > 1 {
                let lg = ceil_log2(g);
                2.0 * lg * m.alpha + 2.0 * lg * n * m.beta + lg * n * m.gamma
            } else {
                0.0
            };
            let inter =
                if nodes > 1 { allreduce_cost(leader_algo(leader), nodes, bytes, m) } else { 0.0 };
            intra + inter
        }
        Algorithm::HierarchicalRsag { per_node } => {
            let g = per_node.min(p).max(1);
            let nodes = p / g.max(1);
            let intra = if g > 1 {
                // reduce-scatter + allgather rings inside the node.
                2.0 * (g as f64 - 1.0) * m.alpha
                    + 2.0 * ((g as f64 - 1.0) / g as f64) * n * m.beta
                    + ((g as f64 - 1.0) / g as f64) * n * m.gamma
            } else {
                0.0
            };
            let inter = if nodes > 1 {
                allreduce_cost(Algorithm::Ring, nodes, bytes / g as u64, m)
            } else {
                0.0
            };
            intra + inter
        }
    }
}

fn leader_algo(leader: crate::hierarchical::LeaderAlgo) -> Algorithm {
    match leader {
        crate::hierarchical::LeaderAlgo::Ring => Algorithm::Ring,
        crate::hierarchical::LeaderAlgo::Rabenseifner => Algorithm::Rabenseifner,
        crate::hierarchical::LeaderAlgo::Tree => Algorithm::Tree,
    }
}

/// The analytic crossover size (bytes) above which `a` beats `b`, found
/// by bisection in [1 B, 1 GiB]; `None` if no crossover in range.
pub fn crossover(a: Algorithm, b: Algorithm, p: usize, m: &AlphaBeta) -> Option<u64> {
    let f = |bytes: u64| allreduce_cost(a, p, bytes, m) - allreduce_cost(b, p, bytes, m);
    let (mut lo, mut hi) = (1u64, 1 << 30);
    let (flo, fhi) = (f(lo), f(hi));
    if flo.signum() == fhi.signum() {
        return None;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if f(mid).signum() == flo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_sim::{simulate_dense, UniformCost};
    use summit_sim::{Machine, MachineConfig, SimTime};

    fn m() -> AlphaBeta {
        // Roughly a Summit-node NVLink pair with MPI software latency.
        AlphaBeta::new(4e-6, 50e9, 250e9)
    }

    #[test]
    fn trivial_cases_free() {
        assert_eq!(allreduce_cost(Algorithm::Ring, 1, 1 << 20, &m()), 0.0);
        assert_eq!(allreduce_cost(Algorithm::Ring, 8, 0, &m()), 0.0);
    }

    #[test]
    fn small_message_ordering() {
        // Latency terms dominate at 1 KiB: RD < Rabenseifner < Ring.
        let p = 64;
        let rd = allreduce_cost(Algorithm::RecursiveDoubling, p, 1024, &m());
        let rab = allreduce_cost(Algorithm::Rabenseifner, p, 1024, &m());
        let ring = allreduce_cost(Algorithm::Ring, p, 1024, &m());
        assert!(rd < rab && rab < ring, "rd {rd}, rab {rab}, ring {ring}");
    }

    #[test]
    fn large_message_ordering() {
        // Bandwidth terms dominate at 64 MiB: Ring/Rabenseifner < RD, Tree.
        let p = 64;
        let b = 64 << 20;
        let ring = allreduce_cost(Algorithm::Ring, p, b, &m());
        let rab = allreduce_cost(Algorithm::Rabenseifner, p, b, &m());
        let rd = allreduce_cost(Algorithm::RecursiveDoubling, p, b, &m());
        let tree = allreduce_cost(Algorithm::Tree, p, b, &m());
        assert!(ring < rd && ring < tree);
        assert!((ring / rab - 1.0).abs() < 0.2, "ring and rabenseifner converge at scale");
    }

    #[test]
    fn ring_rd_crossover_is_in_the_expected_band() {
        let x = crossover(Algorithm::Ring, Algorithm::RecursiveDoubling, 32, &m())
            .expect("crossover exists");
        // Ring pays 2(p-1)·α = 62 latency rounds vs RD's 5, but saves
        // ~3nβ + 4nγ: for these parameters the break-even lands around
        // 3 MB.
        assert!((1 << 20..1 << 23).contains(&x), "crossover at {x} bytes");
    }

    #[test]
    fn no_crossover_when_one_dominates() {
        // Rabenseifner dominates Tree at every size for large p.
        assert_eq!(crossover(Algorithm::Rabenseifner, Algorithm::Tree, 64, &m()), None);
    }

    #[test]
    fn simulation_respects_bounds() {
        // On a single node (all NVLink, no contention beyond pairs), the
        // fluid simulation must come in at or above the analytic lower
        // bound, and within a small factor of it for bandwidth-dominated
        // sizes.
        let machine = Machine::new(MachineConfig::summit(1));
        let cost = UniformCost::default();
        let ab = AlphaBeta::new(
            2e-6 + 2e-6, // software overhead + NVLink wire latency
            50e9,
            250e9,
        );
        for algo in [Algorithm::Ring, Algorithm::RecursiveDoubling, Algorithm::Rabenseifner] {
            for bytes in [256u64 << 10, 4 << 20, 64 << 20] {
                let bound = allreduce_cost(algo, 6, bytes, &ab);
                let sim: SimTime =
                    simulate_dense(&algo.build(6, (bytes / 4) as usize), &machine, &cost).makespan;
                let simulated = sim.as_secs_f64();
                assert!(
                    simulated >= bound * 0.75,
                    "{algo} at {bytes} B: simulated {simulated:.2e} below analytic bound {bound:.2e}"
                );
                assert!(
                    simulated <= bound * 6.0,
                    "{algo} at {bytes} B: simulated {simulated:.2e} implausibly above bound {bound:.2e}"
                );
            }
        }
    }

    #[test]
    fn chunked_ring_bound_below_plain_ring_when_gamma_matters() {
        let slow_gamma = AlphaBeta::new(4e-6, 50e9, 20e9);
        let p = 12;
        let b = 16 << 20;
        let plain = allreduce_cost(Algorithm::Ring, p, b, &slow_gamma);
        let piped = allreduce_cost(Algorithm::ChunkedRing { chunks: 4 }, p, b, &slow_gamma);
        assert!(piped < plain);
    }

    #[test]
    fn hierarchical_cost_composes() {
        let p = 48;
        let b = 1 << 20;
        let hier = allreduce_cost(
            Algorithm::Hierarchical {
                per_node: 6,
                leader: crate::hierarchical::LeaderAlgo::Rabenseifner,
            },
            p,
            b,
            &m(),
        );
        let flat = allreduce_cost(Algorithm::Rabenseifner, p, b, &m());
        // With a uniform β the hierarchy is NOT cheaper (it moves more
        // bytes); its win comes from the fast intra-node links the
        // simulator models. The analytic model must reflect that.
        assert!(hier > flat * 0.8);
    }
}
