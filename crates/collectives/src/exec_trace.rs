//! Per-rank trace lanes for the threaded executors.
//!
//! An [`ExecTrace`] maps rank ids onto [`trace::Lane`] handles of one
//! shared [`trace::TraceRecorder`] — rank → Chrome `pid`, executor
//! thread → `tid` — so every rank thread of
//! [`exec_thread`](crate::exec_thread) and
//! [`exec_fault`](crate::exec_fault) records SEND/RECV/RETRY spans
//! into its own row of the combined trace. Lane lookup happens once
//! per rank thread at spawn; recording afterwards is the recorder's
//! no-alloc ring write, which keeps the traced plain path inside the
//! zero-allocation budget the trainer asserts.
//!
//! The map is keyed by whatever ids the creator passes: the plain
//! executor uses local rank indices, while [`FaultSession`]
//! (crate::exec_fault::FaultSession) keys by *original* world ids so a
//! plan-addressed rank keeps its trace row across elastic
//! renumberings; [`ExecTrace::reindex`] converts between the two.

use trace::{Lane, TraceRecorder};

/// Chrome `tid` of the executor (communication) thread within a rank.
pub const TID_COMM: u32 = 1;

/// Rank-id-keyed lane map; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    lanes: Vec<(usize, Lane)>,
}

impl ExecTrace {
    /// Register one "comm" lane per id in `rank_ids` (id → Chrome pid).
    pub fn comm(recorder: &TraceRecorder, rank_ids: &[usize]) -> Self {
        let lanes = rank_ids
            .iter()
            .map(|&r| (r, recorder.lane(r as u32, TID_COMM, &format!("rank {r}"), "comm")))
            .collect();
        ExecTrace { lanes }
    }

    /// The lane registered for `rank`, if any.
    pub fn lane(&self, rank: usize) -> Option<&Lane> {
        self.lanes.iter().find(|(r, _)| *r == rank).map(|(_, l)| l)
    }

    /// A view keyed by position: lane `local` of the result is the
    /// lane this map holds for `ids[local]`. The elastic layer uses it
    /// to hand the plain executor (which speaks local indices) lanes
    /// registered under original world ids; ids without a lane are
    /// simply absent from the view.
    pub fn reindex(&self, ids: &[usize]) -> ExecTrace {
        ExecTrace {
            lanes: ids
                .iter()
                .enumerate()
                .filter_map(|(local, orig)| self.lane(*orig).map(|l| (local, l.clone())))
                .collect(),
        }
    }

    /// Registered lane count.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_key_by_rank_id_and_reindex_by_position() {
        let rec = TraceRecorder::new();
        let world = ExecTrace::comm(&rec, &[0, 1, 3, 4]);
        assert_eq!(world.len(), 4);
        assert_eq!(world.lane(3).map(Lane::pid), Some(3));
        assert!(world.lane(2).is_none());
        // Survivors {0, 3, 4} as locals 0..3: local 1 must carry pid 3.
        let view = world.reindex(&[0, 3, 4]);
        assert_eq!(view.len(), 3);
        assert_eq!(view.lane(1).map(Lane::pid), Some(3));
        assert_eq!(view.lane(2).map(Lane::pid), Some(4));
        // Reindexing never registers new lanes.
        assert_eq!(rec.lane_count(), 4);
    }

    #[test]
    fn recorded_spans_land_on_the_rank_pid() {
        let rec = TraceRecorder::new();
        let t = ExecTrace::comm(&rec, &[0, 7]);
        let lane = t.lane(7).expect("registered");
        lane.record_args("SEND", "send", 1.0, 2.0, 0, 64);
        let snap = rec.snapshot();
        assert_eq!(snap.pids(), vec![0, 7]);
        let l7 = snap.lanes.iter().find(|l| l.pid == 7).expect("pid 7 lane");
        assert_eq!(l7.tid, TID_COMM);
        assert_eq!(l7.spans[0].cat, "SEND");
    }
}
