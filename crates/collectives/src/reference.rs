//! Sequential reference executor — the correctness oracle.
//!
//! Applies a [`Schedule`] to per-rank buffers in round order, with
//! start-of-round snapshot semantics for send payloads (so pairwise
//! exchanges behave like real MPI, where both sides send their pre-round
//! data). Every algorithm's unit and property tests compare against the
//! mathematically expected collective result through this executor.

use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule};

/// Run `schedule` on `buffers` (one per rank) in place.
///
/// Panics on structurally invalid schedules (callers should `validate`
/// first; this executor re-checks what it needs via slice indexing).
pub fn apply(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    assert_eq!(buffers.len(), schedule.n_ranks, "one buffer per rank");
    for b in buffers.iter() {
        assert_eq!(b.len(), schedule.n_elems, "buffer length mismatch");
    }
    for round in &schedule.rounds {
        // Snapshot all payloads leaving any rank this round.
        // Key: (sender, receiver) — validation guarantees uniqueness.
        let mut in_flight: Vec<((usize, usize), Vec<f32>)> = Vec::new();
        for (rank, actions) in round.per_rank.iter().enumerate() {
            for a in actions {
                if let Action::Send { peer, seg } = *a {
                    let payload = buffers[rank][seg.offset..seg.end()].to_vec();
                    in_flight.push(((rank, peer), payload));
                }
            }
        }
        // Deliver.
        for (rank, actions) in round.per_rank.iter().enumerate() {
            for a in actions {
                match *a {
                    Action::Send { .. } => {}
                    Action::RecvReduce { peer, seg } => {
                        let payload = take(&mut in_flight, peer, rank);
                        combine(op, &mut buffers[rank][seg.offset..seg.end()], &payload);
                    }
                    Action::RecvReplace { peer, seg } => {
                        let payload = take(&mut in_flight, peer, rank);
                        buffers[rank][seg.offset..seg.end()].copy_from_slice(&payload);
                    }
                }
            }
        }
        assert!(
            in_flight.is_empty(),
            "sends without receives in reference execution: {:?}",
            in_flight.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        );
    }
}

fn take(in_flight: &mut Vec<((usize, usize), Vec<f32>)>, from: usize, to: usize) -> Vec<f32> {
    let pos = in_flight
        .iter()
        .position(|((s, r), _)| *s == from && *r == to)
        .unwrap_or_else(|| panic!("receive from {from} at {to} has no matching send"));
    in_flight.swap_remove(pos).1
}

/// Run an allreduce schedule and finalize (for Average).
pub fn apply_allreduce(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    apply(schedule, buffers, op);
    for b in buffers.iter_mut() {
        finalize(op, b, schedule.n_ranks);
    }
}

/// The mathematically expected allreduce result for `inputs`.
pub fn expected_allreduce(inputs: &[Vec<f32>], op: ReduceOp) -> Vec<f32> {
    assert!(!inputs.is_empty());
    let n = inputs[0].len();
    let mut out = vec![
        match op {
            ReduceOp::Sum | ReduceOp::Average => 0.0,
            ReduceOp::Max => f32::NEG_INFINITY,
        };
        n
    ];
    for inp in inputs {
        assert_eq!(inp.len(), n);
        combine(op, &mut out, inp);
    }
    finalize(op, &mut out, inputs.len());
    out
}

/// Assert that every rank's buffer equals the expected allreduce of the
/// original `inputs`, within `tol` absolute error per element.
pub fn assert_allreduce_result(inputs: &[Vec<f32>], results: &[Vec<f32>], op: ReduceOp, tol: f32) {
    let want = expected_allreduce(inputs, op);
    for (r, got) in results.iter().enumerate() {
        assert_eq!(got.len(), want.len(), "rank {r} buffer length");
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= tol, "rank {r} element {i}: got {g}, want {w} (tol {tol})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Round, Seg};

    fn exchange_schedule(n_elems: usize) -> Schedule {
        let mut s = Schedule::new(2, n_elems);
        let seg = Seg::whole(n_elems);
        let mut r = Round::empty(2);
        r.per_rank[0] = vec![Action::Send { peer: 1, seg }, Action::RecvReduce { peer: 1, seg }];
        r.per_rank[1] = vec![Action::Send { peer: 0, seg }, Action::RecvReduce { peer: 0, seg }];
        s.rounds.push(r);
        s
    }

    #[test]
    fn exchange_uses_pre_round_values() {
        // If snapshot semantics were wrong, one side would double-add.
        let s = exchange_schedule(3);
        let mut bufs = vec![vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]];
        apply(&s, &mut bufs, ReduceOp::Sum);
        assert_eq!(bufs[0], vec![11.0, 22.0, 33.0]);
        assert_eq!(bufs[1], vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn replace_overwrites() {
        let mut s = Schedule::new(2, 2);
        let seg = Seg::whole(2);
        let mut r = Round::empty(2);
        r.per_rank[0] = vec![Action::Send { peer: 1, seg }];
        r.per_rank[1] = vec![Action::RecvReplace { peer: 0, seg }];
        s.rounds.push(r);
        let mut bufs = vec![vec![7.0, 8.0], vec![0.0, 0.0]];
        apply(&s, &mut bufs, ReduceOp::Sum);
        assert_eq!(bufs[1], vec![7.0, 8.0]);
    }

    #[test]
    fn average_divides_at_finalize() {
        let s = exchange_schedule(1);
        let mut bufs = vec![vec![2.0], vec![4.0]];
        apply_allreduce(&s, &mut bufs, ReduceOp::Average);
        assert_eq!(bufs[0], vec![3.0]);
        assert_eq!(bufs[1], vec![3.0]);
    }

    #[test]
    fn expected_allreduce_ops() {
        let inputs = vec![vec![1.0, -5.0], vec![3.0, 2.0]];
        assert_eq!(expected_allreduce(&inputs, ReduceOp::Sum), vec![4.0, -3.0]);
        assert_eq!(expected_allreduce(&inputs, ReduceOp::Average), vec![2.0, -1.5]);
        assert_eq!(expected_allreduce(&inputs, ReduceOp::Max), vec![3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "no matching send")]
    fn orphan_receive_panics() {
        let mut s = Schedule::new(2, 1);
        let mut r = Round::empty(2);
        r.per_rank[1] = vec![Action::RecvReduce { peer: 0, seg: Seg::whole(1) }];
        s.rounds.push(r);
        let mut bufs = vec![vec![0.0], vec![0.0]];
        apply(&s, &mut bufs, ReduceOp::Sum);
    }

    #[test]
    #[should_panic(expected = "sends without receives")]
    fn orphan_send_panics() {
        let mut s = Schedule::new(2, 1);
        let mut r = Round::empty(2);
        r.per_rank[0] = vec![Action::Send { peer: 1, seg: Seg::whole(1) }];
        s.rounds.push(r);
        let mut bufs = vec![vec![0.0], vec![0.0]];
        apply(&s, &mut bufs, ReduceOp::Sum);
    }

    #[test]
    fn assert_helper_accepts_within_tol() {
        let inputs = vec![vec![1.0], vec![2.0]];
        let results = vec![vec![3.0000001], vec![2.9999999]];
        assert_allreduce_result(&inputs, &results, ReduceOp::Sum, 1e-3);
    }
}
