//! Recursive-doubling allreduce: `log2(p)` rounds of whole-buffer
//! pairwise exchanges. Latency-optimal for small messages, but each rank
//! moves `log2(p) ×` the buffer, so it loses badly to ring/Rabenseifner
//! at large sizes — the crossover the MPI personalities encode.
//!
//! Non-power-of-two rank counts use the standard MPICH pre/post phases:
//! the first `2·rem` ranks fold pairwise onto the even members, the
//! power-of-two core runs recursive doubling, and the folded ranks get
//! the result back at the end.

use crate::sched::{Action, Round, Schedule, Seg};

/// Decomposition of a possibly non-power-of-two rank count.
#[derive(Debug, Clone)]
pub(crate) struct Pof2 {
    /// Largest power of two `<= n`.
    pub p: usize,
    /// `n - p`: the number of ranks folded away in the pre-phase.
    pub rem: usize,
}

impl Pof2 {
    pub fn of(n: usize) -> Self {
        assert!(n >= 1);
        let p = if n.is_power_of_two() { n } else { n.next_power_of_two() / 2 };
        Pof2 { p, rem: n - p }
    }

    /// Global rank of core member `c` (0 <= c < p).
    pub fn core_to_global(&self, c: usize) -> usize {
        if c < self.rem {
            2 * c // even members of the folded prefix
        } else {
            c + self.rem
        }
    }

    /// Core index of global rank `g`, or `None` if `g` folds away.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn global_to_core(&self, g: usize) -> Option<usize> {
        if g < 2 * self.rem {
            if g.is_multiple_of(2) {
                Some(g / 2)
            } else {
                None
            }
        } else {
            Some(g - self.rem)
        }
    }
}

/// Emit the fold-in pre-phase: odd ranks of the `2·rem` prefix send their
/// whole buffer to their even neighbour, which reduces.
pub(crate) fn pre_fold(s: &mut Schedule, pof2: &Pof2) {
    if pof2.rem == 0 {
        return;
    }
    let seg = Seg::whole(s.n_elems);
    let mut round = Round::empty(s.n_ranks);
    for i in 0..pof2.rem {
        let odd = 2 * i + 1;
        let even = 2 * i;
        round.per_rank[odd].push(Action::Send { peer: even, seg });
        round.per_rank[even].push(Action::RecvReduce { peer: odd, seg });
    }
    s.rounds.push(round);
}

/// Emit the fan-out post-phase: even prefix ranks return the final result
/// to their folded odd neighbours.
pub(crate) fn post_unfold(s: &mut Schedule, pof2: &Pof2) {
    if pof2.rem == 0 {
        return;
    }
    let seg = Seg::whole(s.n_elems);
    let mut round = Round::empty(s.n_ranks);
    for i in 0..pof2.rem {
        let odd = 2 * i + 1;
        let even = 2 * i;
        round.per_rank[even].push(Action::Send { peer: odd, seg });
        round.per_rank[odd].push(Action::RecvReplace { peer: even, seg });
    }
    s.rounds.push(round);
}

/// Recursive-doubling allreduce over `n_ranks` ranks.
pub fn allreduce(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let pof2 = Pof2::of(n_ranks);
    pre_fold(&mut s, &pof2);
    let seg = Seg::whole(n_elems);
    let mut mask = 1;
    while mask < pof2.p {
        let mut round = Round::empty(n_ranks);
        for c in 0..pof2.p {
            let partner = c ^ mask;
            let g = pof2.core_to_global(c);
            let pg = pof2.core_to_global(partner);
            round.per_rank[g].push(Action::Send { peer: pg, seg });
            round.per_rank[g].push(Action::RecvReduce { peer: pg, seg });
        }
        s.rounds.push(round);
        mask <<= 1;
    }
    post_unfold(&mut s, &pof2);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply_allreduce, assert_allreduce_result};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 31 + i * 7) % 13) as f32 - 6.0).collect())
            .collect()
    }

    #[test]
    fn pof2_decomposition() {
        let d = Pof2::of(6);
        assert_eq!((d.p, d.rem), (4, 2));
        let d = Pof2::of(8);
        assert_eq!((d.p, d.rem), (8, 0));
        let d = Pof2::of(1);
        assert_eq!((d.p, d.rem), (1, 0));
        let d = Pof2::of(132);
        assert_eq!((d.p, d.rem), (128, 4));
    }

    #[test]
    fn core_mapping_roundtrips() {
        let d = Pof2::of(11); // p=8, rem=3
        let mut cores = Vec::new();
        for g in 0..11 {
            if let Some(c) = d.global_to_core(g) {
                assert_eq!(d.core_to_global(c), g);
                cores.push(c);
            }
        }
        cores.sort_unstable();
        assert_eq!(cores, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn allreduce_power_of_two() {
        for &n in &[2usize, 4, 8, 16] {
            let s = allreduce(n, 10);
            s.validate().unwrap();
            assert_eq!(s.n_rounds(), n.trailing_zeros() as usize);
            let ins = inputs(n, 10);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn allreduce_non_power_of_two() {
        for &n in &[3usize, 5, 6, 7, 11, 12, 13] {
            let s = allreduce(n, 9);
            s.validate().unwrap_or_else(|e| panic!("n={n}: {e:?}"));
            let ins = inputs(n, 9);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn traffic_is_log_p_whole_buffers() {
        let (n, e) = (8usize, 100usize);
        let s = allreduce(n, e);
        assert_eq!(s.max_rank_sent_elems(), 3 * e, "log2(8) whole-buffer sends per rank");
    }

    #[test]
    fn non_pof2_adds_two_rounds() {
        assert_eq!(allreduce(6, 5).n_rounds(), 2 + 2); // fold + log2(4) + unfold
    }

    #[test]
    fn single_rank_empty() {
        assert_eq!(allreduce(1, 5).n_rounds(), 0);
    }

    #[test]
    fn average_through_rd() {
        let ins = inputs(6, 4);
        let mut bufs = ins.clone();
        apply_allreduce(&allreduce(6, 4), &mut bufs, ReduceOp::Average);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Average, 1e-4);
    }
}
