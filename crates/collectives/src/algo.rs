//! Algorithm selection: a closed enum of the allreduce algorithms this
//! crate implements, plus size-based selection helpers mirroring how MPI
//! libraries pick algorithms from tuning tables.

use crate::hierarchical::{self, LeaderAlgo, NodeGroups};
use crate::sched::Schedule;
use crate::{pipeline, rabenseifner, rd, ring, tree};

/// An allreduce algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    Ring,
    RecursiveDoubling,
    Rabenseifner,
    /// Binomial reduce + broadcast.
    Tree,
    /// Two-level: intra-node tree, inter-node `leader` among node leaders
    /// over groups of `per_node` ranks.
    Hierarchical {
        per_node: usize,
        leader: LeaderAlgo,
    },
    /// Ring with the buffer split into `chunks` interleaved pipelines
    /// (NCCL-style transfer/reduction overlap).
    ChunkedRing {
        chunks: usize,
    },
    /// Two-level reduce-scatter/allgather (multi-leader hierarchy);
    /// falls back to `Hierarchical` when ranks don't divide into uniform
    /// nodes of `per_node`.
    HierarchicalRsag {
        per_node: usize,
    },
}

impl Algorithm {
    /// Compile the algorithm to a schedule.
    pub fn build(&self, n_ranks: usize, n_elems: usize) -> Schedule {
        match *self {
            Algorithm::Ring => ring::allreduce(n_ranks, n_elems),
            Algorithm::RecursiveDoubling => rd::allreduce(n_ranks, n_elems),
            Algorithm::Rabenseifner => rabenseifner::allreduce(n_ranks, n_elems),
            Algorithm::Tree => tree::allreduce(n_ranks, n_elems),
            Algorithm::Hierarchical { per_node, leader } => {
                let groups = NodeGroups::dense(n_ranks, per_node);
                hierarchical::allreduce(n_ranks, n_elems, &groups, leader)
            }
            Algorithm::ChunkedRing { chunks } => pipeline::allreduce(n_ranks, n_elems, chunks),
            Algorithm::HierarchicalRsag { per_node } => {
                if n_ranks.is_multiple_of(per_node) {
                    hierarchical::allreduce_rsag(n_ranks, n_elems, per_node)
                } else {
                    let groups = NodeGroups::dense(n_ranks, per_node);
                    hierarchical::allreduce(n_ranks, n_elems, &groups, LeaderAlgo::Rabenseifner)
                }
            }
        }
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::Rabenseifner => "rabenseifner",
            Algorithm::Tree => "binomial-tree",
            Algorithm::Hierarchical { .. } => "hierarchical",
            Algorithm::ChunkedRing { .. } => "chunked-ring",
            Algorithm::HierarchicalRsag { .. } => "hierarchical-rsag",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Hierarchical { per_node, leader } => {
                write!(f, "hierarchical({per_node}/node, {leader:?})")
            }
            Algorithm::ChunkedRing { chunks } => write!(f, "chunked-ring({chunks})"),
            Algorithm::HierarchicalRsag { per_node } => {
                write!(f, "hierarchical-rsag({per_node}/node)")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply_allreduce, assert_allreduce_result};

    pub fn all_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::Ring,
            Algorithm::RecursiveDoubling,
            Algorithm::Rabenseifner,
            Algorithm::Tree,
            Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Ring },
            Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Rabenseifner },
            Algorithm::Hierarchical { per_node: 4, leader: LeaderAlgo::Tree },
            Algorithm::ChunkedRing { chunks: 4 },
            Algorithm::HierarchicalRsag { per_node: 6 },
            Algorithm::HierarchicalRsag { per_node: 4 },
        ]
    }

    #[test]
    fn every_algorithm_is_a_correct_allreduce() {
        for algo in all_algorithms() {
            for &(n, e) in &[(1usize, 5usize), (2, 9), (6, 20), (12, 7), (13, 64)] {
                let s = algo.build(n, e);
                s.verify_allreduce().unwrap_or_else(|err| panic!("{algo} n={n} e={e}: {err:?}"));
                let ins: Vec<Vec<f32>> = (0..n)
                    .map(|r| (0..e).map(|i| ((r * 7 + i) % 5) as f32 - 2.0).collect())
                    .collect();
                let mut bufs = ins.clone();
                apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
                assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::Ring.to_string(), "ring");
        assert_eq!(
            Algorithm::Hierarchical { per_node: 6, leader: LeaderAlgo::Ring }.to_string(),
            "hierarchical(6/node, Ring)"
        );
    }
}
