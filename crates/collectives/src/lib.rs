//! Collective communication algorithms for the Summit DLv3+ reproduction.
//!
//! Every algorithm — ring, recursive doubling, Rabenseifner
//! (halving-doubling), binomial trees, and the two-level hierarchical
//! composition — compiles to the same round-structured [`Schedule`]
//! representation, which three executors consume:
//!
//! * [`mod@reference`] — sequential oracle used by every correctness test;
//! * [`exec_sim`] — timing over the [`summit_sim`] fluid-flow simulator,
//!   parameterized by a [`exec_sim::CostModel`] (the MPI personalities);
//! * [`exec_thread`] — *real* data movement across OS threads over
//!   crossbeam channels, used by the numerical training experiments.
//!
//! Having one schedule drive both the clock and the data is the point:
//! the algorithm whose time we report is the algorithm the gradients
//! actually traverse.
//!
//! # Example
//!
//! ```
//! use collectives::{Algorithm, ReduceOp, exec_thread};
//!
//! let schedule = Algorithm::Ring.build(4, 1000);
//! let mut bufs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 1000]).collect();
//! exec_thread::allreduce(&schedule, &mut bufs, ReduceOp::Sum).unwrap();
//! assert!(bufs.iter().all(|b| b[0] == 6.0)); // 0+1+2+3
//! ```
//!
//! Fault tolerance lives in two layers on top of the same executor:
//! [`exec_fault`] runs a schedule under a seeded
//! [`faults::FaultPlan`] with CRC-checked, sequence-numbered resend
//! (drops and corruptions are repaired in place), and [`elastic`]
//! wraps it with crash recovery — when ranks die the collective is
//! aborted, the schedule is rebuilt over the survivors, re-verified,
//! and re-run.

pub mod algo;
pub mod analytic;
pub mod compression;
pub mod elastic;
pub mod exec_fault;
pub mod exec_peer;
pub mod exec_sim;
pub mod exec_thread;
pub mod exec_trace;
pub mod hierarchical;
pub mod pipeline;
pub mod rabenseifner;
pub mod rd;
pub mod reduce;
pub mod reference;
pub mod ring;
pub mod sched;
pub mod tree;

pub use algo::Algorithm;
pub use analytic::{allreduce_cost, crossover, AlphaBeta};
pub use compression::{codec_for, Codec, CodecKind, EncodeScratch, ErrorFeedback};
pub use elastic::{ElasticAllreduce, ElasticError, ElasticReport};
pub use exec_fault::FaultSession;
pub use exec_peer::{CtlSignal, PeerExecError, PeerExecutor, WireStats};
pub use exec_sim::{
    simulate, simulate_compressed, simulate_dense, CostModel, MsgParams, UniformCost, ELEM_BYTES,
};
pub use exec_thread::{ExecContext, ExecError, PoolCounters};
pub use exec_trace::ExecTrace;
pub use hierarchical::{LeaderAlgo, NodeGroups};
pub use reduce::ReduceOp;
pub use sched::{Action, Round, Rule, Schedule, Seg, Span, Violation};

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reference::{apply_allreduce, expected_allreduce};
    use proptest::prelude::*;

    fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
        prop_oneof![
            Just(Algorithm::Ring),
            Just(Algorithm::RecursiveDoubling),
            Just(Algorithm::Rabenseifner),
            Just(Algorithm::Tree),
            (
                2usize..=6,
                prop_oneof![
                    Just(LeaderAlgo::Ring),
                    Just(LeaderAlgo::Rabenseifner),
                    Just(LeaderAlgo::Tree)
                ]
            )
                .prop_map(|(per_node, leader)| Algorithm::Hierarchical { per_node, leader }),
            (1usize..=8).prop_map(|chunks| Algorithm::ChunkedRing { chunks }),
            (1usize..=6).prop_map(|per_node| Algorithm::HierarchicalRsag { per_node }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any algorithm, any rank count, any size: the schedule passes
        /// the full static verifier (structural, determinism, deadlock,
        /// coverage) and the reference execution equals the
        /// mathematical allreduce.
        #[test]
        fn schedules_validate_and_reduce_correctly(
            algo in arb_algorithm(),
            n in 1usize..20,
            e in 0usize..80,
            seed in 0u64..1000,
        ) {
            let s = algo.build(n, e);
            prop_assert_eq!(s.verify_allreduce(), Ok(()));
            let ins: Vec<Vec<f32>> = (0..n)
                .map(|r| {
                    (0..e)
                        .map(|i| {
                            let h = summit_metrics::rng::splitmix64(
                                seed ^ (r as u64) << 32 ^ i as u64,
                            );
                            ((h % 1000) as f32 / 100.0) - 5.0
                        })
                        .collect()
                })
                .collect();
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            let want = expected_allreduce(&ins, ReduceOp::Sum);
            for b in &bufs {
                for (g, w) in b.iter().zip(&want) {
                    prop_assert!((g - w).abs() < 1e-2, "got {} want {}", g, w);
                }
            }
        }

        /// The threaded executor agrees with the reference executor
        /// bit-for-bit (same combine order per rank).
        #[test]
        fn threads_match_reference_exactly(
            algo in arb_algorithm(),
            n in 1usize..10,
            e in 0usize..40,
        ) {
            let s = algo.build(n, e);
            let ins: Vec<Vec<f32>> = (0..n)
                .map(|r| (0..e).map(|i| ((r * 31 + i * 17) % 23) as f32 - 11.0).collect())
                .collect();
            let mut by_ref = ins.clone();
            apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
            let mut by_thr = ins.clone();
            exec_thread::allreduce(&s, &mut by_thr, ReduceOp::Sum).unwrap();
            prop_assert_eq!(by_ref, by_thr);
        }

        /// Per-rank sent traffic of ring and Rabenseifner stays within the
        /// bandwidth-optimal bound (2e elements, reached as p → ∞).
        #[test]
        fn bandwidth_optimal_algorithms_bounded_traffic(
            n in 2usize..33,
            e in 1usize..200,
        ) {
            for algo in [Algorithm::Ring, Algorithm::Rabenseifner] {
                let s = algo.build(n, e);
                // +n slack for odd-size halving imbalance; fold/unfold adds
                // up to 2e for non-power-of-two Rabenseifner.
                let bound = if n.is_power_of_two() { 2 * e + n } else { 4 * e + n };
                prop_assert!(
                    s.max_rank_sent_elems() <= bound,
                    "{:?}: {} > {}", algo, s.max_rank_sent_elems(), bound
                );
            }
        }

        /// Segment partition is a partition: covers, is contiguous, and
        /// is balanced to within one element.
        #[test]
        fn partition_invariants(len in 0usize..500, k in 1usize..40) {
            let segs = Seg::new(0, len).partition(k);
            prop_assert_eq!(segs.len(), k);
            prop_assert_eq!(segs.iter().map(|s| s.len).sum::<usize>(), len);
            for w in segs.windows(2) {
                prop_assert_eq!(w[0].end(), w[1].offset);
                prop_assert!(w[0].len >= w[1].len);
                prop_assert!(w[0].len - w[1].len <= 1);
            }
        }
    }
}
