//! Round-structured collective schedules.
//!
//! Every collective algorithm in this crate compiles to a [`Schedule`]: a
//! list of rounds, each holding the actions every rank issues in that
//! round. A rank's round `i + 1` actions begin when its own round `i`
//! actions complete — there is no global barrier, which matches both how
//! MPI collectives actually execute and how the simulator models them.
//!
//! The same schedule drives three executors:
//!
//! * [`crate::reference`] — sequential, for correctness oracles;
//! * [`crate::exec_sim`] — timing over the Summit simulator;
//! * [`crate::exec_thread`] — real data movement across OS threads.

pub use verifier::{Rule, Span, Violation};

/// A contiguous range of buffer *elements* (f32 words, not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seg {
    pub offset: usize,
    pub len: usize,
}

impl Seg {
    pub fn new(offset: usize, len: usize) -> Self {
        Seg { offset, len }
    }

    pub fn whole(n_elems: usize) -> Self {
        Seg { offset: 0, len: n_elems }
    }

    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Split into `(first, second)` halves; the first half gets the extra
    /// element of an odd length (both partners must agree on this rule).
    pub fn halves(&self) -> (Seg, Seg) {
        let first = self.len - self.len / 2;
        (Seg::new(self.offset, first), Seg::new(self.offset + first, self.len - first))
    }

    /// Near-equal partition into `k` consecutive pieces; the first
    /// `len % k` pieces get one extra element.
    pub fn partition(&self, k: usize) -> Vec<Seg> {
        assert!(k >= 1, "cannot partition into zero pieces");
        let base = self.len / k;
        let extra = self.len % k;
        let mut segs = Vec::with_capacity(k);
        let mut off = self.offset;
        for i in 0..k {
            let l = base + usize::from(i < extra);
            segs.push(Seg::new(off, l));
            off += l;
        }
        segs
    }
}

/// One communication action by one rank within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Send `seg` of the local buffer to `peer`. The payload is the
    /// buffer content *at the start of the round* (exchanges are safe).
    Send { peer: usize, seg: Seg },
    /// Receive `seg` from `peer` and combine element-wise (reduction).
    RecvReduce { peer: usize, seg: Seg },
    /// Receive `seg` from `peer` and overwrite.
    RecvReplace { peer: usize, seg: Seg },
}

impl Action {
    pub fn seg(&self) -> Seg {
        match *self {
            Action::Send { seg, .. }
            | Action::RecvReduce { seg, .. }
            | Action::RecvReplace { seg, .. } => seg,
        }
    }

    pub fn peer(&self) -> usize {
        match *self {
            Action::Send { peer, .. }
            | Action::RecvReduce { peer, .. }
            | Action::RecvReplace { peer, .. } => peer,
        }
    }

    pub fn is_send(&self) -> bool {
        matches!(self, Action::Send { .. })
    }
}

/// One round: `per_rank[r]` is what rank `r` issues.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Round {
    pub per_rank: Vec<Vec<Action>>,
}

impl Round {
    pub fn empty(n_ranks: usize) -> Self {
        Round { per_rank: vec![Vec::new(); n_ranks] }
    }
}

/// A complete collective schedule over `n_ranks` ranks and a buffer of
/// `n_elems` f32 elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub n_ranks: usize,
    pub n_elems: usize,
    pub rounds: Vec<Round>,
}

impl Schedule {
    pub fn new(n_ranks: usize, n_elems: usize) -> Self {
        assert!(n_ranks >= 1);
        Schedule { n_ranks, n_elems, rounds: Vec::new() }
    }

    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total payload elements sent across all ranks and rounds.
    pub fn total_sent_elems(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.per_rank.iter().flatten())
            .filter(|a| a.is_send())
            .map(|a| a.seg().len)
            .sum()
    }

    /// The largest number of elements any single rank sends in total —
    /// a proxy for the per-rank bandwidth term of the α–β cost model.
    pub fn max_rank_sent_elems(&self) -> usize {
        (0..self.n_ranks)
            .map(|r| {
                self.rounds
                    .iter()
                    .flat_map(|round| round.per_rank[r].iter())
                    .filter(|a| a.is_send())
                    .map(|a| a.seg().len)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    /// Lower this schedule to the verifier IR that `crates/verifier`'s
    /// analyses consume.
    pub fn to_ir(&self) -> verifier::ir::Schedule {
        let mut ir = verifier::ir::Schedule::new(self.n_ranks, self.n_elems);
        for round in &self.rounds {
            ir.rounds.push(
                round
                    .per_rank
                    .iter()
                    .map(|actions| {
                        actions
                            .iter()
                            .map(|a| {
                                let seg = a.seg();
                                let kind = match a {
                                    Action::Send { .. } => verifier::ir::OpKind::Send,
                                    Action::RecvReduce { .. } => verifier::ir::OpKind::RecvReduce,
                                    Action::RecvReplace { .. } => verifier::ir::OpKind::RecvReplace,
                                };
                                verifier::ir::Op {
                                    kind,
                                    peer: a.peer(),
                                    offset: seg.offset,
                                    len: seg.len,
                                }
                            })
                            .collect()
                    })
                    .collect(),
            );
        }
        ir
    }

    /// Statically verify this schedule: structural well-formedness
    /// (peers in range, segments in bounds, per-round send/receive
    /// matching, one message per ordered pair per round), reduction-
    /// order determinism, and deadlock-freedom via the verifier's
    /// happens-before analysis. Delegates to [`verifier::verify`]; all
    /// findings come back as structured [`Violation`]s instead of the
    /// first-error enum this method used to return.
    ///
    /// This holds for *any* schedule, including sub-collectives like a
    /// standalone reduce-scatter. Schedules claiming to be a complete
    /// allreduce should use [`Schedule::verify_allreduce`], which adds
    /// the contribution-coverage postcondition.
    pub fn validate(&self) -> Result<(), Vec<Violation>> {
        let v = verifier::verify(&self.to_ir());
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// [`Schedule::validate`] plus the allreduce postcondition: every
    /// rank ends holding exactly one copy of every rank's initial
    /// contribution on every element (no double-counted or orphaned
    /// offsets anywhere in the chunk partition).
    pub fn verify_allreduce(&self) -> Result<(), Vec<Violation>> {
        let v = verifier::verify_allreduce(&self.to_ir());
        if v.is_empty() {
            Ok(())
        } else {
            Err(v)
        }
    }

    /// A stable hash of every rank's combine order (see
    /// [`verifier::determinism::fingerprint`]): equal fingerprints mean
    /// bit-identical reduction order on every rank.
    pub fn combine_order_fingerprint(&self) -> u64 {
        verifier::determinism::fingerprint(&self.to_ir())
    }

    /// A copy of this schedule with every segment shifted by `offset`
    /// into a larger element space of `n_elems` — how sub-range
    /// collectives (chunk pipelines, shard-wise phases) are composed.
    pub fn shifted(&self, offset: usize, n_elems: usize) -> Schedule {
        let mut out = Schedule::new(self.n_ranks, n_elems);
        for round in &self.rounds {
            let mut new_round = Round::empty(self.n_ranks);
            for (rank, actions) in round.per_rank.iter().enumerate() {
                for a in actions {
                    let seg = a.seg();
                    assert!(seg.end() + offset <= n_elems, "shift out of range");
                    let s = Seg::new(seg.offset + offset, seg.len);
                    let na = match *a {
                        Action::Send { peer, .. } => Action::Send { peer, seg: s },
                        Action::RecvReduce { peer, .. } => Action::RecvReduce { peer, seg: s },
                        Action::RecvReplace { peer, .. } => Action::RecvReplace { peer, seg: s },
                    };
                    new_round.per_rank[rank].push(na);
                }
            }
            out.rounds.push(new_round);
        }
        out
    }

    /// Embed `sub` (a schedule over a subgroup) into this schedule:
    /// `map[sub_rank]` is the global rank. Sub-round `i` lands in global
    /// round `round_offset + i`, extending `rounds` as needed. Disjoint
    /// subgroups may be embedded at the same offset to run concurrently.
    pub fn embed(&mut self, sub: &Schedule, map: &[usize], round_offset: usize) {
        assert_eq!(map.len(), sub.n_ranks, "map must cover the subgroup");
        assert_eq!(sub.n_elems, self.n_elems, "element spaces must agree");
        for &g in map {
            assert!(g < self.n_ranks, "mapped rank {g} out of range");
        }
        while self.rounds.len() < round_offset + sub.rounds.len() {
            self.rounds.push(Round::empty(self.n_ranks));
        }
        for (i, round) in sub.rounds.iter().enumerate() {
            let dst = &mut self.rounds[round_offset + i];
            for (sr, actions) in round.per_rank.iter().enumerate() {
                let g = map[sr];
                for a in actions {
                    let remapped = match *a {
                        Action::Send { peer, seg } => Action::Send { peer: map[peer], seg },
                        Action::RecvReduce { peer, seg } => {
                            Action::RecvReduce { peer: map[peer], seg }
                        }
                        Action::RecvReplace { peer, seg } => {
                            Action::RecvReplace { peer: map[peer], seg }
                        }
                    };
                    dst.per_rank[g].push(remapped);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_halves_cover() {
        let s = Seg::new(3, 7);
        let (a, b) = s.halves();
        assert_eq!(a, Seg::new(3, 4));
        assert_eq!(b, Seg::new(7, 3));
        assert_eq!(a.len + b.len, s.len);
        assert_eq!(b.end(), s.end());
    }

    #[test]
    fn seg_partition_covers_and_balances() {
        let s = Seg::new(0, 10);
        let parts = s.partition(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len).sum::<usize>(), 10);
        assert_eq!(parts[0], Seg::new(0, 3));
        assert_eq!(parts[1], Seg::new(3, 3));
        assert_eq!(parts[2], Seg::new(6, 2));
        assert_eq!(parts[3], Seg::new(8, 2));
        // contiguity
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].offset);
        }
    }

    #[test]
    fn seg_partition_more_pieces_than_elems() {
        let parts = Seg::new(0, 2).partition(5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        assert_eq!(parts.iter().map(|p| p.len).sum::<usize>(), 2);
    }

    fn exchange(n_elems: usize) -> Schedule {
        let mut s = Schedule::new(2, n_elems);
        let seg = Seg::whole(n_elems);
        let mut r = Round::empty(2);
        r.per_rank[0] = vec![Action::Send { peer: 1, seg }, Action::RecvReduce { peer: 1, seg }];
        r.per_rank[1] = vec![Action::Send { peer: 0, seg }, Action::RecvReduce { peer: 0, seg }];
        s.rounds.push(r);
        s
    }

    /// The rules the first (or only) violation of a broken schedule hits.
    fn rules(s: &Schedule) -> Vec<Rule> {
        s.validate().unwrap_err().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn validate_accepts_exchange() {
        assert_eq!(exchange(8).validate(), Ok(()));
        assert_eq!(exchange(8).verify_allreduce(), Ok(()));
    }

    #[test]
    fn validate_catches_unmatched_send_and_recv() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[1].clear();
        let r = rules(&s);
        assert!(r.contains(&Rule::UnmatchedSend), "{r:?}");
        assert!(r.contains(&Rule::UnmatchedRecv), "{r:?}");
    }

    #[test]
    fn validate_catches_seg_mismatch() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[1][1] = Action::RecvReduce { peer: 0, seg: Seg::new(0, 4) };
        assert!(rules(&s).contains(&Rule::SegMismatch));
    }

    #[test]
    fn validate_catches_self_message() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[0][0] = Action::Send { peer: 0, seg: Seg::whole(8) };
        assert!(rules(&s).contains(&Rule::SelfMessage));
    }

    #[test]
    fn validate_catches_out_of_range_seg() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[0][0] = Action::Send { peer: 1, seg: Seg::new(4, 8) };
        assert!(rules(&s).contains(&Rule::SegOutOfRange));
    }

    #[test]
    fn validate_catches_duplicate_pair() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[0].push(Action::Send { peer: 1, seg: Seg::new(0, 1) });
        assert!(rules(&s).contains(&Rule::DuplicatePair));
    }

    #[test]
    fn violations_carry_round_and_span() {
        let mut s = exchange(8);
        s.rounds[0].per_rank[0][0] = Action::Send { peer: 1, seg: Seg::new(4, 8) };
        let v = s.validate().unwrap_err();
        let seg_v = v.iter().find(|x| x.rule == Rule::SegOutOfRange).unwrap();
        assert_eq!(seg_v.round, Some(0));
        assert_eq!(seg_v.span, Some(Span::new(4, 8)));
        assert_eq!(seg_v.ranks, vec![0]);
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_send_order() {
        let s = exchange(16);
        assert_eq!(s.combine_order_fingerprint(), s.clone().combine_order_fingerprint());
        // Moving sends around doesn't change the combine order...
        let mut reordered = s.clone();
        reordered.rounds[0].per_rank[0].swap(0, 1);
        assert_eq!(s.combine_order_fingerprint(), reordered.combine_order_fingerprint());
        // ...but a different segment does.
        let shifted = s.shifted(4, 24);
        assert_ne!(s.combine_order_fingerprint(), shifted.combine_order_fingerprint());
    }

    #[test]
    fn total_and_max_sent() {
        let s = exchange(8);
        assert_eq!(s.total_sent_elems(), 16);
        assert_eq!(s.max_rank_sent_elems(), 8);
    }

    #[test]
    fn embed_remaps_and_extends() {
        let sub = exchange(8); // 2-rank exchange
        let mut global = Schedule::new(6, 8);
        global.embed(&sub, &[2, 5], 0);
        global.embed(&sub, &[0, 3], 0); // disjoint group, same round
        assert_eq!(global.n_rounds(), 1);
        assert_eq!(global.validate(), Ok(()));
        assert_eq!(global.rounds[0].per_rank[2][0].peer(), 5);
        assert_eq!(global.rounds[0].per_rank[1].len(), 0);
        // embedding at a later offset pads with empty rounds
        global.embed(&sub, &[1, 4], 3);
        assert_eq!(global.n_rounds(), 4);
        assert_eq!(global.validate(), Ok(()));
        assert!(global.rounds[1].per_rank.iter().all(Vec::is_empty));
    }
}
