//! Fault-aware schedule execution: drops, corruptions, stragglers, and
//! crashes injected from a seeded [`FaultPlan`], survived by a
//! sequence-numbered resend protocol.
//!
//! This is a *separate* path from [`exec_thread`](crate::exec_thread)'s
//! plain `run` on purpose: the plain hot path keeps its zero-overhead,
//! zero-allocation guarantees, while this path pays for per-payload
//! CRCs, resend buffering, and deadline bookkeeping only when a caller
//! explicitly opts in with a [`FaultSession`].
//!
//! # Protocol
//!
//! Every ordered rank pair gets two channels: a **data** channel
//! carrying [`FMsg`] (round, offset, sequence number, CRC32, payload)
//! and a reverse **control** channel carrying [`Ctl`] acks and nacks.
//! Senders keep a clean copy of every un-acked payload in a
//! sequence-indexed resend buffer; receivers track the next expected
//! sequence number per peer, stash out-of-order arrivals, discard
//! duplicates idempotently, and CRC-check every payload before applying
//! it. A receive that misses its deadline nacks the missing sequence
//! number and backs off exponentially ([`RetryPolicy`]); a nack makes
//! the sender re-send the clean buffered copy, so a dropped or
//! corrupted message is repaired without any rank ever applying dirty
//! bytes. Injected faults touch only the wire copy — the resend buffer
//! always holds clean data — which is why the *numeric result under
//! faults is bit-identical to the fault-free run*: the applied payloads
//! and the per-rank combine order are exactly those of the schedule.
//!
//! # Crashes and abort
//!
//! A plan-crashed rank logs the injection and exits at the scheduled
//! round, dropping its channel endpoints. A peer blocked on data the
//! dead rank never sent observes `Disconnected` (after draining
//! whatever *was* sent), declares the peer dead, and aborts; the abort
//! cascades the same way. Because std channels deliver everything that
//! was sent before a disconnect surfaces, each rank's abort point — and
//! hence the whole cascade and every [`FaultEvent::PeerDead`] — is a
//! function of the schedule and the plan, not of thread timing. The
//! collective returns [`ExecError::RanksDead`]; buffers are partial and
//! the [`elastic`](crate::elastic) layer owns restoring them and
//! rebuilding over the survivors.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use faults::{
    crc32, EventLog, FaultClock, FaultEvent, FaultKind, FaultPlan, RetryPolicy, SendFault,
};
use parking_lot::Mutex;
use summit_metrics::FaultCounters;

use trace::Lane;

use crate::exec_thread::{ExecContext, ExecError, PayloadPool};
use crate::exec_trace::ExecTrace;
use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule};

/// A data message on the faulty path. `seq` numbers the (sender,
/// receiver) stream from zero; `crc` covers `payload` only.
#[derive(Debug)]
struct FMsg {
    round: usize,
    offset: usize,
    seq: u64,
    crc: u32,
    payload: Vec<f32>,
}

/// Control traffic flowing from a data receiver back to the sender.
#[derive(Debug, Clone, Copy)]
enum Ctl {
    /// `seq` was applied (or was a duplicate of an applied message):
    /// the sender may drop its resend-buffer entry.
    Ack { seq: u64 },
    /// `seq` is missing or arrived corrupted: re-send the clean copy.
    Nack { seq: u64 },
}

/// Everything one fault-aware run (or one training run of many steps)
/// shares: the plan, the retry policy, the delay clock, and the
/// observability sinks. Cheap to share by reference across rank
/// threads; bump the step counter between collectives so plan
/// injections keyed by training step land on the right one.
#[derive(Debug, Default)]
pub struct FaultSession {
    plan: FaultPlan,
    policy: RetryPolicy,
    clock: FaultClock,
    counters: FaultCounters,
    events: EventLog,
    step: AtomicUsize,
    /// Trace lanes keyed by *original* rank id (the ids the plan and
    /// the event log speak), so a rank keeps its trace row across
    /// elastic renumberings. `None` ⇔ the fault path runs untraced.
    trace: Option<ExecTrace>,
}

impl FaultSession {
    /// A session around `plan` with default policy and a virtual clock
    /// (injected delays are accounted, not slept).
    pub fn new(plan: FaultPlan) -> Self {
        FaultSession { plan, ..Default::default() }
    }

    /// Override the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Use a real clock: injected straggler delays actually sleep, so
    /// the timeout/retry machinery is exercised under wall-clock skew.
    pub fn with_real_delays(mut self) -> Self {
        self.clock = FaultClock::real();
        self
    }

    /// Attach trace lanes (keyed by original rank id): every rank
    /// thread records SEND/RECV spans, RETRY events for the resend
    /// machinery, and FAULT events for the injections it suffers.
    pub fn with_trace(mut self, trace: ExecTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    pub fn trace(&self) -> Option<&ExecTrace> {
        self.trace.as_ref()
    }

    /// Set the training step the next collectives belong to.
    pub fn begin_step(&self, step: usize) {
        self.step.store(step, Ordering::Relaxed); // lint: allow(relaxed): step tag on trace rows only; ordered by the caller's step loop
    }

    pub fn step(&self) -> usize {
        self.step.load(Ordering::Relaxed) // lint: allow(relaxed): step tag on trace rows only; ordered by the caller's step loop
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    pub fn clock(&self) -> &FaultClock {
        &self.clock
    }

    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    pub fn events(&self) -> &EventLog {
        &self.events
    }
}

/// One sender-side resend-buffer entry: the clean payload plus enough
/// header to reconstruct the exact message on a nack.
struct PendingSend {
    seq: u64,
    round: usize,
    offset: usize,
    crc: u32,
    clean: Vec<f32>,
}

/// Why a rank thread stopped short of completing the schedule.
enum RankOutcome {
    Done,
    /// The plan crashed this rank (self-report; the authoritative
    /// source for the aggregate dead set).
    Crashed,
    /// A peer's channels closed before it delivered data this rank was
    /// still owed — the peer crashed or aborted. `peer` is local; the
    /// round is in the logged [`FaultEvent::PeerDead`].
    PeerStopped {
        peer: usize,
    },
    /// The retry budget ran out on a silent but connected peer.
    Exhausted {
        peer: usize,
        round: usize,
    },
}

impl ExecContext {
    /// Execute `schedule` under `session`'s fault plan, one thread per
    /// rank. `rank_ids[local]` is the *original* (world) rank id of
    /// each buffer — the plan and the event log speak original ids, so
    /// a plan stays addressable after elastic degradation renumbers the
    /// survivors.
    ///
    /// On [`ExecError::RanksDead`] the buffers are partial; callers
    /// must restore them (see [`ElasticAllreduce`](crate::elastic::ElasticAllreduce)).
    pub fn run_with_faults(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        session: &FaultSession,
        rank_ids: &[usize],
    ) -> Result<(), ExecError> {
        self.preflight(schedule, buffers)?;
        assert_eq!(rank_ids.len(), schedule.n_ranks, "need one original rank id per schedule rank");
        let n = schedule.n_ranks;
        if n == 1 || schedule.rounds.is_empty() {
            return Ok(());
        }
        self.pool().reserve_hint(schedule.n_elems);

        // data: s -> d; ctl: d -> s (acks/nacks about that data).
        let mut data_tx: Vec<Vec<Option<Sender<FMsg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut data_rx: Vec<Vec<Option<Receiver<FMsg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut ctl_tx: Vec<Vec<Option<Sender<Ctl>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut ctl_rx: Vec<Vec<Option<Receiver<Ctl>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let (dt, dr) = unbounded();
                    data_tx[s][d] = Some(dt);
                    data_rx[d][s] = Some(dr);
                    let (ct, cr) = unbounded();
                    ctl_tx[d][s] = Some(ct);
                    ctl_rx[s][d] = Some(cr);
                }
            }
        }

        let outcomes: Mutex<Vec<Option<RankOutcome>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for (rank, buf) in buffers.iter_mut().enumerate() {
                let io = RankIo {
                    rank,
                    orig: rank_ids[rank],
                    step: session.step(),
                    data_tx: std::mem::take(&mut data_tx[rank]),
                    data_rx: std::mem::take(&mut data_rx[rank]),
                    ctl_tx: std::mem::take(&mut ctl_tx[rank]),
                    ctl_rx: std::mem::take(&mut ctl_rx[rank]),
                    next_seq: vec![0; n],
                    pending: (0..n).map(|_| VecDeque::new()).collect(),
                    expected: vec![0; n],
                    stash: (0..n).map(|_| BTreeMap::new()).collect(),
                    pool: self.pool(),
                    session,
                    rank_ids,
                    lane: session.trace().and_then(|t| t.lane(rank_ids[rank])).cloned(),
                };
                let outcomes = &outcomes;
                let sched = &*schedule;
                scope.spawn(move || {
                    let out = rank_main_fault(io, buf, sched, op);
                    outcomes.lock()[rank] = Some(out);
                });
            }
        });

        let outs = outcomes.into_inner();
        let dead: Vec<usize> = outs
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Some(RankOutcome::Crashed)))
            .map(|(r, _)| r)
            .collect();
        if !dead.is_empty() {
            return Err(ExecError::RanksDead { dead });
        }
        // A peer stopped without a crash injection on record: surface
        // the suspects so the caller still gets a actionable dead set.
        let suspects: Vec<usize> = {
            let mut s: Vec<usize> = outs
                .iter()
                .filter_map(|o| match o {
                    Some(RankOutcome::PeerStopped { peer, .. }) => Some(*peer),
                    _ => None,
                })
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        if !suspects.is_empty() {
            return Err(ExecError::RanksDead { dead: suspects });
        }
        if let Some((rank, peer, round)) = outs.iter().enumerate().find_map(|(r, o)| match o {
            Some(RankOutcome::Exhausted { peer, round }) => Some((r, *peer, *round)),
            _ => None,
        }) {
            return Err(ExecError::RetriesExhausted { rank, peer, round });
        }
        Ok(())
    }

    /// [`ExecContext::run_with_faults`] plus op finalization — the
    /// fault-path analogue of [`ExecContext::allreduce`].
    pub fn allreduce_with_faults(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        session: &FaultSession,
        rank_ids: &[usize],
    ) -> Result<(), ExecError> {
        self.run_with_faults(schedule, buffers, op, session, rank_ids)?;
        for b in buffers.iter_mut() {
            finalize(op, b, schedule.n_ranks);
        }
        Ok(())
    }
}

/// Per-rank channel endpoints and protocol state, threaded through the
/// helpers so signatures stay sane.
struct RankIo<'a> {
    rank: usize,
    orig: usize,
    step: usize,
    data_tx: Vec<Option<Sender<FMsg>>>,
    data_rx: Vec<Option<Receiver<FMsg>>>,
    ctl_tx: Vec<Option<Sender<Ctl>>>,
    ctl_rx: Vec<Option<Receiver<Ctl>>>,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Un-acked sends per destination, oldest first.
    pending: Vec<VecDeque<PendingSend>>,
    /// Next expected sequence number per source.
    expected: Vec<u64>,
    /// Out-of-order arrivals per source, keyed by sequence number.
    stash: Vec<BTreeMap<u64, FMsg>>,
    pool: &'a PayloadPool,
    session: &'a FaultSession,
    rank_ids: &'a [usize],
    /// This rank's trace lane (pid = original id), if tracing is on.
    lane: Option<Lane>,
}

impl RankIo<'_> {
    /// Send one payload, applying the round's injected send fault (if
    /// any) to the wire copy only; the resend buffer keeps clean bytes.
    fn send_payload(
        &mut self,
        peer: usize,
        round: usize,
        offset: usize,
        src: &[f32],
        fault: Option<SendFault>,
    ) {
        let t0 = self.lane.as_ref().map(Lane::now_us);
        let clean = self.pool.acquire_copy(src);
        let crc = crc32(&clean);
        let seq = self.next_seq[peer];
        self.next_seq[peer] += 1;
        let dropped = fault == Some(SendFault::Drop);
        if !dropped {
            let mut wire = self.pool.acquire_copy(&clean);
            if fault == Some(SendFault::Corrupt) {
                if let Some(x) = wire.first_mut() {
                    *x = f32::from_bits(x.to_bits() ^ 1);
                }
            }
            let msg = FMsg { round, offset, seq, crc, payload: wire };
            let tx = self.data_tx[peer].as_ref().expect("no self-sends"); // lint: allow(unwrap): channel exists for every schedule peer
            if let Err(e) = tx.send(msg) {
                // Peer already gone; death is detected on the receive
                // side. Reclaim the wire copy.
                self.pool.release(e.0.payload);
            }
        }
        self.pending[peer].push_back(PendingSend { seq, round, offset, crc, clean });
        if let (Some(l), Some(t0)) = (self.lane.as_ref(), t0) {
            l.record_args("SEND", "send", t0, l.now_us() - t0, self.rank_ids[peer] as u64, seq);
        }
    }

    /// Drain every control channel, clearing acked resend-buffer
    /// entries and answering nacks with clean re-sends.
    fn service_ctl(&mut self) {
        for peer in 0..self.ctl_rx.len() {
            while let Some(rx) = &self.ctl_rx[peer] {
                let ctl = match rx.try_recv() {
                    Ok(c) => c,
                    Err(_) => break, // empty or disconnected: nothing to service
                };
                self.handle_ctl(peer, ctl);
            }
        }
    }

    fn handle_ctl(&mut self, peer: usize, ctl: Ctl) {
        match ctl {
            Ctl::Ack { seq } => {
                if let Some(pos) = self.pending[peer].iter().position(|p| p.seq == seq) {
                    let entry = self.pending[peer].remove(pos).expect("position just found"); // lint: allow(unwrap): position just found by iter().position
                    self.pool.release(entry.clean);
                }
            }
            Ctl::Nack { seq } => {
                // Resend iff still buffered; a nack for an already-acked
                // or not-yet-assigned seq is a benign race.
                if let Some(entry) = self.pending[peer].iter().find(|p| p.seq == seq) {
                    let wire = self.pool.acquire_copy(&entry.clean);
                    let msg = FMsg {
                        round: entry.round,
                        offset: entry.offset,
                        seq: entry.seq,
                        crc: entry.crc,
                        payload: wire,
                    };
                    let tx = self.data_tx[peer].as_ref().expect("no self-sends"); // lint: allow(unwrap): channel exists for every schedule peer
                    if let Err(e) = tx.send(msg) {
                        self.pool.release(e.0.payload);
                        return;
                    }
                    if let Some(l) = &self.lane {
                        l.record_args(
                            "RETRY",
                            "resend",
                            l.now_us(),
                            0.0,
                            self.rank_ids[peer] as u64,
                            seq,
                        );
                    }
                    FaultCounters::bump(&self.session.counters().resends);
                    self.session.events().push(FaultEvent::Resend {
                        step: self.step,
                        rank: self.orig,
                        peer: self.rank_ids[peer],
                        seq,
                    });
                }
            }
        }
    }

    fn ack(&self, peer: usize, seq: u64) {
        if let Some(tx) = &self.ctl_tx[peer] {
            let _ = tx.send(Ctl::Ack { seq }); // peer gone: nothing to clear
        }
    }

    fn nack(&self, peer: usize, seq: u64) {
        if let Some(tx) = &self.ctl_tx[peer] {
            let _ = tx.send(Ctl::Nack { seq });
        }
    }

    /// Receive, validate, and apply the next in-sequence message from
    /// `peer` for the given action. Returns the outcome that aborts the
    /// rank, or `None` on success.
    fn recv_apply(
        &mut self,
        buf: &mut [f32],
        peer: usize,
        round_idx: usize,
        action: &Action,
        op: ReduceOp,
    ) -> Option<RankOutcome> {
        let policy = self.session.policy();
        let mut attempt: u32 = 0;
        let mut deadline = policy.base;
        let mut waited = Duration::ZERO;
        let t0 = self.lane.as_ref().map(Lane::now_us);
        loop {
            let want = self.expected[peer];
            // Out-of-order arrivals may already hold the wanted seq.
            let stashed = self.stash[peer].remove(&want);
            let recv = match stashed {
                Some(m) => Ok(m),
                None => {
                    let rx = self.data_rx[peer].as_ref().expect("no self-recvs"); // lint: allow(unwrap): channel exists for every schedule peer
                    rx.recv_timeout(policy.tick)
                }
            };
            let msg = match recv {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    self.session.clock().note_wait(policy.tick);
                    waited += policy.tick;
                    self.service_ctl();
                    if waited >= deadline {
                        attempt += 1;
                        if let Some(l) = &self.lane {
                            l.record_args(
                                "RETRY",
                                "timeout",
                                l.now_us(),
                                0.0,
                                self.rank_ids[peer] as u64,
                                attempt as u64,
                            );
                        }
                        FaultCounters::bump(&self.session.counters().timeouts);
                        self.session.events().push(FaultEvent::RetryTimeout {
                            step: self.step,
                            rank: self.orig,
                            peer: self.rank_ids[peer],
                            round: round_idx,
                            attempt,
                        });
                        if attempt >= policy.max_attempts {
                            return Some(RankOutcome::Exhausted { peer, round: round_idx });
                        }
                        self.nack(peer, want);
                        deadline *= policy.factor;
                        waited = Duration::ZERO;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Everything the peer ever sent has been drained
                    // and it still owes us this message: it crashed
                    // or aborted before sending it.
                    if let Some(l) = &self.lane {
                        l.record_args(
                            "FAULT",
                            "peer_dead",
                            l.now_us(),
                            0.0,
                            self.rank_ids[peer] as u64,
                            round_idx as u64,
                        );
                    }
                    FaultCounters::bump(&self.session.counters().rank_deaths);
                    self.session.events().push(FaultEvent::PeerDead {
                        step: self.step,
                        rank: self.orig,
                        peer: self.rank_ids[peer],
                        round: round_idx,
                    });
                    return Some(RankOutcome::PeerStopped { peer });
                }
            };
            if msg.seq < want {
                // Duplicate of an applied message (timeout-nack raced a
                // slow original). Re-ack so the sender clears it.
                FaultCounters::bump(&self.session.counters().duplicates_dropped);
                self.session.events().push(FaultEvent::DuplicateDropped {
                    step: self.step,
                    rank: self.orig,
                    peer: self.rank_ids[peer],
                    seq: msg.seq,
                });
                self.ack(peer, msg.seq);
                self.pool.release(msg.payload);
                continue;
            }
            if msg.seq > want {
                self.stash[peer].insert(msg.seq, msg);
                continue;
            }
            if crc32(&msg.payload) != msg.crc {
                if let Some(l) = &self.lane {
                    l.record_args(
                        "RETRY",
                        "crc_reject",
                        l.now_us(),
                        0.0,
                        self.rank_ids[peer] as u64,
                        msg.seq,
                    );
                }
                FaultCounters::bump(&self.session.counters().crc_rejects);
                self.session.events().push(FaultEvent::CrcReject {
                    step: self.step,
                    rank: self.orig,
                    peer: self.rank_ids[peer],
                    round: round_idx,
                    seq: msg.seq,
                });
                self.nack(peer, msg.seq);
                self.pool.release(msg.payload);
                continue;
            }
            // In-sequence and clean: this must be the awaited message —
            // seq order equals schedule order within a pair, corruption
            // can only touch payload bits, and the CRC just passed.
            let seg = match *action {
                Action::RecvReduce { seg, .. } | Action::RecvReplace { seg, .. } => seg,
                Action::Send { .. } => unreachable!("recv_apply called on a send"),
            };
            assert_eq!(msg.round, round_idx, "rank {}: out-of-round message", self.rank);
            assert_eq!(msg.offset, seg.offset, "rank {}: segment mismatch", self.rank);
            assert_eq!(msg.payload.len(), seg.len, "rank {}: length mismatch", self.rank);
            self.ack(peer, msg.seq);
            self.expected[peer] = want + 1;
            match action {
                Action::RecvReduce { .. } => {
                    combine(op, &mut buf[seg.offset..seg.end()], &msg.payload)
                }
                Action::RecvReplace { .. } => {
                    buf[seg.offset..seg.end()].copy_from_slice(&msg.payload)
                }
                Action::Send { .. } => unreachable!(),
            }
            self.pool.release(msg.payload);
            if let (Some(l), Some(t0)) = (self.lane.as_ref(), t0) {
                l.record_args(
                    "RECV",
                    "recv",
                    t0,
                    l.now_us() - t0,
                    self.rank_ids[peer] as u64,
                    want,
                );
            }
            return None;
        }
    }

    /// After the schedule completes: stay alive answering nacks until
    /// every send is acked or the un-acking peers are gone, bounded by
    /// one full retry budget per peer so a wedged peer cannot pin us.
    fn drain_pending(&mut self) {
        let policy = self.session.policy();
        let budget: Duration =
            (0..policy.max_attempts).map(|a| policy.base * policy.factor.pow(a)).sum();
        for peer in 0..self.pending.len() {
            let mut waited = Duration::ZERO;
            while !self.pending[peer].is_empty() && waited < budget {
                let ctl = match &self.ctl_rx[peer] {
                    Some(rx) => rx.recv_timeout(policy.tick),
                    None => break,
                };
                match ctl {
                    Ok(c) => self.handle_ctl(peer, c),
                    Err(RecvTimeoutError::Timeout) => {
                        self.session.clock().note_wait(policy.tick);
                        waited += policy.tick;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Whatever is still un-acked goes back to the pool: the
            // peer is gone (dead or aborted) or out of budget.
            while let Some(entry) = self.pending[peer].pop_front() {
                self.pool.release(entry.clean);
            }
        }
    }

    /// Return every parked protocol buffer to the pool on abort paths.
    fn scrap(&mut self) {
        for peer in 0..self.pending.len() {
            while let Some(entry) = self.pending[peer].pop_front() {
                self.pool.release(entry.clean);
            }
            let stash = std::mem::take(&mut self.stash[peer]);
            for (_, msg) in stash {
                self.pool.release(msg.payload);
            }
        }
    }
}

fn rank_main_fault(
    mut io: RankIo<'_>,
    buf: &mut [f32],
    schedule: &Schedule,
    op: ReduceOp,
) -> RankOutcome {
    let plan: &FaultPlan = io.session.plan();
    let (step, orig) = (io.step, io.orig);
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        if plan.crashes_at(step, orig, round_idx) {
            if let Some(l) = &io.lane {
                l.record_args("FAULT", "crash", l.now_us(), 0.0, orig as u64, round_idx as u64);
            }
            FaultCounters::bump(&io.session.counters().injected_crashes);
            io.session.events().push(FaultEvent::Injected {
                step,
                rank: orig,
                round: round_idx,
                kind: FaultKind::Crash,
            });
            io.scrap();
            return RankOutcome::Crashed; // channel endpoints drop here
        }
        if let Some(delay) = plan.straggle(step, orig, round_idx) {
            if let Some(l) = &io.lane {
                l.record_args(
                    "FAULT",
                    "straggle",
                    l.now_us(),
                    0.0,
                    orig as u64,
                    delay.as_millis() as u64,
                );
            }
            FaultCounters::bump(&io.session.counters().injected_straggles);
            io.session.events().push(FaultEvent::Injected {
                step,
                rank: orig,
                round: round_idx,
                kind: FaultKind::Straggle { millis: delay.as_millis() as u64 },
            });
            io.session.clock().inject(delay);
        }
        let actions = &round.per_rank[io.rank];
        let fault = plan.send_fault(step, orig, round_idx);
        if fault.is_some() && actions.iter().any(|a| a.is_send()) {
            let kind = match fault {
                Some(SendFault::Drop) => {
                    FaultCounters::bump(&io.session.counters().injected_drops);
                    FaultKind::Drop
                }
                Some(SendFault::Corrupt) => {
                    FaultCounters::bump(&io.session.counters().injected_corruptions);
                    FaultKind::Corrupt
                }
                None => unreachable!(),
            };
            if let Some(l) = &io.lane {
                let name = if matches!(kind, FaultKind::Drop) { "drop" } else { "corrupt" };
                l.record_args("FAULT", name, l.now_us(), 0.0, orig as u64, round_idx as u64);
            }
            io.session.events().push(FaultEvent::Injected {
                step,
                rank: orig,
                round: round_idx,
                kind,
            });
        }
        // Phase A: snapshot-and-send, exactly like the plain path but
        // with headers, resend buffering, and the injected send fault.
        for a in actions {
            if let Action::Send { peer, seg } = *a {
                io.send_payload(peer, round_idx, seg.offset, &buf[seg.offset..seg.end()], fault);
            }
        }
        io.service_ctl();
        // Phase B: blocking, validated receives in action order.
        for a in actions {
            match *a {
                Action::Send { .. } => {}
                Action::RecvReduce { peer, .. } | Action::RecvReplace { peer, .. } => {
                    if let Some(outcome) = io.recv_apply(buf, peer, round_idx, a, op) {
                        io.scrap();
                        return outcome;
                    }
                }
            }
        }
    }
    io.drain_pending();
    io.scrap();
    RankOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_allreduce;
    use crate::{rd, ring};
    use faults::{FaultSpec, Injection};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 29 + i * 5) % 17) as f32 * 0.5 - 4.0).collect())
            .collect()
    }

    fn ids(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn empty_plan_matches_reference_bit_for_bit() {
        let (n, e) = (4usize, 64usize);
        let s = ring::allreduce(n, e);
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut by_fault = ins.clone();
        let session = FaultSession::new(FaultPlan::none());
        let ctx = ExecContext::for_schedule(&s).unwrap();
        ctx.allreduce_with_faults(&s, &mut by_fault, ReduceOp::Sum, &session, &ids(n)).unwrap();
        assert_eq!(by_ref, by_fault);
        assert!(session.events().is_empty());
    }

    #[test]
    fn dropped_payloads_are_recovered_exactly() {
        let (n, e) = (4usize, 32usize);
        let s = ring::allreduce(n, e);
        let plan = FaultPlan::explicit(
            1,
            vec![
                Injection { step: 0, rank: 1, round: 0, kind: FaultKind::Drop },
                Injection { step: 0, rank: 3, round: 2, kind: FaultKind::Drop },
            ],
        );
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut bufs = ins.clone();
        let session = FaultSession::new(plan);
        let ctx = ExecContext::for_schedule(&s).unwrap();
        ctx.allreduce_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n)).unwrap();
        assert_eq!(by_ref, bufs, "drop recovery must be bit-exact");
        let c = session.counters().snapshot();
        assert_eq!(c.injected_drops, 2);
        assert!(c.resends >= 2, "each drop needs at least one resend: {c}");
        assert!(c.timeouts >= 2, "drops are only noticed via deadlines: {c}");
    }

    #[test]
    fn corrupted_payloads_are_rejected_and_resent() {
        let (n, e) = (4usize, 32usize);
        let s = rd::allreduce(n, e);
        let plan = FaultPlan::explicit(
            2,
            vec![Injection { step: 0, rank: 2, round: 1, kind: FaultKind::Corrupt }],
        );
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut bufs = ins.clone();
        let session = FaultSession::new(plan);
        let ctx = ExecContext::for_schedule(&s).unwrap();
        ctx.allreduce_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n)).unwrap();
        assert_eq!(by_ref, bufs, "corruption must never reach the buffers");
        let c = session.counters().snapshot();
        assert_eq!(c.injected_corruptions, 1);
        assert!(c.crc_rejects >= 1, "{c}");
        assert!(c.resends >= 1, "{c}");
    }

    #[test]
    fn stragglers_only_delay_under_virtual_clock() {
        let (n, e) = (4usize, 16usize);
        let s = ring::allreduce(n, e);
        let plan = FaultPlan::explicit(
            3,
            vec![Injection {
                step: 0,
                rank: 0,
                round: 1,
                kind: FaultKind::Straggle { millis: 60_000 },
            }],
        );
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut bufs = ins.clone();
        let session = FaultSession::new(plan); // virtual: must not sleep a minute
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let t0 = std::time::Instant::now();
        ctx.allreduce_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert_eq!(by_ref, bufs);
        assert_eq!(session.clock().injected(), Duration::from_secs(60));
        assert_eq!(session.counters().snapshot().injected_straggles, 1);
    }

    #[test]
    fn crash_aborts_with_the_dead_rank_reported() {
        let (n, e) = (4usize, 24usize);
        let s = ring::allreduce(n, e);
        let plan = FaultPlan::explicit(
            4,
            vec![Injection { step: 0, rank: 2, round: 1, kind: FaultKind::Crash }],
        );
        let mut bufs = inputs(n, e);
        let session = FaultSession::new(plan);
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let err = ctx
            .run_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n))
            .expect_err("a crashed rank must abort the collective");
        assert_eq!(err, ExecError::RanksDead { dead: vec![2] });
        let c = session.counters().snapshot();
        assert_eq!(c.injected_crashes, 1);
        assert!(c.rank_deaths >= 1, "at least one peer must observe the death: {c}");
    }

    #[test]
    fn crash_detection_ignores_renumbering() {
        // After a degradation the local ranks 0..3 may stand for
        // original ids {0, 1, 3, 4}: the plan must hit original id 3
        // (local 2) and the error must speak local indices.
        let (n, e) = (4usize, 16usize);
        let s = ring::allreduce(n, e);
        let plan = FaultPlan::explicit(
            5,
            vec![Injection { step: 0, rank: 3, round: 0, kind: FaultKind::Crash }],
        );
        let mut bufs = inputs(n, e);
        let session = FaultSession::new(plan);
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let err = ctx
            .run_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &[0, 1, 3, 4])
            .expect_err("original id 3 is present as local 2");
        assert_eq!(err, ExecError::RanksDead { dead: vec![2] });
    }

    #[test]
    fn traced_fault_run_records_retry_and_fault_events() {
        let (n, e) = (4usize, 32usize);
        let s = ring::allreduce(n, e);
        let plan = FaultPlan::explicit(
            1,
            vec![Injection { step: 0, rank: 1, round: 0, kind: FaultKind::Drop }],
        );
        let rec = trace::TraceRecorder::new();
        let session =
            FaultSession::new(plan).with_trace(crate::exec_trace::ExecTrace::comm(&rec, &ids(n)));
        let mut bufs = inputs(n, e);
        let ctx = ExecContext::for_schedule(&s).unwrap();
        ctx.allreduce_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n)).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.pids(), vec![0, 1, 2, 3]);
        let cats: Vec<&str> =
            snap.lanes.iter().flat_map(|l| l.spans.iter()).map(|s| s.cat).collect();
        assert!(cats.contains(&"SEND") && cats.contains(&"RECV"), "{cats:?}");
        assert!(cats.contains(&"FAULT"), "drop injection must land in the FAULT lane: {cats:?}");
        assert!(cats.contains(&"RETRY"), "drop recovery goes through timeout/resend: {cats:?}");
        // The injection was recorded on the faulty rank's own pid row.
        let rank1 = snap.lanes.iter().find(|l| l.pid == 1).expect("rank 1 lane");
        assert!(rank1.spans.iter().any(|s| s.cat == "FAULT" && s.name == "drop"));
    }

    #[test]
    fn faulty_runs_replay_identically_from_the_same_plan() {
        let (n, e) = (4usize, 48usize);
        let s = ring::allreduce(n, e);
        let spec = FaultSpec {
            drops: 2,
            corruptions: 2,
            stragglers: 2,
            ..FaultSpec::none(n, 1, s.n_rounds())
        };
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed, &spec);
            let mut bufs = inputs(n, e);
            let session = FaultSession::new(plan);
            let ctx = ExecContext::for_schedule(&s).unwrap();
            ctx.allreduce_with_faults(&s, &mut bufs, ReduceOp::Sum, &session, &ids(n)).unwrap();
            (
                bufs,
                session.events().deterministic_core(),
                session.counters().snapshot().deterministic_part(),
            )
        };
        let (b1, e1, c1) = run(11);
        let (b2, e2, c2) = run(11);
        assert_eq!(b1, b2, "same seed, same numbers");
        assert_eq!(e1, e2, "same seed, same deterministic events");
        assert_eq!(c1, c2, "same seed, same deterministic counters");
        let mut clean = inputs(n, e);
        crate::exec_thread::allreduce(&s, &mut clean, ReduceOp::Sum).unwrap();
        assert_eq!(b1, clean, "faults repaired ⇒ identical to the fault-free run");
    }
}
