//! Ring collectives: the bandwidth-optimal allreduce (reduce-scatter ring
//! followed by allgather ring), plus standalone ring reduce-scatter and
//! allgather. This is the algorithm NCCL and Horovod's default large-
//! message path use: each rank sends `2 (n-1)/n` of the buffer in total,
//! at the cost of `2 (n-1)` latency terms.

use crate::sched::{Action, Round, Schedule, Seg};

/// Ring allreduce over `n_ranks` ranks and `n_elems` elements.
///
/// `n_ranks == 1` yields an empty schedule (allreduce is the identity).
pub fn allreduce(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let segs = Seg::whole(n_elems).partition(n_ranks);
    reduce_scatter_rounds(&mut s, &segs);
    allgather_rounds(&mut s, &segs);
    s
}

/// Ring reduce-scatter: after it, rank `r` holds the fully reduced
/// segment `(r + 1) % n` of the canonical n-way partition.
pub fn reduce_scatter(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let segs = Seg::whole(n_elems).partition(n_ranks);
    reduce_scatter_rounds(&mut s, &segs);
    s
}

/// Ring allgather assuming rank `r` holds valid data in segment
/// `(r + 1) % n` of the canonical partition (the reduce-scatter output).
pub fn allgather(n_ranks: usize, n_elems: usize) -> Schedule {
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    let segs = Seg::whole(n_elems).partition(n_ranks);
    allgather_rounds(&mut s, &segs);
    s
}

/// The canonical segment owned by rank `r` after ring reduce-scatter.
pub fn owned_segment(n_ranks: usize, n_elems: usize, rank: usize) -> Seg {
    Seg::whole(n_elems).partition(n_ranks)[(rank + 1) % n_ranks]
}

fn reduce_scatter_rounds(s: &mut Schedule, segs: &[Seg]) {
    let n = s.n_ranks;
    for step in 0..n - 1 {
        let mut round = Round::empty(n);
        for r in 0..n {
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let send_seg = segs[(r + n - step) % n];
            let recv_seg = segs[(r + 2 * n - step - 1) % n];
            if !send_seg.is_empty() {
                round.per_rank[r].push(Action::Send { peer: right, seg: send_seg });
            }
            if !recv_seg.is_empty() {
                round.per_rank[r].push(Action::RecvReduce { peer: left, seg: recv_seg });
            }
        }
        s.rounds.push(round);
    }
}

fn allgather_rounds(s: &mut Schedule, segs: &[Seg]) {
    let n = s.n_ranks;
    for step in 0..n - 1 {
        let mut round = Round::empty(n);
        for r in 0..n {
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let send_seg = segs[(r + 1 + n - step) % n];
            let recv_seg = segs[(r + n - step) % n];
            if !send_seg.is_empty() {
                round.per_rank[r].push(Action::Send { peer: right, seg: send_seg });
            }
            if !recv_seg.is_empty() {
                round.per_rank[r].push(Action::RecvReplace { peer: left, seg: recv_seg });
            }
        }
        s.rounds.push(round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply, apply_allreduce, assert_allreduce_result};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| (r * n_elems + i) as f32 * 0.5 - 3.0).collect())
            .collect()
    }

    #[test]
    fn allreduce_is_correct_various_sizes() {
        for &n in &[2usize, 3, 4, 6, 7, 12] {
            for &e in &[1usize, 2, 5, 12, 13, 100] {
                let s = allreduce(n, e);
                s.validate().unwrap_or_else(|err| panic!("n={n} e={e}: {err:?}"));
                let ins = inputs(n, e);
                let mut bufs = ins.clone();
                apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
                assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
            }
        }
    }

    #[test]
    fn single_rank_is_empty() {
        assert_eq!(allreduce(1, 100).n_rounds(), 0);
    }

    #[test]
    fn round_count_is_2n_minus_2() {
        assert_eq!(allreduce(6, 600).n_rounds(), 10);
        assert_eq!(reduce_scatter(6, 600).n_rounds(), 5);
        assert_eq!(allgather(6, 600).n_rounds(), 5);
    }

    #[test]
    fn per_rank_traffic_is_bandwidth_optimal() {
        // Each rank sends 2*(n-1)/n of the buffer.
        let (n, e) = (8usize, 800usize);
        let s = allreduce(n, e);
        let per_rank = s.total_sent_elems() / n;
        let optimal = 2 * (n - 1) * e / n;
        assert_eq!(per_rank, optimal);
        assert_eq!(s.max_rank_sent_elems(), optimal);
    }

    #[test]
    fn reduce_scatter_owner_has_full_sum() {
        let (n, e) = (4usize, 8usize);
        let s = reduce_scatter(n, e);
        s.validate().unwrap();
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        apply(&s, &mut bufs, ReduceOp::Sum);
        #[allow(clippy::needless_range_loop)] // r is the rank id
        for r in 0..n {
            let seg = owned_segment(n, e, r);
            for i in seg.offset..seg.end() {
                let want: f32 = ins.iter().map(|b| b[i]).sum();
                assert!(
                    (bufs[r][i] - want).abs() < 1e-4,
                    "rank {r} elem {i}: {} vs {want}",
                    bufs[r][i]
                );
            }
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_equals_allreduce() {
        let (n, e) = (5usize, 23usize);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        apply(&reduce_scatter(n, e), &mut bufs, ReduceOp::Sum);
        apply(&allgather(n, e), &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn tiny_buffer_fewer_elems_than_ranks() {
        let (n, e) = (6usize, 3usize);
        let s = allreduce(n, e);
        s.validate().unwrap();
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-4);
    }

    #[test]
    fn zero_elems_is_legal() {
        let s = allreduce(4, 0);
        s.validate().unwrap();
        let mut bufs = vec![Vec::new(); 4];
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
    }

    #[test]
    fn average_op_through_ring() {
        let (n, e) = (3usize, 7usize);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        apply_allreduce(&allreduce(n, e), &mut bufs, ReduceOp::Average);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Average, 1e-4);
    }
}
