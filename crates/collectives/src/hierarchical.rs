//! Two-level (hierarchical) allreduce: the topology-aware composition
//! MVAPICH2-GDR and `HOROVOD_HIERARCHICAL_ALLREDUCE` use on fat-node
//! machines like Summit.
//!
//! Phase 1: each node reduces its GPUs' buffers onto a local leader over
//! NVLink (binomial reduce). Phase 2: the leaders — one per node — run an
//! inter-node allreduce over InfiniBand. Phase 3: each leader broadcasts
//! the result back over NVLink.
//!
//! The payoff on Summit: phase 2 injects one buffer per *node* into the
//! fabric instead of one per *GPU*, cutting HCA traffic 6×.

use crate::sched::Schedule;
use crate::{rabenseifner, ring, tree};

/// Inter-node algorithm used between node leaders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeaderAlgo {
    Ring,
    Rabenseifner,
    /// Binomial reduce + broadcast (small messages).
    Tree,
}

/// Grouping of global ranks into nodes: `groups[i]` lists the ranks on
/// node `i`, leader first.
#[derive(Debug, Clone)]
pub struct NodeGroups {
    pub groups: Vec<Vec<usize>>,
}

impl NodeGroups {
    /// The canonical dense placement: ranks `0..n` packed onto nodes of
    /// `per_node` GPUs; the last node may be partial.
    pub fn dense(n_ranks: usize, per_node: usize) -> Self {
        assert!(per_node >= 1);
        let groups = (0..n_ranks)
            .step_by(per_node)
            .map(|start| (start..(start + per_node).min(n_ranks)).collect())
            .collect();
        NodeGroups { groups }
    }

    pub fn n_ranks(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    pub fn leaders(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    fn check(&self, n_ranks: usize) {
        let mut seen = vec![false; n_ranks];
        for g in &self.groups {
            assert!(!g.is_empty(), "empty node group");
            for &r in g {
                assert!(r < n_ranks, "rank {r} out of range");
                assert!(!seen[r], "rank {r} appears in two groups");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "groups must cover every rank");
    }
}

/// Two-level allreduce: intra-node binomial reduce, leader-level
/// `leader_algo` allreduce, intra-node binomial broadcast.
pub fn allreduce(
    n_ranks: usize,
    n_elems: usize,
    groups: &NodeGroups,
    leader_algo: LeaderAlgo,
) -> Schedule {
    groups.check(n_ranks);
    assert_eq!(groups.n_ranks(), n_ranks);
    let mut s = Schedule::new(n_ranks, n_elems);

    // Phase 1: concurrent per-node reduces onto leaders (sub-rank 0).
    let mut offset = 0;
    let mut max_rounds = 0;
    for g in &groups.groups {
        let sub = tree::reduce(g.len(), n_elems, 0);
        max_rounds = max_rounds.max(sub.n_rounds());
        s.embed(&sub, g, offset);
    }
    offset += max_rounds;

    // Phase 2: allreduce among leaders.
    let leaders = groups.leaders();
    if leaders.len() > 1 {
        let sub = match leader_algo {
            LeaderAlgo::Ring => ring::allreduce(leaders.len(), n_elems),
            LeaderAlgo::Rabenseifner => rabenseifner::allreduce(leaders.len(), n_elems),
            LeaderAlgo::Tree => tree::allreduce(leaders.len(), n_elems),
        };
        let rounds = sub.n_rounds();
        s.embed(&sub, &leaders, offset);
        offset += rounds;
    }

    // Phase 3: concurrent per-node broadcasts from leaders.
    for g in &groups.groups {
        let sub = tree::broadcast(g.len(), n_elems, 0);
        s.embed(&sub, g, offset);
    }
    s
}

/// Two-level reduce-scatter/allgather ("RSAG") allreduce: the modern
/// multi-leader hierarchy.
///
/// Phase 1: each node ring-reduce-scatters over NVLink, leaving local
/// rank `j` with the node-reduced canonical segment `(j+1) mod g`.
/// Phase 2: the `g` *shard groups* — same local rank across all nodes —
/// each run an inter-node ring allreduce over their own segment,
/// concurrently, so every GPU injects into the fabric (full multi-rail
/// utilization) but only `1/g` of the buffer each. Phase 3: intra-node
/// ring allgather.
///
/// Requires `n_ranks` divisible by `per_node` with at least 1 rank per
/// node (use [`allreduce`] otherwise).
pub fn allreduce_rsag(n_ranks: usize, n_elems: usize, per_node: usize) -> Schedule {
    assert!(per_node >= 1 && n_ranks.is_multiple_of(per_node), "RSAG needs uniform nodes");
    let n_nodes = n_ranks / per_node;
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    use crate::ring;
    use crate::sched::Seg;

    // Phase 1: concurrent intra-node reduce-scatter.
    let mut offset = 0;
    if per_node > 1 {
        let sub = ring::reduce_scatter(per_node, n_elems);
        let rounds = sub.n_rounds();
        for node in 0..n_nodes {
            let map: Vec<usize> = (0..per_node).map(|j| node * per_node + j).collect();
            s.embed(&sub, &map, offset);
        }
        offset += rounds;
    }

    // Phase 2: per-shard inter-node allreduce on the owned segment.
    if n_nodes > 1 {
        let segs = Seg::whole(n_elems).partition(per_node);
        let mut max_rounds = 0;
        for j in 0..per_node {
            let owned = segs[(j + 1) % per_node];
            let sub = ring::allreduce(n_nodes, owned.len).shifted(owned.offset, n_elems);
            max_rounds = max_rounds.max(sub.n_rounds());
            let map: Vec<usize> = (0..n_nodes).map(|node| node * per_node + j).collect();
            s.embed(&sub, &map, offset);
        }
        offset += max_rounds;
    }

    // Phase 3: concurrent intra-node allgather.
    if per_node > 1 {
        let sub = ring::allgather(per_node, n_elems);
        for node in 0..n_nodes {
            let map: Vec<usize> = (0..per_node).map(|j| node * per_node + j).collect();
            s.embed(&sub, &map, offset);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::reference::{apply_allreduce, assert_allreduce_result};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 13 + i) % 7) as f32 - 3.0).collect())
            .collect()
    }

    #[test]
    fn dense_grouping() {
        let g = NodeGroups::dense(14, 6);
        assert_eq!(g.groups.len(), 3);
        assert_eq!(g.groups[2], vec![12, 13]);
        assert_eq!(g.leaders(), vec![0, 6, 12]);
        assert_eq!(g.n_ranks(), 14);
    }

    #[test]
    fn correct_for_all_leader_algorithms() {
        let (n, e, per_node) = (12usize, 17usize, 6usize);
        let groups = NodeGroups::dense(n, per_node);
        for algo in [LeaderAlgo::Ring, LeaderAlgo::Rabenseifner, LeaderAlgo::Tree] {
            let s = allreduce(n, e, &groups, algo);
            s.validate().unwrap_or_else(|err| panic!("{algo:?}: {err:?}"));
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn correct_with_partial_last_node() {
        let groups = NodeGroups::dense(10, 6); // nodes of 6 and 4
        let s = allreduce(10, 8, &groups, LeaderAlgo::Ring);
        s.validate().unwrap();
        let ins = inputs(10, 8);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn single_node_skips_leader_phase() {
        let groups = NodeGroups::dense(6, 6);
        let s = allreduce(6, 5, &groups, LeaderAlgo::Ring);
        s.validate().unwrap();
        // reduce (3 rounds) + broadcast (3 rounds), no leader rounds
        assert_eq!(s.n_rounds(), 6);
        let ins = inputs(6, 5);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn many_nodes_large_scale() {
        // 132 "GPUs" = 22 nodes x 6, the paper's max scale.
        let groups = NodeGroups::dense(132, 6);
        let s = allreduce(132, 40, &groups, LeaderAlgo::Rabenseifner);
        s.validate().unwrap();
        let ins = inputs(132, 40);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-2);
    }

    #[test]
    fn leader_traffic_is_node_level_not_gpu_level() {
        // Only leaders touch the inter-node rounds: total sent elements of
        // hierarchical < flat ring for the same (n, e) when e is large.
        let (n, e) = (24usize, 2400usize);
        let groups = NodeGroups::dense(n, 6);
        let h = allreduce(n, e, &groups, LeaderAlgo::Ring);
        let flat = crate::ring::allreduce(n, e);
        // Hierarchical sends: intra (n - n/6 + broadcast) whole buffers +
        // leader ring; the interesting claim is about *leader* rounds
        // specifically, but total traffic is also lower here.
        assert!(h.total_sent_elems() < flat.total_sent_elems() * 2);
        // Every action in leader rounds involves only leader ranks.
        let leaders = groups.leaders();
        let intra = 3; // reduce rounds for groups of 6
        let leader_rounds = crate::ring::allreduce(4, e).n_rounds();
        for round in &h.rounds[intra..intra + leader_rounds] {
            for (rank, actions) in round.per_rank.iter().enumerate() {
                if !actions.is_empty() {
                    assert!(leaders.contains(&rank), "non-leader {rank} active in leader phase");
                }
            }
        }
    }

    #[test]
    fn rsag_is_correct() {
        for &(n, per_node, e) in &[
            (12usize, 6usize, 48usize),
            (12, 6, 47),
            (24, 6, 100),
            (8, 4, 10),
            (6, 6, 20),
            (4, 1, 9),
        ] {
            let s = allreduce_rsag(n, e, per_node);
            s.validate().unwrap_or_else(|err| panic!("n={n} g={per_node} e={e}: {err:?}"));
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn rsag_moves_less_than_three_phase_hierarchy() {
        // Classic 3-phase: every non-leader sends a whole buffer twice;
        // RSAG sends ~2e/g intra + 2e/g inter per rank.
        let (n, e) = (24usize, 2400usize);
        let rsag = allreduce_rsag(n, e, 6);
        let classic = allreduce(n, e, &NodeGroups::dense(n, 6), LeaderAlgo::Ring);
        assert!(
            rsag.max_rank_sent_elems() < classic.max_rank_sent_elems(),
            "RSAG {} vs classic {}",
            rsag.max_rank_sent_elems(),
            classic.max_rank_sent_elems()
        );
    }

    #[test]
    fn rsag_threaded_matches_reference() {
        let (n, e) = (12usize, 31usize);
        let s = allreduce_rsag(n, e, 4);
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut by_thr = ins.clone();
        crate::exec_thread::allreduce(&s, &mut by_thr, ReduceOp::Sum).unwrap();
        assert_eq!(by_ref, by_thr);
    }

    #[test]
    #[should_panic(expected = "uniform nodes")]
    fn rsag_rejects_ragged_nodes() {
        allreduce_rsag(10, 8, 6);
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn overlapping_groups_rejected() {
        let groups = NodeGroups { groups: vec![vec![0, 1], vec![1, 2]] };
        allreduce(3, 4, &groups, LeaderAlgo::Ring);
    }

    #[test]
    #[should_panic(expected = "cover every rank")]
    fn incomplete_groups_rejected() {
        let groups = NodeGroups { groups: vec![vec![0, 1]] };
        allreduce(3, 4, &groups, LeaderAlgo::Ring);
    }
}
