//! Timing execution: lower a [`Schedule`] onto the Summit simulator.
//!
//! Each schedule round becomes one executor step per rank (its sends and
//! receives in parallel), followed by a compute step accounting for the
//! local reduction of received bytes. Message parameters — data path,
//! per-message software overhead, staging rate caps, eager protocol — come
//! from a [`CostModel`], which is where the MPI library personalities
//! plug in.

use summit_sim::{DataPath, ExecReport, Executor, GpuId, Machine, Op, Program, SimTime};

use crate::sched::{Action, Schedule};

/// Per-message parameters chosen by a cost model.
#[derive(Debug, Clone, Copy)]
pub struct MsgParams {
    pub path: DataPath,
    /// Software overhead before the payload starts moving.
    pub overhead: SimTime,
    /// Flow-rate cap (bytes/s), e.g. a staging pipeline's efficiency.
    pub rate_cap: f64,
    /// Whether the sender completes locally (eager protocol).
    pub eager: bool,
}

/// Chooses per-message parameters and local costs — implemented by the
/// MPI library personalities in `mpi-profiles`.
pub trait CostModel {
    fn msg(&self, machine: &Machine, src: GpuId, dst: GpuId, bytes: u64) -> MsgParams;

    /// Local element-wise reduction bandwidth in bytes/s (GPU kernels
    /// reducing received segments). V100 HBM2 sustains ~800 GB/s read +
    /// write; a fused multiply-add reduction streams ~3 accesses/element.
    fn reduce_bw(&self) -> f64 {
        250e9
    }
}

/// A flat cost model for tests and baselines: fixed overhead and path.
#[derive(Debug, Clone)]
pub struct UniformCost {
    pub path: DataPath,
    pub overhead: SimTime,
    pub rate_cap: f64,
    pub eager_threshold: u64,
}

impl Default for UniformCost {
    fn default() -> Self {
        UniformCost {
            path: DataPath::Gdr,
            overhead: SimTime::from_secs_f64(2e-6),
            rate_cap: f64::INFINITY,
            eager_threshold: 8 << 10,
        }
    }
}

impl CostModel for UniformCost {
    fn msg(&self, _machine: &Machine, _src: GpuId, _dst: GpuId, bytes: u64) -> MsgParams {
        MsgParams {
            path: self.path,
            overhead: self.overhead,
            rate_cap: self.rate_cap,
            eager: bytes <= self.eager_threshold,
        }
    }
}

/// Bytes per buffer element (f32 gradients).
pub const ELEM_BYTES: u64 = 4;

/// Two element ranges overlap?
fn segs_overlap(a: &[crate::sched::Seg], b: &[crate::sched::Seg]) -> bool {
    a.iter().any(|x| {
        b.iter().any(|y| x.offset < y.end() && y.offset < x.end() && !x.is_empty() && !y.is_empty())
    })
}

/// Lower `schedule` to rank programs under `cost` and run it on
/// `machine`. `placement[r]` is rank `r`'s GPU.
///
/// Local reductions are dependency-scheduled: a round's reduction runs
/// *in parallel* with the rank's next round when their element ranges
/// are disjoint (chunked-ring pipelining), and serializes before it when
/// the next round touches the just-reduced data (plain ring, recursive
/// doubling, trees).
pub fn simulate(
    schedule: &Schedule,
    machine: &Machine,
    placement: &[GpuId],
    cost: &dyn CostModel,
) -> ExecReport {
    simulate_with_payload(schedule, machine, placement, cost, &|len| len as u64 * ELEM_BYTES)
}

/// [`simulate`] with a gradient codec on the wire: every message
/// carries `codec.encoded_len(seg_elems)` bytes instead of raw fp32
/// (exact per the codec's wire format, scale headers included), while
/// local reductions still run over the decoded fp32 elements. This is
/// the payload-size hook the compression studies use to ask where
/// int8/top-k beats fusion tuning at scale.
pub fn simulate_compressed(
    schedule: &Schedule,
    machine: &Machine,
    placement: &[GpuId],
    cost: &dyn CostModel,
    codec: crate::compression::CodecKind,
) -> ExecReport {
    simulate_with_payload(schedule, machine, placement, cost, &|len| codec.encoded_len(len) as u64)
}

fn simulate_with_payload(
    schedule: &Schedule,
    machine: &Machine,
    placement: &[GpuId],
    cost: &dyn CostModel,
    wire: &dyn Fn(usize) -> u64,
) -> ExecReport {
    assert_eq!(placement.len(), schedule.n_ranks, "one GPU per rank");
    debug_assert_eq!(schedule.validate(), Ok(()));
    let mut programs = vec![Program::new(); schedule.n_ranks];
    // Per rank: reduction work (bytes, segments) from its previous
    // active round, not yet issued.
    let mut pending: Vec<(u64, Vec<crate::sched::Seg>)> = vec![(0, Vec::new()); schedule.n_ranks];
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        for (rank, actions) in round.per_rank.iter().enumerate() {
            if actions.is_empty() {
                continue;
            }
            let mut ops = Vec::with_capacity(actions.len() + 1);
            let mut reduce_bytes: u64 = 0;
            let mut reduce_segs: Vec<crate::sched::Seg> = Vec::new();
            let mut touched: Vec<crate::sched::Seg> = Vec::with_capacity(actions.len());
            for a in actions {
                touched.push(a.seg());
                match *a {
                    Action::Send { peer, seg } => {
                        let bytes = wire(seg.len);
                        let p = cost.msg(machine, placement[rank], placement[peer], bytes);
                        ops.push(Op::Send {
                            peer,
                            bytes,
                            tag: round_idx as u64,
                            path: p.path,
                            overhead: p.overhead,
                            rate_cap: p.rate_cap,
                            eager: p.eager,
                        });
                    }
                    Action::RecvReduce { peer, seg } => {
                        reduce_bytes += seg.len as u64 * ELEM_BYTES;
                        reduce_segs.push(seg);
                        ops.push(Op::recv(peer, round_idx as u64));
                    }
                    Action::RecvReplace { peer, .. } => {
                        ops.push(Op::recv(peer, round_idx as u64));
                    }
                }
            }
            // Place the previous round's reduction.
            let (pbytes, psegs) = std::mem::take(&mut pending[rank]);
            if pbytes > 0 {
                let dur = SimTime::from_secs_f64(pbytes as f64 / cost.reduce_bw());
                if segs_overlap(&psegs, &touched) {
                    // Dependency: must finish reducing before this round.
                    programs[rank].step(vec![Op::compute(dur)]);
                } else {
                    // Independent data: overlap with this round's wires.
                    ops.push(Op::compute(dur));
                }
            }
            programs[rank].step(ops);
            pending[rank] = (reduce_bytes, reduce_segs);
        }
    }
    for (rank, (pbytes, _)) in pending.into_iter().enumerate() {
        if pbytes > 0 {
            let dur = SimTime::from_secs_f64(pbytes as f64 / cost.reduce_bw());
            programs[rank].step(vec![Op::compute(dur)]);
        }
    }
    let exec = Executor::new(machine, placement.to_vec());
    exec.run(programs)
}

/// Simulate with the dense rank-r-on-GPU-r placement.
pub fn simulate_dense(schedule: &Schedule, machine: &Machine, cost: &dyn CostModel) -> ExecReport {
    let placement: Vec<GpuId> = (0..schedule.n_ranks).map(GpuId).collect();
    simulate(schedule, machine, &placement, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{self, LeaderAlgo, NodeGroups};
    use crate::{rabenseifner, rd, ring};
    use summit_sim::MachineConfig;

    fn machine_for(ranks: usize) -> Machine {
        Machine::new(MachineConfig::summit_for_gpus(ranks))
    }

    #[test]
    fn ring_allreduce_simulates_and_scales_with_size() {
        let m = machine_for(12);
        let cost = UniformCost::default();
        let small = simulate_dense(&ring::allreduce(12, 1 << 18), &m, &cost);
        let large = simulate_dense(&ring::allreduce(12, 1 << 22), &m, &cost);
        assert!(large.makespan > small.makespan);
    }

    #[test]
    fn compressed_none_matches_uncompressed_exactly() {
        let m = machine_for(12);
        let cost = UniformCost::default();
        let s = ring::allreduce(12, 1 << 18);
        let placement: Vec<GpuId> = (0..12).map(GpuId).collect();
        let plain = simulate(&s, &m, &placement, &cost);
        let none = simulate_compressed(&s, &m, &placement, &cost, crate::CodecKind::None);
        assert_eq!(plain.makespan, none.makespan);
    }

    #[test]
    fn codec_wire_shrink_orders_bandwidth_bound_makespans() {
        // 16 MiB of f32 over a ring is bandwidth-bound, so makespan
        // follows wire bytes: int4 < int8 <= topk < fp16 < fp32.
        use crate::CodecKind;
        let m = machine_for(12);
        let cost = UniformCost::default();
        let s = ring::allreduce(12, 4 << 20);
        let placement: Vec<GpuId> = (0..12).map(GpuId).collect();
        let t = |k: CodecKind| simulate_compressed(&s, &m, &placement, &cost, k).makespan;
        let (fp32, fp16) = (t(CodecKind::None), t(CodecKind::Fp16));
        let (i8t, i4t, topk) = (t(CodecKind::Int8), t(CodecKind::Int4), t(CodecKind::TopK));
        assert!(fp16 < fp32, "fp16 {fp16} vs fp32 {fp32}");
        assert!(i8t < fp16, "int8 {i8t} vs fp16 {fp16}");
        assert!(i4t < i8t, "int4 {i4t} vs int8 {i8t}");
        assert!(topk <= i8t, "topk {topk} vs int8 {i8t}");
    }

    #[test]
    fn ring_beats_recursive_doubling_for_large_messages() {
        let m = machine_for(24);
        let cost = UniformCost::default();
        let elems = 16 << 20; // 64 MiB
        let ring_t = simulate_dense(&ring::allreduce(24, elems), &m, &cost).makespan;
        let rd_t = simulate_dense(&rd::allreduce(24, elems), &m, &cost).makespan;
        assert!(
            ring_t < rd_t,
            "ring {} should beat RD {} at 64 MiB",
            ring_t.as_secs_f64(),
            rd_t.as_secs_f64()
        );
    }

    #[test]
    fn recursive_doubling_beats_ring_for_tiny_messages() {
        let m = machine_for(24);
        let cost = UniformCost::default();
        let elems = 256; // 1 KiB: latency-dominated
        let ring_t = simulate_dense(&ring::allreduce(24, elems), &m, &cost).makespan;
        let rd_t = simulate_dense(&rd::allreduce(24, elems), &m, &cost).makespan;
        assert!(
            rd_t < ring_t,
            "RD {} should beat ring {} at 1 KiB",
            rd_t.as_secs_f64(),
            ring_t.as_secs_f64()
        );
    }

    #[test]
    fn hierarchical_wins_the_mid_size_regime() {
        // At moderate message sizes (here 1 MiB) across many nodes, the
        // two-level algorithm beats both the flat ring (too many latency
        // rounds) and flat Rabenseifner (whole-message exchanges cross
        // the NICs log p times): this is the regime Horovod's fused
        // buffers live in and why MV2's hierarchical selection matters.
        let ranks = 48; // 8 nodes
        let m = machine_for(ranks);
        let cost = UniformCost::default();
        let elems = (1 << 20) / 4; // 1 MiB of f32
        let flat_ring = simulate_dense(&ring::allreduce(ranks, elems), &m, &cost).makespan;
        let flat_rab = simulate_dense(&rabenseifner::allreduce(ranks, elems), &m, &cost).makespan;
        let groups = NodeGroups::dense(ranks, 6);
        let hier = hierarchical::allreduce(ranks, elems, &groups, LeaderAlgo::Rabenseifner);
        let hier_t = simulate_dense(&hier, &m, &cost).makespan;
        assert!(hier_t < flat_ring, "hier {hier_t} vs flat ring {flat_ring}");
        assert!(hier_t < flat_rab, "hier {hier_t} vs flat rabenseifner {flat_rab}");
    }

    #[test]
    fn topology_ring_wins_the_huge_message_regime() {
        // At 64 MiB the topology-ordered flat ring crosses each NIC only
        // once per direction and pipelines perfectly — hierarchical's
        // whole-buffer intra-node phases lose.
        let ranks = 48;
        let m = machine_for(ranks);
        let cost = UniformCost::default();
        let elems = 16 << 20; // 64 MiB of f32
        let flat = simulate_dense(&ring::allreduce(ranks, elems), &m, &cost).makespan;
        let groups = NodeGroups::dense(ranks, 6);
        let hier = hierarchical::allreduce(ranks, elems, &groups, LeaderAlgo::Ring);
        let hier_t = simulate_dense(&hier, &m, &cost).makespan;
        assert!(flat < hier_t, "flat ring {flat} vs hier {hier_t}");
    }

    #[test]
    fn staged_path_slower_than_gdr() {
        let m = machine_for(12);
        let gdr = UniformCost { path: DataPath::Gdr, ..UniformCost::default() };
        let staged =
            UniformCost { path: DataPath::HostStaged, rate_cap: 8e9, ..UniformCost::default() };
        let sched = ring::allreduce(12, 4 << 20);
        let t_gdr = simulate_dense(&sched, &m, &gdr).makespan;
        let t_staged = simulate_dense(&sched, &m, &staged).makespan;
        assert!(t_staged.as_secs_f64() > t_gdr.as_secs_f64() * 1.3);
    }

    #[test]
    fn rabenseifner_latency_advantage_at_scale_small_message() {
        let ranks = 128;
        let m = machine_for(ranks);
        let cost = UniformCost::default();
        let elems = 4096; // 16 KiB
        let ring_t = simulate_dense(&ring::allreduce(ranks, elems), &m, &cost).makespan;
        let rab_t = simulate_dense(&rabenseifner::allreduce(ranks, elems), &m, &cost).makespan;
        assert!(rab_t < ring_t, "2 log p rounds beat 2(p-1) rounds when latency-bound");
    }

    #[test]
    fn single_rank_schedule_is_instant() {
        let m = machine_for(6);
        let rep = simulate_dense(&ring::allreduce(1, 1000), &m, &UniformCost::default());
        assert_eq!(rep.makespan, SimTime::ZERO);
    }

    #[test]
    fn round_robin_placement_wrecks_the_ring() {
        // With ranks scattered one-per-node, every ring edge crosses the
        // fabric instead of NVLink — the placement ablation's point.
        use summit_sim::Placement;
        let m = machine_for(24);
        let cost = UniformCost::default();
        let sched = ring::allreduce(24, 4 << 20);
        let dense = Placement::Dense.assign(&m, 24);
        let spread = Placement::RoundRobinNodes.assign(&m, 24);
        let t_dense = simulate(&sched, &m, &dense, &cost).makespan;
        let t_spread = simulate(&sched, &m, &spread, &cost).makespan;
        assert!(
            t_spread.as_secs_f64() > t_dense.as_secs_f64() * 2.0,
            "spread {t_spread} should be much slower than dense {t_dense}"
        );
    }

    #[test]
    fn hot_links_are_the_nic_for_inter_node_rings() {
        let m = machine_for(12);
        let cost = UniformCost::default();
        let rep = simulate_dense(&ring::allreduce(12, 4 << 20), &m, &cost);
        let hot = rep.hot_links(&m, 4);
        assert!(!hot.is_empty());
        // A dense 12-rank ring crosses each node boundary once per
        // direction; those fabric links carry as much as any NVLink hop.
        assert!(hot[0].1 > 0.0);
        let util = rep.utilization(&m, summit_sim::LinkId(0));
        assert!((0.0..=1.0).contains(&util));
    }

    #[test]
    fn pcie_only_machine_is_slower_intra_node() {
        let nv = Machine::new(MachineConfig::summit(1));
        let pcie = Machine::new(MachineConfig::summit_pcie_only(1));
        let cost = UniformCost::default();
        let sched = ring::allreduce(6, 8 << 20);
        let t_nv = simulate_dense(&sched, &nv, &cost).makespan;
        let t_pcie = simulate_dense(&sched, &pcie, &cost).makespan;
        assert!(t_pcie.as_secs_f64() > t_nv.as_secs_f64() * 2.0);
    }

    #[test]
    fn single_rail_nic_halves_inter_node_bandwidth() {
        let full = Machine::new(MachineConfig::summit(4));
        let half = Machine::new(MachineConfig::summit(4).with_nic_scale(0.5));
        let cost = UniformCost::default();
        let sched = ring::allreduce(24, 16 << 20);
        let t_full = simulate_dense(&sched, &full, &cost).makespan.as_secs_f64();
        let t_half = simulate_dense(&sched, &half, &cost).makespan.as_secs_f64();
        assert!(t_half > t_full, "halving the NIC must cost time");
    }

    #[test]
    fn determinism() {
        let m = machine_for(12);
        let cost = UniformCost::default();
        let s = ring::allreduce(12, 1 << 16);
        let a = simulate_dense(&s, &m, &cost);
        let b = simulate_dense(&s, &m, &cost);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.rank_finish, b.rank_finish);
    }
}
