//! Element-wise reduction kernels.
//!
//! Large segments go through rayon so the real threaded executor's
//! reduction step parallelizes inside a rank, mirroring how a GPU
//! library reduces fused buffers with many threads.

use rayon::prelude::*;

/// Reduction applied by an allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    /// Sum followed by division by the rank count (what Horovod's
    /// gradient averaging does).
    Average,
    Max,
}

/// Below this many elements the serial loop beats rayon's dispatch cost.
const PAR_THRESHOLD: usize = 1 << 15;

/// Chunk width of the parallel paths: big enough to amortize thread
/// dispatch, small enough to balance across workers.
const PAR_CHUNK: usize = 1 << 13;

/// Serial `dst[i] += src[i]`, scalar twin of [`sum_chunk_avx2`].
// lint: hot-path
// lint: no-f64
fn sum_chunk_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
}

/// AVX2 twin of [`sum_chunk_scalar`] (element-wise, so bit-identical
/// to the scalar loop).
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sum_chunk_avx2(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(dst.len(), src.len());
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let n = dst.len();
    let mut i = 0;
    while i + 16 <= n {
        let a0 = _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), _mm256_loadu_ps(sp.add(i)));
        let a1 = _mm256_add_ps(_mm256_loadu_ps(dp.add(i + 8)), _mm256_loadu_ps(sp.add(i + 8)));
        _mm256_storeu_ps(dp.add(i), a0);
        _mm256_storeu_ps(dp.add(i + 8), a1);
        i += 16;
    }
    while i + 8 <= n {
        let a = _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), _mm256_loadu_ps(sp.add(i)));
        _mm256_storeu_ps(dp.add(i), a);
        i += 8;
    }
    while i < n {
        *dp.add(i) += *sp.add(i);
        i += 1;
    }
}

/// Serial sum with runtime dispatch over the twins.
// lint: hot-path
// lint: no-f64
fn sum_chunk(dst: &mut [f32], src: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { sum_chunk_avx2(dst, src) };
        return;
    }
    sum_chunk_scalar(dst, src);
}

/// Serial `dst[i] = max(dst[i], src[i])`, scalar twin of
/// [`max_chunk_avx2`].
// lint: hot-path
// lint: no-f64
fn max_chunk_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = d.max(*s);
    }
}

/// AVX2 twin of [`max_chunk_scalar`]. `f32::max(a, b)` returns `b` when
/// `a` is NaN and the non-NaN operand otherwise; `VMAXPS` returns the
/// second operand on any NaN — passing `dst` as the second operand makes
/// the two twins agree except when **src** is NaN (gradients reduced
/// here are finite; the differential proptests generate finite inputs).
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn max_chunk_avx2(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(dst.len(), src.len());
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let m = _mm256_max_ps(_mm256_loadu_ps(sp.add(i)), _mm256_loadu_ps(dp.add(i)));
        _mm256_storeu_ps(dp.add(i), m);
        i += 8;
    }
    while i < n {
        *dp.add(i) = (*dp.add(i)).max(*sp.add(i));
        i += 1;
    }
}

/// Serial max with runtime dispatch over the twins.
// lint: hot-path
// lint: no-f64
fn max_chunk(dst: &mut [f32], src: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { max_chunk_avx2(dst, src) };
        return;
    }
    max_chunk_scalar(dst, src);
}

/// Serial `x *= scale`, scalar twin of [`scale_chunk_avx2`].
// lint: hot-path
// lint: no-f64
fn scale_chunk_scalar(buf: &mut [f32], scale: f32) {
    for x in buf.iter_mut() {
        *x *= scale;
    }
}

/// AVX2 twin of [`scale_chunk_scalar`] (element-wise multiply, so
/// bit-identical to the scalar loop).
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (dispatch through
/// [`simd::have_avx2_fma`]).
// lint: hot-path
// lint: no-f64
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scale_chunk_avx2(buf: &mut [f32], scale: f32) {
    use std::arch::x86_64::*;
    let bp = buf.as_mut_ptr();
    let n = buf.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(bp.add(i), _mm256_mul_ps(_mm256_loadu_ps(bp.add(i)), sv));
        i += 8;
    }
    while i < n {
        *bp.add(i) *= scale;
        i += 1;
    }
}

/// Serial scale with runtime dispatch over the twins.
// lint: hot-path
// lint: no-f64
fn scale_chunk(buf: &mut [f32], scale: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd::have_avx2_fma() {
        // SAFETY: the dispatch predicate just confirmed AVX2+FMA.
        unsafe { scale_chunk_avx2(buf, scale) };
        return;
    }
    scale_chunk_scalar(buf, scale);
}

/// `dst[i] = dst[i] + src[i]`.
// lint: hot-path
// lint: no-f64
pub fn combine_sum(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "segment length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(PAR_CHUNK)
            .zip(src.par_chunks(PAR_CHUNK))
            .for_each(|(d, s)| sum_chunk(d, s));
    } else {
        sum_chunk(dst, src);
    }
}

/// `dst[i] = max(dst[i], src[i])`.
// lint: hot-path
// lint: no-f64
pub fn combine_max(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "segment length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(PAR_CHUNK)
            .zip(src.par_chunks(PAR_CHUNK))
            .for_each(|(d, s)| max_chunk(d, s));
    } else {
        max_chunk(dst, src);
    }
}

/// Combine according to `op`'s accumulation step (Average accumulates as
/// Sum; the final scale is applied by [`finalize`]).
// lint: hot-path
// lint: no-f64
pub fn combine(op: ReduceOp, dst: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum | ReduceOp::Average => combine_sum(dst, src),
        ReduceOp::Max => combine_max(dst, src),
    }
}

/// Post-process a fully reduced buffer (scales by 1/n for Average).
// lint: hot-path
// lint: no-f64
pub fn finalize(op: ReduceOp, buf: &mut [f32], n_ranks: usize) {
    if op == ReduceOp::Average {
        let inv = 1.0 / n_ranks as f32;
        if buf.len() >= PAR_THRESHOLD {
            buf.par_chunks_mut(PAR_CHUNK).for_each(|c| scale_chunk(c, inv));
        } else {
            scale_chunk(buf, inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_small() {
        let mut a = vec![1.0, 2.0, 3.0];
        combine_sum(&mut a, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn sum_large_uses_parallel_path() {
        let n = PAR_THRESHOLD + 17;
        let mut a = vec![1.0f32; n];
        let b = vec![2.0f32; n];
        combine_sum(&mut a, &b);
        assert!(a.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn max_combines() {
        let mut a = vec![1.0, 5.0, -2.0];
        combine_max(&mut a, &[3.0, 4.0, -1.0]);
        assert_eq!(a, vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn average_finalizes() {
        let mut a = vec![8.0, 4.0];
        finalize(ReduceOp::Average, &mut a, 4);
        assert_eq!(a, vec![2.0, 1.0]);
        let mut b = vec![8.0];
        finalize(ReduceOp::Sum, &mut b, 4);
        assert_eq!(b, vec![8.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = vec![1.0];
        combine_sum(&mut a, &[1.0, 2.0]);
    }

    #[test]
    fn combine_dispatches_by_op() {
        let mut a = vec![1.0];
        combine(ReduceOp::Average, &mut a, &[2.0]);
        assert_eq!(a, vec![3.0]); // accumulation step is a plain sum
        let mut b = vec![1.0];
        combine(ReduceOp::Max, &mut b, &[2.0]);
        assert_eq!(b, vec![2.0]);
    }

    /// Deterministic pseudo-random value including subnormal and
    /// negative cases at the low indices.
    fn val(i: usize) -> f32 {
        match i % 5 {
            0 => f32::from_bits((i as u32).wrapping_mul(2654435761) >> 10), // subnormal-ish
            1 => -(i as f32) * 0.37,
            2 => (i as f32 * 0.001).sin(),
            3 => 1e-40 * (i as f32 + 1.0), // subnormal
            _ => i as f32 * 123.456,
        }
    }

    /// The AVX2 twins are element-wise, so on finite inputs they must be
    /// **bit-identical** to the scalar twins — at every length, covering
    /// 16/8-lane bodies, tails, and the empty slice.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_twins_match_scalar_bitwise() {
        if !simd::have_avx2_fma() {
            return; // nothing to differentiate on this host
        }
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 257] {
            let src: Vec<f32> = (0..n).map(val).collect();
            let base: Vec<f32> = (0..n).map(|i| val(i + 1000)).collect();

            let mut s = base.clone();
            let mut v = base.clone();
            sum_chunk_scalar(&mut s, &src);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { sum_chunk_avx2(&mut v, &src) };
            assert_eq!(bits(&s), bits(&v), "sum twins diverge at n={n}");

            let mut s = base.clone();
            let mut v = base.clone();
            max_chunk_scalar(&mut s, &src);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { max_chunk_avx2(&mut v, &src) };
            assert_eq!(bits(&s), bits(&v), "max twins diverge at n={n}");

            let mut s = base.clone();
            let mut v = base;
            scale_chunk_scalar(&mut s, 0.125);
            // SAFETY: guarded by the dispatch predicate above.
            unsafe { scale_chunk_avx2(&mut v, 0.125) };
            assert_eq!(bits(&s), bits(&v), "scale twins diverge at n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
