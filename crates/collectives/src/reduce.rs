//! Element-wise reduction kernels.
//!
//! Large segments go through rayon so the real threaded executor's
//! reduction step parallelizes inside a rank, mirroring how a GPU
//! library reduces fused buffers with many threads.

use rayon::prelude::*;

/// Reduction applied by an allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    /// Sum followed by division by the rank count (what Horovod's
    /// gradient averaging does).
    Average,
    Max,
}

/// Below this many elements the serial loop beats rayon's dispatch cost.
const PAR_THRESHOLD: usize = 1 << 15;

/// `dst[i] = dst[i] + src[i]`.
// lint: hot-path
// lint: no-f64
pub fn combine_sum(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "segment length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, s)| *d += *s);
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }
}

/// `dst[i] = max(dst[i], src[i])`.
// lint: hot-path
// lint: no-f64
pub fn combine_max(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "segment length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, s)| *d = d.max(*s));
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.max(*s);
        }
    }
}

/// Combine according to `op`'s accumulation step (Average accumulates as
/// Sum; the final scale is applied by [`finalize`]).
// lint: hot-path
// lint: no-f64
pub fn combine(op: ReduceOp, dst: &mut [f32], src: &[f32]) {
    match op {
        ReduceOp::Sum | ReduceOp::Average => combine_sum(dst, src),
        ReduceOp::Max => combine_max(dst, src),
    }
}

/// Post-process a fully reduced buffer (scales by 1/n for Average).
// lint: hot-path
// lint: no-f64
pub fn finalize(op: ReduceOp, buf: &mut [f32], n_ranks: usize) {
    if op == ReduceOp::Average {
        let inv = 1.0 / n_ranks as f32;
        if buf.len() >= PAR_THRESHOLD {
            buf.par_iter_mut().for_each(|x| *x *= inv);
        } else {
            for x in buf.iter_mut() {
                *x *= inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_small() {
        let mut a = vec![1.0, 2.0, 3.0];
        combine_sum(&mut a, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn sum_large_uses_parallel_path() {
        let n = PAR_THRESHOLD + 17;
        let mut a = vec![1.0f32; n];
        let b = vec![2.0f32; n];
        combine_sum(&mut a, &b);
        assert!(a.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn max_combines() {
        let mut a = vec![1.0, 5.0, -2.0];
        combine_max(&mut a, &[3.0, 4.0, -1.0]);
        assert_eq!(a, vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn average_finalizes() {
        let mut a = vec![8.0, 4.0];
        finalize(ReduceOp::Average, &mut a, 4);
        assert_eq!(a, vec![2.0, 1.0]);
        let mut b = vec![8.0];
        finalize(ReduceOp::Sum, &mut b, 4);
        assert_eq!(b, vec![8.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = vec![1.0];
        combine_sum(&mut a, &[1.0, 2.0]);
    }

    #[test]
    fn combine_dispatches_by_op() {
        let mut a = vec![1.0];
        combine(ReduceOp::Average, &mut a, &[2.0]);
        assert_eq!(a, vec![3.0]); // accumulation step is a plain sum
        let mut b = vec![1.0];
        combine(ReduceOp::Max, &mut b, &[2.0]);
        assert_eq!(b, vec![2.0]);
    }
}
