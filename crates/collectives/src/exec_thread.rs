//! Real execution: run a [`Schedule`] across OS threads with actual data.
//!
//! One thread per rank; messages travel over crossbeam channels (one
//! channel per ordered rank pair, so FIFO order within a pair gives us
//! free round sequencing). Because the schedule is round-structured and a
//! rank materializes all its outgoing payloads before blocking on
//! receives, unbounded channels make the execution deadlock-free for any
//! schedule that passes [`Schedule::validate`].
//!
//! This is the executor the accuracy experiment trains with — the same
//! algorithm schedules the simulator times are the ones the real
//! gradients travel through.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule};

/// A message: `(round, offset, payload)` — enough to assert the receiver
/// got what the schedule says it should.
type Msg = (usize, usize, Vec<f32>);

/// Execute `schedule` on real buffers, one thread per rank.
///
/// Buffers are modified in place; no finalization (callers apply
/// [`finalize`] for Average — or use [`allreduce`]).
pub fn run(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    assert_eq!(buffers.len(), schedule.n_ranks, "one buffer per rank");
    for b in buffers.iter() {
        assert_eq!(b.len(), schedule.n_elems, "buffer length mismatch");
    }
    schedule.validate().expect("invalid schedule");
    let n = schedule.n_ranks;
    if n == 1 || schedule.rounds.is_empty() {
        return;
    }

    // tx[src][dst] / rx[dst][src]
    let mut tx: Vec<Vec<Option<Sender<Msg>>>> = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut rx: Vec<Vec<Option<Receiver<Msg>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                let (t, r) = unbounded();
                tx[s][d] = Some(t);
                rx[d][s] = Some(r);
            }
        }
    }

    std::thread::scope(|scope| {
        for (rank, buf) in buffers.iter_mut().enumerate() {
            let tx_row = std::mem::take(&mut tx[rank]);
            let rx_row = std::mem::take(&mut rx[rank]);
            let sched = &*schedule;
            scope.spawn(move || {
                rank_main(rank, buf, sched, op, tx_row, rx_row);
            });
        }
    });
}

fn rank_main(
    rank: usize,
    buf: &mut [f32],
    schedule: &Schedule,
    op: ReduceOp,
    tx: Vec<Option<Sender<Msg>>>,
    rx: Vec<Option<Receiver<Msg>>>,
) {
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        let actions = &round.per_rank[rank];
        // Phase A: materialize and push all outgoing payloads. Payloads
        // are copied before any receive mutates the buffer, giving the
        // pre-round snapshot semantics exchanges rely on.
        for a in actions {
            if let Action::Send { peer, seg } = *a {
                let payload = buf[seg.offset..seg.end()].to_vec();
                tx[peer]
                    .as_ref()
                    .expect("send to self is rejected by validate")
                    .send((round_idx, seg.offset, payload))
                    .expect("receiver thread hung up");
            }
        }
        // Phase B: block on receives in action order.
        for a in actions {
            match *a {
                Action::Send { .. } => {}
                Action::RecvReduce { peer, seg } | Action::RecvReplace { peer, seg } => {
                    let (r, off, payload) = rx[peer]
                        .as_ref()
                        .expect("recv from self is rejected by validate")
                        .recv()
                        .expect("sender thread hung up");
                    assert_eq!(r, round_idx, "rank {rank}: out-of-round message from {peer}");
                    assert_eq!(off, seg.offset, "rank {rank}: segment mismatch from {peer}");
                    assert_eq!(payload.len(), seg.len, "rank {rank}: length mismatch from {peer}");
                    match a {
                        Action::RecvReduce { .. } => {
                            combine(op, &mut buf[seg.offset..seg.end()], &payload)
                        }
                        Action::RecvReplace { .. } => {
                            buf[seg.offset..seg.end()].copy_from_slice(&payload)
                        }
                        Action::Send { .. } => unreachable!(),
                    }
                }
            }
        }
    }
}

/// Full threaded allreduce: run the schedule and finalize the op.
pub fn allreduce(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    run(schedule, buffers, op);
    for b in buffers.iter_mut() {
        finalize(op, b, schedule.n_ranks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{self, LeaderAlgo, NodeGroups};
    use crate::reference::{assert_allreduce_result, expected_allreduce};
    use crate::{rabenseifner, rd, ring, tree};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 29 + i * 5) % 17) as f32 * 0.5 - 4.0).collect())
            .collect()
    }

    #[test]
    fn threaded_ring_matches_reference() {
        for &(n, e) in &[(2usize, 16usize), (4, 100), (6, 17), (7, 33)] {
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rd_matches_reference() {
        for &n in &[2usize, 5, 8, 9] {
            let ins = inputs(n, 24);
            let mut bufs = ins.clone();
            allreduce(&rd::allreduce(n, 24), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rabenseifner_matches_reference() {
        for &n in &[2usize, 4, 6, 8, 11] {
            let ins = inputs(n, 37);
            let mut bufs = ins.clone();
            allreduce(&rabenseifner::allreduce(n, 37), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_tree_matches_reference() {
        let ins = inputs(9, 12);
        let mut bufs = ins.clone();
        allreduce(&tree::allreduce(9, 12), &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn threaded_hierarchical_matches_reference() {
        let (n, e) = (12usize, 50usize);
        let groups = NodeGroups::dense(n, 4);
        let s = hierarchical::allreduce(n, e, &groups, LeaderAlgo::Rabenseifner);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn average_matches_expected() {
        let (n, e) = (4usize, 1000usize);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Average);
        let want = expected_allreduce(&ins, ReduceOp::Average);
        for b in &bufs {
            for (g, w) in b.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_buffer_exercises_parallel_reduce() {
        let (n, e) = (4usize, 1 << 16);
        let ins: Vec<Vec<f32>> = (0..n).map(|r| vec![r as f32 + 1.0; e]).collect();
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum);
        assert!(bufs.iter().all(|b| b.iter().all(|&x| (x - 10.0).abs() < 1e-4)));
    }

    #[test]
    fn single_rank_noop() {
        let mut bufs = vec![vec![1.0, 2.0]];
        allreduce(&ring::allreduce(1, 2), &mut bufs, ReduceOp::Sum);
        assert_eq!(bufs[0], vec![1.0, 2.0]);
    }

    #[test]
    fn deterministic_bitwise_across_runs() {
        // Same schedule + same inputs must give bit-identical results
        // (each rank's combine order is fixed by the schedule).
        let (n, e) = (6usize, 511usize);
        let ins = inputs(n, e);
        let mut a = ins.clone();
        let mut b = ins.clone();
        let s = ring::allreduce(n, e);
        allreduce(&s, &mut a, ReduceOp::Sum);
        allreduce(&s, &mut b, ReduceOp::Sum);
        assert_eq!(a, b);
    }
}
