//! Real execution: run a [`Schedule`] across OS threads with actual data.
//!
//! One thread per rank; messages travel over crossbeam channels (one
//! channel per ordered rank pair, so FIFO order within a pair gives us
//! free round sequencing). Deadlock-freedom is not an informal argument
//! about this executor's send hoisting anymore: [`Schedule::validate`]
//! delegates to the `verifier` crate, whose happens-before analysis
//! ([`verifier::hb`]) proves the waits-for graph over receives acyclic
//! under the *weaker* in-order issue model — every receive's matching
//! send is reachable without waiting on that receive, transitively. Any
//! schedule passing that proof cannot deadlock here, where sends are
//! additionally hoisted to the start of each round (phase A) and
//! channels are unbounded. In debug builds the executor runs the full
//! verifier on every schedule it has not seen before, *before* spawning
//! any rank thread; release builds keep the cheap structural check per
//! call (same cost as the old ad-hoc `validate`).
//!
//! Payload buffers are **pooled**: a send acquires a recycled `Vec<f32>`
//! from the executor's [`PayloadPool`] instead of allocating, and the
//! receiver returns the buffer to the pool once it has been reduced in.
//! Hold an [`ExecContext`] across calls (the training loop does) and the
//! steady state performs zero payload-buffer allocations — the pool
//! reaches its high-water mark during the first allreduce and every
//! later send reuses a pooled buffer ([`ExecContext::payload_allocations`]
//! exposes the counter the tests assert on).
//!
//! This is the executor the accuracy experiment trains with — the same
//! algorithm schedules the simulator times are the ones the real
//! gradients travel through.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use trace::Lane;

use crate::compression::{codec_for, Codec, CodecKind, EncodeScratch};
use crate::exec_trace::ExecTrace;
use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule, Violation};

/// A message: `(round, offset, payload)` — enough to assert the receiver
/// got what the schedule says it should.
type Msg = (usize, usize, Vec<f32>);

/// A compressed message: same header, codec-encoded payload bytes.
type MsgEnc = (usize, usize, Vec<u8>);

/// Structured executor failure. The old behavior — asserting on
/// buffer/rank mismatches and panicking on verification failure — is
/// gone: every way a run can refuse or abort now comes back as a value
/// the caller (the trainer, the elastic layer) can route on.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `buffers.len()` disagrees with the schedule's rank count.
    BufferCount { expected: usize, got: usize },
    /// One rank's buffer length disagrees with the schedule's element
    /// count.
    BufferLen { rank: usize, expected: usize, got: usize },
    /// The schedule failed static verification before any thread spawned.
    Rejected(Vec<Violation>),
    /// Ranks died (injected crash, or a peer exhausted its retry budget
    /// and declared them dead). The collective aborted; buffers are in
    /// an unspecified partial state and must be restored by the caller.
    /// Ranks are reported as *local indices* into the buffer slice.
    RanksDead { dead: Vec<usize> },
    /// A rank gave up waiting on a peer that never disconnected — the
    /// retry budget ran out with the peer silent but alive.
    RetriesExhausted { rank: usize, peer: usize, round: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BufferCount { expected, got } => {
                write!(f, "expected one buffer per rank ({expected}), got {got}")
            }
            ExecError::BufferLen { rank, expected, got } => {
                write!(f, "rank {rank} buffer holds {got} elems, schedule wants {expected}")
            }
            ExecError::Rejected(violations) => {
                write!(f, "schedule failed verification before thread spawn: {violations:?}")
            }
            ExecError::RanksDead { dead } => write!(f, "ranks {dead:?} died mid-collective"),
            ExecError::RetriesExhausted { rank, peer, round } => {
                write!(f, "rank {rank} exhausted retries waiting on {peer} in round {round}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A recycling free-list of payload buffers shared by all rank threads.
///
/// `acquire_copy` pops a pooled buffer (allocating a fresh one only when
/// the pool is dry) and fills it from a source slice; `release` returns
/// a consumed payload. The counters record every fresh buffer and every
/// capacity growth, so "zero steady-state allocation" is a testable
/// property rather than a comment.
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Mutex<Vec<Vec<f32>>>,
    /// Encoded-payload byte buffers for the compressed wire path.
    free_bytes: Mutex<Vec<Vec<u8>>>,
    /// Codec scratch sets: one checked out per rank thread for the
    /// duration of a compressed run, parked here between runs.
    scratch: Mutex<Vec<EncodeScratch>>,
    /// High-water capacity hint: fresh and undersized buffers are sized
    /// to this up front (the executor sets it to `schedule.n_elems`, an
    /// upper bound on any segment), so capacity growth happens at most
    /// once per buffer rather than once per size class encountered.
    hint: AtomicUsize,
    /// Same, for encoded byte buffers (`codec.encoded_len(n_elems)`).
    byte_hint: AtomicUsize,
    fresh: AtomicUsize,
    grown: AtomicUsize,
    /// Cumulative encoded payload bytes pushed by compressed runs, and
    /// the raw f32 bytes they stand in for — the wire-byte ledger the
    /// trace metrics and benches read.
    wire_sent: AtomicU64,
    raw_sent: AtomicU64,
}

/// A frozen copy of a pool's allocator counters — the anchor for
/// per-run deltas. Retried/degraded collectives rebuild their
/// [`ExecContext`] but keep the recycled buffers; snapshotting at run
/// boundaries keeps zero-allocation assertions from being polluted by
/// a retry's warm-up (see [`ExecContext::counter_snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    pub fresh: usize,
    pub grown: usize,
}

impl PoolCounters {
    /// Total allocator events in this snapshot.
    pub fn total(&self) -> usize {
        self.fresh + self.grown
    }
}

impl PayloadPool {
    /// Raise the capacity hint (never lowers it).
    pub(crate) fn reserve_hint(&self, len: usize) {
        self.hint.fetch_max(len, Ordering::Relaxed); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
    }

    /// A payload holding a copy of `src`, recycled when possible.
    pub(crate) fn acquire_copy(&self, src: &[f32]) -> Vec<f32> {
        let want = self.hint.load(Ordering::Relaxed).max(src.len()); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
        let mut buf = match self.free.lock().pop() {
            Some(b) => b,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
                Vec::with_capacity(want)
            }
        };
        buf.clear();
        if buf.capacity() < want {
            self.grown.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
            buf.reserve(want);
        }
        buf.extend_from_slice(src);
        buf
    }

    pub(crate) fn release(&self, buf: Vec<f32>) {
        self.free.lock().push(buf);
    }

    /// Raise the encoded-byte capacity hint (never lowers it).
    pub(crate) fn reserve_byte_hint(&self, len: usize) {
        self.byte_hint.fetch_max(len, Ordering::Relaxed); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
    }

    /// An empty byte buffer for a codec encode, recycled when possible.
    /// Counts against the same fresh/grown ledger as the f32 buffers.
    pub(crate) fn acquire_bytes(&self) -> Vec<u8> {
        let want = self.byte_hint.load(Ordering::Relaxed); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
        let mut buf = match self.free_bytes.lock().pop() {
            Some(b) => b,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
                Vec::with_capacity(want)
            }
        };
        buf.clear();
        if buf.capacity() < want {
            self.grown.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
            buf.reserve(want);
        }
        buf
    }

    pub(crate) fn release_bytes(&self, buf: Vec<u8>) {
        self.free_bytes.lock().push(buf);
    }

    /// A zero-filled f32 buffer of exactly `len` elements (the decode
    /// destination), recycled when possible.
    pub(crate) fn acquire_f32_len(&self, len: usize) -> Vec<f32> {
        let want = self.hint.load(Ordering::Relaxed).max(len); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
        let mut buf = match self.free.lock().pop() {
            Some(b) => b,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
                Vec::with_capacity(want)
            }
        };
        buf.clear();
        if buf.capacity() < want {
            self.grown.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): allocator statistic; buffers themselves hand off through the free-list mutex
            buf.reserve(want);
        }
        buf.resize(len, 0.0);
        buf
    }

    /// A codec scratch set (fresh sets cost nothing until first use;
    /// their internal buffers warm to the high-water size and recycle).
    pub(crate) fn acquire_scratch(&self) -> EncodeScratch {
        self.scratch.lock().pop().unwrap_or_default()
    }

    pub(crate) fn release_scratch(&self, s: EncodeScratch) {
        self.scratch.lock().push(s);
    }

    /// Record one compressed payload: `wire` encoded bytes standing in
    /// for `raw` f32 bytes.
    pub(crate) fn count_wire(&self, wire: usize, raw: usize) {
        self.wire_sent.fetch_add(wire as u64, Ordering::Relaxed); // lint: allow(relaxed): wire-byte ledger; read after the run joins, no payload data rides on it
        self.raw_sent.fetch_add(raw as u64, Ordering::Relaxed); // lint: allow(relaxed): wire-byte ledger; read after the run joins, no payload data rides on it
    }

    /// Cumulative encoded bytes pushed by compressed runs.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_sent.load(Ordering::Relaxed) // lint: allow(relaxed): wire-byte ledger; read after the run joins, no payload data rides on it
    }

    /// Cumulative raw f32 bytes those encoded payloads stand in for.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_sent.load(Ordering::Relaxed) // lint: allow(relaxed): wire-byte ledger; read after the run joins, no payload data rides on it
    }

    /// Total allocator events so far: fresh buffers plus capacity
    /// growths. Flat across calls ⇔ the steady state allocates nothing.
    pub fn allocations(&self) -> usize {
        self.fresh.load(Ordering::Relaxed) + self.grown.load(Ordering::Relaxed) // lint: allow(relaxed): allocator statistic read after the run joins
    }

    /// A frozen copy of the allocator counters (for per-run deltas).
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            fresh: self.fresh.load(Ordering::Relaxed), // lint: allow(relaxed): allocator statistic read after the run joins
            grown: self.grown.load(Ordering::Relaxed), // lint: allow(relaxed): allocator statistic read after the run joins
        }
    }

    /// Reset the allocator counters to zero, leaving the recycled
    /// buffers (and the capacity hint) in place. Used when a context is
    /// rebuilt around an inherited pool so the new context's
    /// zero-allocation accounting starts clean.
    pub fn reset_counters(&self) {
        self.fresh.store(0, Ordering::Relaxed); // lint: allow(relaxed): counter reset happens between runs, single-threaded
        self.grown.store(0, Ordering::Relaxed); // lint: allow(relaxed): counter reset happens between runs, single-threaded
    }

    /// Move every parked buffer out of `other` into this pool, adopting
    /// the larger capacity hint. The buffers were already paid for; the
    /// adopting pool's counters do not change.
    pub(crate) fn absorb_free_from(&self, other: &PayloadPool) {
        let mut donated = std::mem::take(&mut *other.free.lock());
        self.reserve_hint(other.hint.load(Ordering::Relaxed)); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
        self.free.lock().append(&mut donated);
        let mut donated_bytes = std::mem::take(&mut *other.free_bytes.lock());
        self.reserve_byte_hint(other.byte_hint.load(Ordering::Relaxed)); // lint: allow(relaxed): monotonic capacity hint; a stale read only costs one realloc
        self.free_bytes.lock().append(&mut donated_bytes);
        let mut donated_scratch = std::mem::take(&mut *other.scratch.lock());
        self.scratch.lock().append(&mut donated_scratch);
    }

    /// Buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.lock().len()
    }
}

/// A reusable threaded-allreduce executor owning the payload pool.
///
/// Construct once, call [`ExecContext::allreduce`] every step: payload
/// buffers recycle across rounds *and* across calls.
///
/// Verification happens *before* any rank thread spawns. In debug
/// builds every schedule this context has not executed before goes
/// through the full static verifier (structural + determinism +
/// happens-before); the set of already-verified schedule fingerprints
/// is memoized so a training loop re-running one schedule pays the
/// analysis once. Release builds run the structural layer only.
#[derive(Debug, Default)]
pub struct ExecContext {
    pool: PayloadPool,
    /// Fingerprints of schedules already proven clean by this context.
    #[cfg(debug_assertions)]
    verified: Mutex<std::collections::HashSet<u64>>,
}

/// A structure-sensitive fingerprint: two schedules collide only if
/// every round, rank, and action agrees. Only the debug-build
/// memoization path keys on it.
#[cfg(debug_assertions)]
fn schedule_fingerprint(schedule: &Schedule) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    schedule.n_ranks.hash(&mut h);
    schedule.n_elems.hash(&mut h);
    for round in &schedule.rounds {
        round.per_rank.hash(&mut h);
    }
    h.finish()
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// A context that eagerly runs the *full* verifier on `schedule`
    /// (all builds), pre-sizes the payload pool for it, and memoizes it
    /// as verified — the constructor the training loop uses so the
    /// per-step path never re-analyzes.
    pub fn for_schedule(schedule: &Schedule) -> Result<Self, ExecError> {
        schedule.validate().map_err(ExecError::Rejected)?;
        let ctx = Self::new();
        ctx.pool.reserve_hint(schedule.n_elems);
        #[cfg(debug_assertions)]
        ctx.verified.lock().insert(schedule_fingerprint(schedule));
        Ok(ctx)
    }

    /// Like [`ExecContext::for_schedule`], but inheriting the recycled
    /// payload buffers of a previous context — the elastic degradation
    /// path rebuilds its context around the surviving ranks without
    /// re-allocating (or double-counting) the warm pool. The new
    /// context's counters start at zero.
    pub fn for_schedule_with_pool(
        schedule: &Schedule,
        donor: &ExecContext,
    ) -> Result<Self, ExecError> {
        let ctx = Self::for_schedule(schedule)?;
        ctx.pool.absorb_free_from(&donor.pool);
        Ok(ctx)
    }

    /// Debug builds: full verification of unseen schedules, memoized.
    /// Fails with the structured violation list on a bad schedule —
    /// crucially, before any channel is created or thread spawned.
    #[cfg(debug_assertions)]
    fn verify_before_spawn(&self, schedule: &Schedule) -> Result<(), ExecError> {
        let fp = schedule_fingerprint(schedule);
        if self.verified.lock().contains(&fp) {
            return Ok(());
        }
        schedule.validate().map_err(ExecError::Rejected)?;
        self.verified.lock().insert(fp);
        Ok(())
    }

    /// Release builds: the cheap structural layer on every call (the
    /// same cost the old ad-hoc validate paid).
    #[cfg(not(debug_assertions))]
    fn verify_before_spawn(&self, schedule: &Schedule) -> Result<(), ExecError> {
        let violations = verifier::verify_structural(&schedule.to_ir());
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ExecError::Rejected(violations))
        }
    }

    /// Shared preamble of every execution path: buffer shape checks and
    /// pre-spawn verification.
    pub(crate) fn preflight(
        &self,
        schedule: &Schedule,
        buffers: &[Vec<f32>],
    ) -> Result<(), ExecError> {
        if buffers.len() != schedule.n_ranks {
            return Err(ExecError::BufferCount { expected: schedule.n_ranks, got: buffers.len() });
        }
        for (rank, b) in buffers.iter().enumerate() {
            if b.len() != schedule.n_elems {
                return Err(ExecError::BufferLen {
                    rank,
                    expected: schedule.n_elems,
                    got: b.len(),
                });
            }
        }
        self.verify_before_spawn(schedule)
    }

    pub(crate) fn pool(&self) -> &PayloadPool {
        &self.pool
    }

    /// Execute `schedule` on real buffers, one thread per rank.
    ///
    /// Buffers are modified in place; no finalization (callers apply
    /// [`finalize`] for Average — or use [`ExecContext::allreduce`]).
    pub fn run(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
    ) -> Result<(), ExecError> {
        self.run_traced(schedule, buffers, op, None)
    }

    /// [`ExecContext::run`] with per-rank trace lanes: each rank thread
    /// records a SEND span per payload pushed and a RECV span per
    /// blocking receive (wait + reduce) into `trace`'s lane for its
    /// *local* rank index. Lane lookup happens before the threads
    /// spawn; recording is the no-alloc ring write, so a traced run
    /// stays inside the zero-allocation budget.
    pub fn run_traced(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        trace: Option<&ExecTrace>,
    ) -> Result<(), ExecError> {
        self.preflight(schedule, buffers)?;
        let n = schedule.n_ranks;
        if n == 1 || schedule.rounds.is_empty() {
            return Ok(());
        }
        // Any segment is a sub-range of the rank buffer, so `n_elems`
        // bounds every payload; pre-sizing to it makes capacity growth a
        // once-per-buffer event.
        self.pool.reserve_hint(schedule.n_elems);

        // tx[src][dst] / rx[dst][src]
        let mut tx: Vec<Vec<Option<Sender<Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rx: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let (t, r) = unbounded();
                    tx[s][d] = Some(t);
                    rx[d][s] = Some(r);
                }
            }
        }

        std::thread::scope(|scope| {
            for (rank, buf) in buffers.iter_mut().enumerate() {
                let tx_row = std::mem::take(&mut tx[rank]);
                let rx_row = std::mem::take(&mut rx[rank]);
                let sched = &*schedule;
                let pool = &self.pool;
                let lane = trace.and_then(|t| t.lane(rank));
                scope.spawn(move || {
                    rank_main(rank, buf, sched, op, tx_row, rx_row, pool, lane);
                });
            }
        });
        Ok(())
    }

    /// Full threaded allreduce: run the schedule and finalize the op.
    pub fn allreduce(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
    ) -> Result<(), ExecError> {
        self.allreduce_traced(schedule, buffers, op, None)
    }

    /// [`ExecContext::allreduce`] with per-rank trace lanes (see
    /// [`ExecContext::run_traced`]).
    pub fn allreduce_traced(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        trace: Option<&ExecTrace>,
    ) -> Result<(), ExecError> {
        self.run_traced(schedule, buffers, op, trace)?;
        for b in buffers.iter_mut() {
            finalize(op, b, schedule.n_ranks);
        }
        Ok(())
    }

    /// Threaded allreduce with codec-compressed payloads: every hop
    /// encodes its segment through `codec` before the channel push and
    /// decodes on receipt, so the bytes that cross rank boundaries are
    /// the codec's wire format. Lossy codecs make this an *approximate*
    /// allreduce (quantization error compounds per hop) — it is still
    /// bit-deterministic across runs, because the codecs are
    /// CPU-independent and every rank's combine order is fixed by the
    /// schedule. `CodecKind::None` degrades to the identity wire format
    /// and matches [`ExecContext::allreduce`] bit-for-bit.
    ///
    /// Encoded buffers, decode destinations, and codec scratch all come
    /// from the payload pool: the steady state allocates nothing, the
    /// same property the raw path proves.
    pub fn allreduce_compressed(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        codec: CodecKind,
    ) -> Result<(), ExecError> {
        self.allreduce_compressed_traced(schedule, buffers, op, codec, None)
    }

    /// [`ExecContext::allreduce_compressed`] with per-rank trace lanes.
    /// SEND spans record the *encoded* byte count, so a trace of a
    /// compressed run shows the actual wire traffic.
    pub fn allreduce_compressed_traced(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        codec: CodecKind,
        trace: Option<&ExecTrace>,
    ) -> Result<(), ExecError> {
        self.run_compressed_traced(schedule, buffers, op, codec, trace)?;
        for b in buffers.iter_mut() {
            finalize(op, b, schedule.n_ranks);
        }
        Ok(())
    }

    fn run_compressed_traced(
        &self,
        schedule: &Schedule,
        buffers: &mut [Vec<f32>],
        op: ReduceOp,
        codec: CodecKind,
        trace: Option<&ExecTrace>,
    ) -> Result<(), ExecError> {
        self.preflight(schedule, buffers)?;
        let n = schedule.n_ranks;
        if n == 1 || schedule.rounds.is_empty() {
            return Ok(());
        }
        self.pool.reserve_hint(schedule.n_elems);
        self.pool.reserve_byte_hint(codec.encoded_len(schedule.n_elems));
        let codec: &'static dyn Codec = codec_for(codec);

        let mut tx: Vec<Vec<Option<Sender<MsgEnc>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rx: Vec<Vec<Option<Receiver<MsgEnc>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let (t, r) = unbounded();
                    tx[s][d] = Some(t);
                    rx[d][s] = Some(r);
                }
            }
        }

        std::thread::scope(|scope| {
            for (rank, buf) in buffers.iter_mut().enumerate() {
                let tx_row = std::mem::take(&mut tx[rank]);
                let rx_row = std::mem::take(&mut rx[rank]);
                let sched = &*schedule;
                let pool = &self.pool;
                let lane = trace.and_then(|t| t.lane(rank));
                scope.spawn(move || {
                    rank_main_compressed(rank, buf, sched, op, codec, tx_row, rx_row, pool, lane);
                });
            }
        });
        Ok(())
    }

    /// Cumulative encoded bytes this context's compressed runs pushed.
    pub fn wire_bytes(&self) -> u64 {
        self.pool.wire_bytes()
    }

    /// Cumulative raw f32 bytes those encoded payloads replaced.
    pub fn raw_bytes(&self) -> u64 {
        self.pool.raw_bytes()
    }

    /// Payload-buffer allocator events so far (see
    /// [`PayloadPool::allocations`]).
    pub fn payload_allocations(&self) -> usize {
        self.pool.allocations()
    }

    /// Freeze the pool's allocator counters — the anchor for
    /// [`ExecContext::payload_allocations_since`].
    pub fn counter_snapshot(&self) -> PoolCounters {
        self.pool.counters()
    }

    /// Allocator events since `snapshot` was taken on this context.
    /// Zero across a window ⇔ every payload in the window recycled.
    pub fn payload_allocations_since(&self, snapshot: PoolCounters) -> usize {
        self.pool.allocations() - snapshot.total()
    }

    /// Payload buffers currently recycled and idle in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.pooled()
    }
}

// Instrumentation inside this function must stay on the no-alloc
// recorder API (`record`/`record_args`); the ring write is the only
// trace cost the steady-state step pays.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: usize,
    buf: &mut [f32],
    schedule: &Schedule,
    op: ReduceOp,
    tx: Vec<Option<Sender<Msg>>>,
    rx: Vec<Option<Receiver<Msg>>>,
    pool: &PayloadPool,
    lane: Option<&Lane>,
) {
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        let actions = &round.per_rank[rank];
        // Phase A: materialize and push all outgoing payloads. Payloads
        // are copied before any receive mutates the buffer, giving the
        // pre-round snapshot semantics exchanges rely on.
        for a in actions {
            if let Action::Send { peer, seg } = *a {
                let t0 = lane.map(Lane::now_us);
                let payload = pool.acquire_copy(&buf[seg.offset..seg.end()]);
                tx[peer]
                    .as_ref()
                    .expect("send to self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                    .send((round_idx, seg.offset, payload))
                    .expect("receiver thread hung up"); // lint: allow(unwrap): scoped threads outlive the round
                if let (Some(l), Some(t0)) = (lane, t0) {
                    // a1 is wire bytes, same convention as the
                    // compressed path — the critical-path analyzer's
                    // wire ledger sums it.
                    l.record_args(
                        "SEND",
                        "send",
                        t0,
                        l.now_us() - t0,
                        peer as u64,
                        4 * seg.len as u64,
                    );
                }
            }
        }
        // Phase B: block on receives in action order.
        for a in actions {
            match *a {
                Action::Send { .. } => {}
                Action::RecvReduce { peer, seg } | Action::RecvReplace { peer, seg } => {
                    let t0 = lane.map(Lane::now_us);
                    let (r, off, payload) = rx[peer]
                        .as_ref()
                        .expect("recv from self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                        .recv()
                        .expect("sender thread hung up"); // lint: allow(unwrap): UnmatchedRecv + DeadlockCycle rules proven before spawn
                    assert_eq!(r, round_idx, "rank {rank}: out-of-round message from {peer}");
                    assert_eq!(off, seg.offset, "rank {rank}: segment mismatch from {peer}");
                    assert_eq!(payload.len(), seg.len, "rank {rank}: length mismatch from {peer}");
                    match a {
                        Action::RecvReduce { .. } => {
                            combine(op, &mut buf[seg.offset..seg.end()], &payload)
                        }
                        Action::RecvReplace { .. } => {
                            buf[seg.offset..seg.end()].copy_from_slice(&payload)
                        }
                        Action::Send { .. } => unreachable!(),
                    }
                    pool.release(payload);
                    if let (Some(l), Some(t0)) = (lane, t0) {
                        l.record_args(
                            "RECV",
                            "recv",
                            t0,
                            l.now_us() - t0,
                            peer as u64,
                            4 * seg.len as u64,
                        );
                    }
                }
            }
        }
    }
}

// Compressed twin of `rank_main`: encode before every channel push,
// decode into a pooled f32 buffer before every reduce. Same phase
// structure, same span cats — only the payload representation differs.
// The codec scratch is checked out once per thread, so the per-action
// cost is the encode/decode kernels plus two pool pops.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn rank_main_compressed(
    rank: usize,
    buf: &mut [f32],
    schedule: &Schedule,
    op: ReduceOp,
    codec: &dyn Codec,
    tx: Vec<Option<Sender<MsgEnc>>>,
    rx: Vec<Option<Receiver<MsgEnc>>>,
    pool: &PayloadPool,
    lane: Option<&Lane>,
) {
    let mut scratch = pool.acquire_scratch();
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        let actions = &round.per_rank[rank];
        // Phase A: encode and push all outgoing payloads (pre-round
        // snapshot semantics, same as the raw path).
        for a in actions {
            if let Action::Send { peer, seg } = *a {
                let t0 = lane.map(Lane::now_us);
                let mut payload = pool.acquire_bytes();
                codec.encode(&buf[seg.offset..seg.end()], &mut payload, &mut scratch);
                let wire = payload.len();
                pool.count_wire(wire, 4 * seg.len);
                tx[peer]
                    .as_ref()
                    .expect("send to self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                    .send((round_idx, seg.offset, payload))
                    .expect("receiver thread hung up"); // lint: allow(unwrap): scoped threads outlive the round
                if let (Some(l), Some(t0)) = (lane, t0) {
                    l.record_args("SEND", "send", t0, l.now_us() - t0, peer as u64, wire as u64);
                }
            }
        }
        // Phase B: block on receives in action order.
        for a in actions {
            match *a {
                Action::Send { .. } => {}
                Action::RecvReduce { peer, seg } | Action::RecvReplace { peer, seg } => {
                    let t0 = lane.map(Lane::now_us);
                    let (r, off, payload) = rx[peer]
                        .as_ref()
                        .expect("recv from self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                        .recv()
                        .expect("sender thread hung up"); // lint: allow(unwrap): UnmatchedRecv + DeadlockCycle rules proven before spawn
                    assert_eq!(r, round_idx, "rank {rank}: out-of-round message from {peer}");
                    assert_eq!(off, seg.offset, "rank {rank}: segment mismatch from {peer}");
                    assert_eq!(
                        payload.len(),
                        codec.encoded_len(seg.len),
                        "rank {rank}: wire length mismatch from {peer}"
                    );
                    let mut dec = pool.acquire_f32_len(seg.len);
                    codec.decode(&payload, &mut dec, &mut scratch);
                    match a {
                        Action::RecvReduce { .. } => {
                            combine(op, &mut buf[seg.offset..seg.end()], &dec)
                        }
                        Action::RecvReplace { .. } => {
                            buf[seg.offset..seg.end()].copy_from_slice(&dec)
                        }
                        Action::Send { .. } => unreachable!(),
                    }
                    pool.release(dec);
                    pool.release_bytes(payload);
                    if let (Some(l), Some(t0)) = (lane, t0) {
                        l.record_args(
                            "RECV",
                            "recv",
                            t0,
                            l.now_us() - t0,
                            peer as u64,
                            codec.encoded_len(seg.len) as u64,
                        );
                    }
                }
            }
        }
    }
    pool.release_scratch(scratch);
}

/// Execute `schedule` with a throwaway [`ExecContext`] (buffers still
/// recycle within the call). Long-lived callers should hold their own
/// context so the pool survives across steps.
pub fn run(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) -> Result<(), ExecError> {
    ExecContext::new().run(schedule, buffers, op)
}

/// Full threaded allreduce with a throwaway [`ExecContext`]: run the
/// schedule and finalize the op.
pub fn allreduce(
    schedule: &Schedule,
    buffers: &mut [Vec<f32>],
    op: ReduceOp,
) -> Result<(), ExecError> {
    ExecContext::new().allreduce(schedule, buffers, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{self, LeaderAlgo, NodeGroups};
    use crate::reference::{assert_allreduce_result, expected_allreduce};
    use crate::{rabenseifner, rd, ring, tree};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 29 + i * 5) % 17) as f32 * 0.5 - 4.0).collect())
            .collect()
    }

    #[test]
    fn threaded_ring_matches_reference() {
        for &(n, e) in &[(2usize, 16usize), (4, 100), (6, 17), (7, 33)] {
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum).unwrap();
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rd_matches_reference() {
        for &n in &[2usize, 5, 8, 9] {
            let ins = inputs(n, 24);
            let mut bufs = ins.clone();
            allreduce(&rd::allreduce(n, 24), &mut bufs, ReduceOp::Sum).unwrap();
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rabenseifner_matches_reference() {
        for &n in &[2usize, 4, 6, 8, 11] {
            let ins = inputs(n, 37);
            let mut bufs = ins.clone();
            allreduce(&rabenseifner::allreduce(n, 37), &mut bufs, ReduceOp::Sum).unwrap();
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_tree_matches_reference() {
        let ins = inputs(9, 12);
        let mut bufs = ins.clone();
        allreduce(&tree::allreduce(9, 12), &mut bufs, ReduceOp::Sum).unwrap();
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn threaded_hierarchical_matches_reference() {
        let (n, e) = (12usize, 50usize);
        let groups = NodeGroups::dense(n, 4);
        let s = hierarchical::allreduce(n, e, &groups, LeaderAlgo::Rabenseifner);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn average_matches_expected() {
        let (n, e) = (4usize, 1000usize);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Average).unwrap();
        let want = expected_allreduce(&ins, ReduceOp::Average);
        for b in &bufs {
            for (g, w) in b.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_buffer_exercises_parallel_reduce() {
        let (n, e) = (4usize, 1 << 16);
        let ins: Vec<Vec<f32>> = (0..n).map(|r| vec![r as f32 + 1.0; e]).collect();
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum).unwrap();
        assert!(bufs.iter().all(|b| b.iter().all(|&x| (x - 10.0).abs() < 1e-4)));
    }

    #[test]
    fn single_rank_noop() {
        let mut bufs = vec![vec![1.0, 2.0]];
        allreduce(&ring::allreduce(1, 2), &mut bufs, ReduceOp::Sum).unwrap();
        assert_eq!(bufs[0], vec![1.0, 2.0]);
    }

    #[test]
    fn deterministic_bitwise_across_runs() {
        // Same schedule + same inputs must give bit-identical results
        // (each rank's combine order is fixed by the schedule).
        let (n, e) = (6usize, 511usize);
        let ins = inputs(n, e);
        let mut a = ins.clone();
        let mut b = ins.clone();
        let s = ring::allreduce(n, e);
        allreduce(&s, &mut a, ReduceOp::Sum).unwrap();
        allreduce(&s, &mut b, ReduceOp::Sum).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_context_matches_throwaway() {
        // A long-lived context must compute exactly what fresh ones do.
        let (n, e) = (5usize, 97usize);
        let s = ring::allreduce(n, e);
        let ctx = ExecContext::new();
        for round in 0..3 {
            let ins = inputs(n, e);
            let mut a = ins.clone();
            let mut b = ins.clone();
            ctx.allreduce(&s, &mut a, ReduceOp::Sum).unwrap();
            allreduce(&s, &mut b, ReduceOp::Sum).unwrap();
            assert_eq!(a, b, "round {round}");
        }
    }

    #[test]
    fn steady_state_allocates_no_payload_buffers() {
        // The pool hits its high-water mark during the first few
        // allreduces (buffer count can creep while thread interleavings
        // vary); after that every call must recycle (zero fresh
        // buffers, zero capacity growths).
        let (n, e) = (6usize, 1024usize);
        let s = rabenseifner::allreduce(n, e);
        let ctx = ExecContext::new();
        for _ in 0..3 {
            let mut bufs = inputs(n, e);
            ctx.allreduce(&s, &mut bufs, ReduceOp::Average).unwrap();
        }
        let after_warmup = ctx.payload_allocations();
        assert!(after_warmup > 0, "warm-up must have populated the pool");
        for _ in 0..5 {
            let mut bufs = inputs(n, e);
            ctx.allreduce(&s, &mut bufs, ReduceOp::Average).unwrap();
        }
        assert_eq!(
            ctx.payload_allocations(),
            after_warmup,
            "steady-state allreduce allocated payload buffers"
        );
        assert!(ctx.pooled_buffers() > 0, "buffers must be parked between calls");
    }

    #[test]
    fn pool_recycles_within_a_single_call() {
        // Even a throwaway context recycles across rounds: a ring over
        // many rounds needs far fewer distinct buffers than sends.
        let (n, e) = (8usize, 4096usize);
        let s = ring::allreduce(n, e);
        let sends: usize = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        let ctx = ExecContext::new();
        let mut bufs = inputs(n, e);
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
        assert!(
            ctx.payload_allocations() < sends,
            "pool must recycle: {} allocations for {} sends",
            ctx.payload_allocations(),
            sends
        );
    }

    #[test]
    fn corrupted_schedule_rejected_before_any_thread_spawns() {
        // Drop rank 1's receive: rank 0's send dangles. The
        // verification gate must return a structured error before any
        // channel exists or rank thread spawns — no panic, no partial
        // execution.
        let mut s = ring::allreduce(4, 16);
        s.rounds[0].per_rank[1].retain(|a| a.is_send());
        let ctx = ExecContext::new();
        let ins = inputs(4, 16);
        let mut bufs = ins.clone();
        let err = ctx.run(&s, &mut bufs, ReduceOp::Sum).expect_err("must reject");
        let msg = err.to_string();
        assert!(msg.contains("before thread spawn"), "unexpected error: {msg}");
        assert!(msg.contains("UnmatchedSend") || msg.contains("UnmatchedRecv"), "{msg}");
        assert_eq!(bufs, ins, "rejected run must not touch the buffers");
    }

    #[test]
    fn buffer_mismatches_are_structured_errors() {
        let s = ring::allreduce(4, 16);
        let ctx = ExecContext::new();
        // Wrong rank count.
        let mut three = inputs(3, 16);
        assert_eq!(
            ctx.run(&s, &mut three, ReduceOp::Sum),
            Err(ExecError::BufferCount { expected: 4, got: 3 })
        );
        // Wrong buffer length on one rank.
        let mut bufs = inputs(4, 16);
        bufs[2].truncate(7);
        assert_eq!(
            ctx.run(&s, &mut bufs, ReduceOp::Sum),
            Err(ExecError::BufferLen { rank: 2, expected: 16, got: 7 })
        );
    }

    #[test]
    fn for_schedule_verifies_at_construction() {
        assert!(ExecContext::for_schedule(&ring::allreduce(4, 16)).is_ok());
        let mut bad = ring::allreduce(4, 16);
        bad.rounds[0].per_rank[1].clear();
        let err = ExecContext::for_schedule(&bad).expect_err("must reject broken schedule");
        assert!(matches!(err, ExecError::Rejected(ref v) if !v.is_empty()), "{err}");
    }

    #[test]
    fn counter_snapshots_isolate_runs() {
        let (n, e) = (4usize, 256usize);
        let s = ring::allreduce(n, e);
        let ctx = ExecContext::for_schedule(&s).expect("valid schedule");
        for _ in 0..3 {
            let mut bufs = inputs(n, e);
            ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
        }
        let snap = ctx.counter_snapshot();
        let mut bufs = inputs(n, e);
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
        assert_eq!(
            ctx.payload_allocations_since(snap),
            0,
            "steady-state window must be allocation-free relative to its snapshot"
        );
    }

    #[test]
    fn rebuilt_context_inherits_pool_with_clean_counters() {
        // The elastic degradation path rebuilds a context for the
        // surviving ranks; the recycled buffers must carry over and the
        // new context's accounting must start at zero, so a retried
        // collective cannot pollute zero-alloc assertions.
        let s4 = ring::allreduce(4, 128);
        let ctx4 = ExecContext::for_schedule(&s4).expect("valid");
        let mut bufs = inputs(4, 128);
        ctx4.allreduce(&s4, &mut bufs, ReduceOp::Sum).unwrap();
        assert!(ctx4.payload_allocations() > 0);
        assert!(ctx4.pooled_buffers() > 0);
        let donated = ctx4.pooled_buffers();

        let s3 = ring::allreduce(3, 128);
        let ctx3 = ExecContext::for_schedule_with_pool(&s3, &ctx4).expect("valid");
        assert_eq!(ctx3.payload_allocations(), 0, "inherited buffers are not new allocations");
        assert_eq!(ctx3.pooled_buffers(), donated, "warm pool must transfer");
        assert_eq!(ctx4.pooled_buffers(), 0, "donor pool is drained");
        let mut bufs3 = inputs(3, 128);
        ctx3.allreduce(&s3, &mut bufs3, ReduceOp::Sum).unwrap();
        assert_eq!(
            ctx3.payload_allocations(),
            0,
            "a 3-rank ring needs fewer buffers than the donated 4-rank pool holds"
        );
    }

    #[test]
    fn for_schedule_context_computes_correctly_and_presizes() {
        let (n, e) = (5usize, 257usize);
        let s = ring::allreduce(n, e);
        let ctx = ExecContext::for_schedule(&s).expect("valid schedule");
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum).unwrap();
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn pool_recycles_across_size_classes() {
        let pool = PayloadPool::default();
        let big = vec![1.0f32; 1000];
        let small = vec![2.0f32; 10];
        let b1 = pool.acquire_copy(&big);
        assert_eq!(pool.allocations(), 1, "one fresh buffer");
        assert!(b1.capacity() >= 1000);
        pool.release(b1);
        // A smaller payload reuses the big buffer without growing.
        let b2 = pool.acquire_copy(&small);
        assert_eq!(pool.allocations(), 1);
        assert_eq!(b2.len(), 10);
        pool.release(b2);
        // Same-size again: still no new events.
        let b3 = pool.acquire_copy(&big);
        assert_eq!(pool.allocations(), 1);
        assert_eq!(b3[999], 1.0);
    }

    #[test]
    fn traced_run_records_per_rank_lanes_without_changing_results() {
        let (n, e) = (4usize, 64usize);
        let s = ring::allreduce(n, e);
        let ins = inputs(n, e);
        let mut plain = ins.clone();
        allreduce(&s, &mut plain, ReduceOp::Sum).unwrap();

        let rec = trace::TraceRecorder::new();
        let t = ExecTrace::comm(&rec, &(0..n).collect::<Vec<_>>());
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let mut traced = ins.clone();
        ctx.allreduce_traced(&s, &mut traced, ReduceOp::Sum, Some(&t)).unwrap();
        assert_eq!(traced, plain, "tracing must not perturb the numbers");

        let snap = rec.snapshot();
        assert_eq!(snap.pids(), (0..n as u32).collect::<Vec<_>>());
        let sends: usize = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter(|a| a.is_send())
            .count();
        let recorded_sends: usize =
            snap.lanes.iter().flat_map(|l| l.spans.iter()).filter(|sp| sp.cat == "SEND").count();
        let recorded_recvs: usize =
            snap.lanes.iter().flat_map(|l| l.spans.iter()).filter(|sp| sp.cat == "RECV").count();
        assert_eq!(recorded_sends, sends, "one SEND span per schedule send");
        assert_eq!(recorded_recvs, sends, "one RECV span per matching receive");
    }

    #[test]
    fn traced_steady_state_stays_pool_allocation_free() {
        let (n, e) = (4usize, 512usize);
        let s = ring::allreduce(n, e);
        let rec = trace::TraceRecorder::new();
        let t = ExecTrace::comm(&rec, &(0..n).collect::<Vec<_>>());
        let ctx = ExecContext::for_schedule(&s).unwrap();
        for _ in 0..3 {
            let mut bufs = inputs(n, e);
            ctx.allreduce_traced(&s, &mut bufs, ReduceOp::Sum, Some(&t)).unwrap();
        }
        let snap = ctx.counter_snapshot();
        for _ in 0..3 {
            let mut bufs = inputs(n, e);
            ctx.allreduce_traced(&s, &mut bufs, ReduceOp::Sum, Some(&t)).unwrap();
        }
        assert_eq!(ctx.payload_allocations_since(snap), 0, "tracing must not cost payload buffers");
    }

    #[test]
    fn compressed_none_matches_uncompressed_bitwise() {
        let (n, e) = (5usize, 513usize);
        let s = ring::allreduce(n, e);
        let ins = inputs(n, e);
        let mut raw = ins.clone();
        allreduce(&s, &mut raw, ReduceOp::Sum).unwrap();
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let mut comp = ins.clone();
        ctx.allreduce_compressed(&s, &mut comp, ReduceOp::Sum, CodecKind::None).unwrap();
        assert_eq!(raw, comp, "identity codec must not change a single bit");
    }

    #[test]
    fn compressed_allreduce_tracks_reference_within_codec_tolerance() {
        // Hop-wise lossy compression compounds per round; each codec's
        // tolerance is its per-hop half-step bound times the hop count,
        // against input sums bounded by |x| <= 4.5 per rank.
        let (n, e) = (4usize, 1000usize);
        let s = ring::allreduce(n, e);
        let ins = inputs(n, e);
        let want = expected_allreduce(&ins, ReduceOp::Sum);
        for (codec, tol) in
            [(CodecKind::Fp16, 0.05f32), (CodecKind::Int8, 0.75), (CodecKind::Int4, 12.0)]
        {
            let ctx = ExecContext::for_schedule(&s).unwrap();
            let mut bufs = ins.clone();
            ctx.allreduce_compressed(&s, &mut bufs, ReduceOp::Sum, codec).unwrap();
            for b in &bufs {
                for (i, (g, w)) in b.iter().zip(&want).enumerate() {
                    assert!((g - w).abs() <= tol, "{codec} elem {i}: got {g} want {w} tol {tol}");
                }
            }
        }
    }

    #[test]
    fn compressed_allreduce_is_bit_deterministic_across_runs() {
        let (n, e) = (6usize, 777usize);
        let s = rabenseifner::allreduce(n, e);
        for codec in CodecKind::ALL {
            let ins = inputs(n, e);
            let mut a = ins.clone();
            let mut b = ins.clone();
            let ctx = ExecContext::for_schedule(&s).unwrap();
            ctx.allreduce_compressed(&s, &mut a, ReduceOp::Sum, codec).unwrap();
            ctx.allreduce_compressed(&s, &mut b, ReduceOp::Sum, codec).unwrap();
            let bits = |v: &[Vec<f32>]| {
                v.iter().flat_map(|b| b.iter().map(|x| x.to_bits())).collect::<Vec<_>>()
            };
            assert_eq!(bits(&a), bits(&b), "{codec}: compressed allreduce must be deterministic");
        }
    }

    #[test]
    fn compressed_steady_state_allocates_no_pool_buffers() {
        let (n, e) = (4usize, 1024usize);
        let s = ring::allreduce(n, e);
        // Absolute worst case: with unbounded channels every payload in
        // the schedule could be in flight at once, so one buffer per
        // send (per pool) bounds peak demand regardless of interleaving.
        let sends = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter(|a| a.is_send())
            .count();
        for codec in [CodecKind::Fp16, CodecKind::Int8, CodecKind::TopK] {
            let ctx = ExecContext::for_schedule(&s).unwrap();
            for _ in 0..sends {
                ctx.pool.release(Vec::with_capacity(e));
                ctx.pool.release_bytes(Vec::with_capacity(codec.encoded_len(e)));
            }
            let snap = ctx.counter_snapshot();
            for _ in 0..5 {
                let mut bufs = inputs(n, e);
                ctx.allreduce_compressed(&s, &mut bufs, ReduceOp::Sum, codec).unwrap();
            }
            assert_eq!(
                ctx.payload_allocations_since(snap),
                0,
                "{codec}: compressed allreduce allocated despite a worst-case-sized pool"
            );
        }
    }

    #[test]
    fn wire_byte_ledger_matches_encoded_len_exactly() {
        let (n, e) = (4usize, 1000usize);
        let s = ring::allreduce(n, e);
        let expected_raw: u64 = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter_map(|a| match a {
                Action::Send { seg, .. } => Some(4 * seg.len as u64),
                _ => None,
            })
            .sum();
        let expected_wire: u64 = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter_map(|a| match a {
                Action::Send { seg, .. } => Some(CodecKind::Int8.encoded_len(seg.len) as u64),
                _ => None,
            })
            .sum();
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let mut bufs = inputs(n, e);
        ctx.allreduce_compressed(&s, &mut bufs, ReduceOp::Sum, CodecKind::Int8).unwrap();
        assert_eq!(ctx.wire_bytes(), expected_wire, "wire ledger must bill encoded_len exactly");
        assert_eq!(ctx.raw_bytes(), expected_raw, "raw ledger must bill 4 bytes per element");
        assert!(
            ctx.raw_bytes() as f64 / ctx.wire_bytes() as f64 >= 3.5,
            "int8 must cut wire bytes at least 3.5x"
        );
    }

    #[test]
    fn compressed_traced_records_wire_bytes_in_send_spans() {
        let (n, e) = (4usize, 512usize);
        let s = ring::allreduce(n, e);
        let rec = trace::TraceRecorder::new();
        let t = ExecTrace::comm(&rec, &(0..n).collect::<Vec<_>>());
        let ctx = ExecContext::for_schedule(&s).unwrap();
        let mut bufs = inputs(n, e);
        ctx.allreduce_compressed_traced(&s, &mut bufs, ReduceOp::Sum, CodecKind::Fp16, Some(&t))
            .unwrap();
        let snap = rec.snapshot();
        let send_bytes: u64 = snap
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter())
            .filter(|sp| sp.cat == "SEND")
            .map(|sp| sp.a1)
            .sum();
        assert_eq!(send_bytes, ctx.wire_bytes(), "SEND spans must carry encoded byte counts");
    }

    #[test]
    fn pool_hint_presizes_fresh_buffers() {
        let pool = PayloadPool::default();
        pool.reserve_hint(500);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert!(b.capacity() >= 500, "fresh buffer must honor the hint");
        assert_eq!(pool.allocations(), 1);
        pool.release(b);
        // Raising the hint grows a recycled buffer exactly once.
        pool.reserve_hint(2000);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert!(b.capacity() >= 2000);
        assert_eq!(pool.allocations(), 2, "one growth event");
        pool.release(b);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert_eq!(pool.allocations(), 2, "no further events");
        drop(b);
    }
}
