//! Real execution: run a [`Schedule`] across OS threads with actual data.
//!
//! One thread per rank; messages travel over crossbeam channels (one
//! channel per ordered rank pair, so FIFO order within a pair gives us
//! free round sequencing). Deadlock-freedom is not an informal argument
//! about this executor's send hoisting anymore: [`Schedule::validate`]
//! delegates to the `verifier` crate, whose happens-before analysis
//! ([`verifier::hb`]) proves the waits-for graph over receives acyclic
//! under the *weaker* in-order issue model — every receive's matching
//! send is reachable without waiting on that receive, transitively. Any
//! schedule passing that proof cannot deadlock here, where sends are
//! additionally hoisted to the start of each round (phase A) and
//! channels are unbounded. In debug builds the executor runs the full
//! verifier on every schedule it has not seen before, *before* spawning
//! any rank thread; release builds keep the cheap structural check per
//! call (same cost as the old ad-hoc `validate`).
//!
//! Payload buffers are **pooled**: a send acquires a recycled `Vec<f32>`
//! from the executor's [`PayloadPool`] instead of allocating, and the
//! receiver returns the buffer to the pool once it has been reduced in.
//! Hold an [`ExecContext`] across calls (the training loop does) and the
//! steady state performs zero payload-buffer allocations — the pool
//! reaches its high-water mark during the first allreduce and every
//! later send reuses a pooled buffer ([`ExecContext::payload_allocations`]
//! exposes the counter the tests assert on).
//!
//! This is the executor the accuracy experiment trains with — the same
//! algorithm schedules the simulator times are the ones the real
//! gradients travel through.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule};

/// A message: `(round, offset, payload)` — enough to assert the receiver
/// got what the schedule says it should.
type Msg = (usize, usize, Vec<f32>);

/// A recycling free-list of payload buffers shared by all rank threads.
///
/// `acquire_copy` pops a pooled buffer (allocating a fresh one only when
/// the pool is dry) and fills it from a source slice; `release` returns
/// a consumed payload. The counters record every fresh buffer and every
/// capacity growth, so "zero steady-state allocation" is a testable
/// property rather than a comment.
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Mutex<Vec<Vec<f32>>>,
    /// High-water capacity hint: fresh and undersized buffers are sized
    /// to this up front (the executor sets it to `schedule.n_elems`, an
    /// upper bound on any segment), so capacity growth happens at most
    /// once per buffer rather than once per size class encountered.
    hint: AtomicUsize,
    fresh: AtomicUsize,
    grown: AtomicUsize,
}

impl PayloadPool {
    /// Raise the capacity hint (never lowers it).
    fn reserve_hint(&self, len: usize) {
        self.hint.fetch_max(len, Ordering::Relaxed);
    }

    /// A payload holding a copy of `src`, recycled when possible.
    fn acquire_copy(&self, src: &[f32]) -> Vec<f32> {
        let want = self.hint.load(Ordering::Relaxed).max(src.len());
        let mut buf = match self.free.lock().pop() {
            Some(b) => b,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(want)
            }
        };
        buf.clear();
        if buf.capacity() < want {
            self.grown.fetch_add(1, Ordering::Relaxed);
            buf.reserve(want);
        }
        buf.extend_from_slice(src);
        buf
    }

    fn release(&self, buf: Vec<f32>) {
        self.free.lock().push(buf);
    }

    /// Total allocator events so far: fresh buffers plus capacity
    /// growths. Flat across calls ⇔ the steady state allocates nothing.
    pub fn allocations(&self) -> usize {
        self.fresh.load(Ordering::Relaxed) + self.grown.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.free.lock().len()
    }
}

/// A reusable threaded-allreduce executor owning the payload pool.
///
/// Construct once, call [`ExecContext::allreduce`] every step: payload
/// buffers recycle across rounds *and* across calls.
///
/// Verification happens *before* any rank thread spawns. In debug
/// builds every schedule this context has not executed before goes
/// through the full static verifier (structural + determinism +
/// happens-before); the set of already-verified schedule fingerprints
/// is memoized so a training loop re-running one schedule pays the
/// analysis once. Release builds run the structural layer only.
#[derive(Debug, Default)]
pub struct ExecContext {
    pool: PayloadPool,
    /// Fingerprints of schedules already proven clean by this context.
    #[cfg(debug_assertions)]
    verified: Mutex<std::collections::HashSet<u64>>,
}

/// A structure-sensitive fingerprint: two schedules collide only if
/// every round, rank, and action agrees. Only the debug-build
/// memoization path keys on it.
#[cfg(debug_assertions)]
fn schedule_fingerprint(schedule: &Schedule) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    schedule.n_ranks.hash(&mut h);
    schedule.n_elems.hash(&mut h);
    for round in &schedule.rounds {
        round.per_rank.hash(&mut h);
    }
    h.finish()
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// A context that eagerly runs the *full* verifier on `schedule`
    /// (all builds), pre-sizes the payload pool for it, and memoizes it
    /// as verified — the constructor the training loop uses so the
    /// per-step path never re-analyzes.
    pub fn for_schedule(schedule: &Schedule) -> Result<Self, Vec<crate::sched::Violation>> {
        schedule.validate()?;
        let ctx = Self::new();
        ctx.pool.reserve_hint(schedule.n_elems);
        #[cfg(debug_assertions)]
        ctx.verified.lock().insert(schedule_fingerprint(schedule));
        Ok(ctx)
    }

    /// Debug builds: full verification of unseen schedules, memoized.
    /// Panics with the structured violation list on a bad schedule —
    /// crucially, before any channel is created or thread spawned.
    #[cfg(debug_assertions)]
    fn verify_before_spawn(&self, schedule: &Schedule) {
        let fp = schedule_fingerprint(schedule);
        if self.verified.lock().contains(&fp) {
            return;
        }
        if let Err(violations) = schedule.validate() {
            panic!("schedule verification failed before thread spawn: {violations:?}");
        }
        self.verified.lock().insert(fp);
    }

    /// Release builds: the cheap structural layer on every call (the
    /// same cost the old ad-hoc validate paid).
    #[cfg(not(debug_assertions))]
    fn verify_before_spawn(&self, schedule: &Schedule) {
        let violations = verifier::verify_structural(&schedule.to_ir());
        if !violations.is_empty() {
            panic!("schedule verification failed before thread spawn: {violations:?}");
        }
    }

    /// Execute `schedule` on real buffers, one thread per rank.
    ///
    /// Buffers are modified in place; no finalization (callers apply
    /// [`finalize`] for Average — or use [`ExecContext::allreduce`]).
    pub fn run(&self, schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
        assert_eq!(buffers.len(), schedule.n_ranks, "one buffer per rank");
        for b in buffers.iter() {
            assert_eq!(b.len(), schedule.n_elems, "buffer length mismatch");
        }
        self.verify_before_spawn(schedule);
        let n = schedule.n_ranks;
        if n == 1 || schedule.rounds.is_empty() {
            return;
        }
        // Any segment is a sub-range of the rank buffer, so `n_elems`
        // bounds every payload; pre-sizing to it makes capacity growth a
        // once-per-buffer event.
        self.pool.reserve_hint(schedule.n_elems);

        // tx[src][dst] / rx[dst][src]
        let mut tx: Vec<Vec<Option<Sender<Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rx: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let (t, r) = unbounded();
                    tx[s][d] = Some(t);
                    rx[d][s] = Some(r);
                }
            }
        }

        std::thread::scope(|scope| {
            for (rank, buf) in buffers.iter_mut().enumerate() {
                let tx_row = std::mem::take(&mut tx[rank]);
                let rx_row = std::mem::take(&mut rx[rank]);
                let sched = &*schedule;
                let pool = &self.pool;
                scope.spawn(move || {
                    rank_main(rank, buf, sched, op, tx_row, rx_row, pool);
                });
            }
        });
    }

    /// Full threaded allreduce: run the schedule and finalize the op.
    pub fn allreduce(&self, schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
        self.run(schedule, buffers, op);
        for b in buffers.iter_mut() {
            finalize(op, b, schedule.n_ranks);
        }
    }

    /// Payload-buffer allocator events so far (see
    /// [`PayloadPool::allocations`]).
    pub fn payload_allocations(&self) -> usize {
        self.pool.allocations()
    }

    /// Payload buffers currently recycled and idle in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.pooled()
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: usize,
    buf: &mut [f32],
    schedule: &Schedule,
    op: ReduceOp,
    tx: Vec<Option<Sender<Msg>>>,
    rx: Vec<Option<Receiver<Msg>>>,
    pool: &PayloadPool,
) {
    for (round_idx, round) in schedule.rounds.iter().enumerate() {
        let actions = &round.per_rank[rank];
        // Phase A: materialize and push all outgoing payloads. Payloads
        // are copied before any receive mutates the buffer, giving the
        // pre-round snapshot semantics exchanges rely on.
        for a in actions {
            if let Action::Send { peer, seg } = *a {
                let payload = pool.acquire_copy(&buf[seg.offset..seg.end()]);
                tx[peer]
                    .as_ref()
                    .expect("send to self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                    .send((round_idx, seg.offset, payload))
                    .expect("receiver thread hung up"); // lint: allow(unwrap): scoped threads outlive the round
            }
        }
        // Phase B: block on receives in action order.
        for a in actions {
            match *a {
                Action::Send { .. } => {}
                Action::RecvReduce { peer, seg } | Action::RecvReplace { peer, seg } => {
                    let (r, off, payload) = rx[peer]
                        .as_ref()
                        .expect("recv from self is rejected by the verifier") // lint: allow(unwrap): SelfMessage rule proven before spawn
                        .recv()
                        .expect("sender thread hung up"); // lint: allow(unwrap): UnmatchedRecv + DeadlockCycle rules proven before spawn
                    assert_eq!(r, round_idx, "rank {rank}: out-of-round message from {peer}");
                    assert_eq!(off, seg.offset, "rank {rank}: segment mismatch from {peer}");
                    assert_eq!(payload.len(), seg.len, "rank {rank}: length mismatch from {peer}");
                    match a {
                        Action::RecvReduce { .. } => {
                            combine(op, &mut buf[seg.offset..seg.end()], &payload)
                        }
                        Action::RecvReplace { .. } => {
                            buf[seg.offset..seg.end()].copy_from_slice(&payload)
                        }
                        Action::Send { .. } => unreachable!(),
                    }
                    pool.release(payload);
                }
            }
        }
    }
}

/// Execute `schedule` with a throwaway [`ExecContext`] (buffers still
/// recycle within the call). Long-lived callers should hold their own
/// context so the pool survives across steps.
pub fn run(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    ExecContext::new().run(schedule, buffers, op);
}

/// Full threaded allreduce with a throwaway [`ExecContext`]: run the
/// schedule and finalize the op.
pub fn allreduce(schedule: &Schedule, buffers: &mut [Vec<f32>], op: ReduceOp) {
    ExecContext::new().allreduce(schedule, buffers, op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{self, LeaderAlgo, NodeGroups};
    use crate::reference::{assert_allreduce_result, expected_allreduce};
    use crate::{rabenseifner, rd, ring, tree};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 29 + i * 5) % 17) as f32 * 0.5 - 4.0).collect())
            .collect()
    }

    #[test]
    fn threaded_ring_matches_reference() {
        for &(n, e) in &[(2usize, 16usize), (4, 100), (6, 17), (7, 33)] {
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rd_matches_reference() {
        for &n in &[2usize, 5, 8, 9] {
            let ins = inputs(n, 24);
            let mut bufs = ins.clone();
            allreduce(&rd::allreduce(n, 24), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_rabenseifner_matches_reference() {
        for &n in &[2usize, 4, 6, 8, 11] {
            let ins = inputs(n, 37);
            let mut bufs = ins.clone();
            allreduce(&rabenseifner::allreduce(n, 37), &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn threaded_tree_matches_reference() {
        let ins = inputs(9, 12);
        let mut bufs = ins.clone();
        allreduce(&tree::allreduce(9, 12), &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn threaded_hierarchical_matches_reference() {
        let (n, e) = (12usize, 50usize);
        let groups = NodeGroups::dense(n, 4);
        let s = hierarchical::allreduce(n, e, &groups, LeaderAlgo::Rabenseifner);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn average_matches_expected() {
        let (n, e) = (4usize, 1000usize);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Average);
        let want = expected_allreduce(&ins, ReduceOp::Average);
        for b in &bufs {
            for (g, w) in b.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_buffer_exercises_parallel_reduce() {
        let (n, e) = (4usize, 1 << 16);
        let ins: Vec<Vec<f32>> = (0..n).map(|r| vec![r as f32 + 1.0; e]).collect();
        let mut bufs = ins.clone();
        allreduce(&ring::allreduce(n, e), &mut bufs, ReduceOp::Sum);
        assert!(bufs.iter().all(|b| b.iter().all(|&x| (x - 10.0).abs() < 1e-4)));
    }

    #[test]
    fn single_rank_noop() {
        let mut bufs = vec![vec![1.0, 2.0]];
        allreduce(&ring::allreduce(1, 2), &mut bufs, ReduceOp::Sum);
        assert_eq!(bufs[0], vec![1.0, 2.0]);
    }

    #[test]
    fn deterministic_bitwise_across_runs() {
        // Same schedule + same inputs must give bit-identical results
        // (each rank's combine order is fixed by the schedule).
        let (n, e) = (6usize, 511usize);
        let ins = inputs(n, e);
        let mut a = ins.clone();
        let mut b = ins.clone();
        let s = ring::allreduce(n, e);
        allreduce(&s, &mut a, ReduceOp::Sum);
        allreduce(&s, &mut b, ReduceOp::Sum);
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_context_matches_throwaway() {
        // A long-lived context must compute exactly what fresh ones do.
        let (n, e) = (5usize, 97usize);
        let s = ring::allreduce(n, e);
        let ctx = ExecContext::new();
        for round in 0..3 {
            let ins = inputs(n, e);
            let mut a = ins.clone();
            let mut b = ins.clone();
            ctx.allreduce(&s, &mut a, ReduceOp::Sum);
            allreduce(&s, &mut b, ReduceOp::Sum);
            assert_eq!(a, b, "round {round}");
        }
    }

    #[test]
    fn steady_state_allocates_no_payload_buffers() {
        // The pool hits its high-water mark during the first few
        // allreduces (buffer count can creep while thread interleavings
        // vary); after that every call must recycle (zero fresh
        // buffers, zero capacity growths).
        let (n, e) = (6usize, 1024usize);
        let s = rabenseifner::allreduce(n, e);
        let ctx = ExecContext::new();
        for _ in 0..3 {
            let mut bufs = inputs(n, e);
            ctx.allreduce(&s, &mut bufs, ReduceOp::Average);
        }
        let after_warmup = ctx.payload_allocations();
        assert!(after_warmup > 0, "warm-up must have populated the pool");
        for _ in 0..5 {
            let mut bufs = inputs(n, e);
            ctx.allreduce(&s, &mut bufs, ReduceOp::Average);
        }
        assert_eq!(
            ctx.payload_allocations(),
            after_warmup,
            "steady-state allreduce allocated payload buffers"
        );
        assert!(ctx.pooled_buffers() > 0, "buffers must be parked between calls");
    }

    #[test]
    fn pool_recycles_within_a_single_call() {
        // Even a throwaway context recycles across rounds: a ring over
        // many rounds needs far fewer distinct buffers than sends.
        let (n, e) = (8usize, 4096usize);
        let s = ring::allreduce(n, e);
        let sends: usize = s
            .rounds
            .iter()
            .flat_map(|r| r.per_rank.iter())
            .flatten()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        let ctx = ExecContext::new();
        let mut bufs = inputs(n, e);
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert!(
            ctx.payload_allocations() < sends,
            "pool must recycle: {} allocations for {} sends",
            ctx.payload_allocations(),
            sends
        );
    }

    #[test]
    fn corrupted_schedule_rejected_before_any_thread_spawns() {
        // Drop rank 1's receive: rank 0's send dangles. The debug-build
        // verification gate must panic before any channel exists or
        // rank thread spawns — the panic message is the verifier's,
        // not a rank_main assertion's.
        let mut s = ring::allreduce(4, 16);
        s.rounds[0].per_rank[1].retain(|a| a.is_send());
        let ctx = ExecContext::new();
        let mut bufs = inputs(4, 16);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.run(&s, &mut bufs, ReduceOp::Sum);
        }))
        .expect_err("corrupted schedule must be rejected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("before thread spawn"), "unexpected panic: {msg}");
        assert!(msg.contains("UnmatchedSend") || msg.contains("UnmatchedRecv"), "{msg}");
    }

    #[test]
    fn for_schedule_verifies_at_construction() {
        assert!(ExecContext::for_schedule(&ring::allreduce(4, 16)).is_ok());
        let mut bad = ring::allreduce(4, 16);
        bad.rounds[0].per_rank[1].clear();
        let violations = ExecContext::for_schedule(&bad).expect_err("must reject broken schedule");
        assert!(!violations.is_empty());
    }

    #[test]
    fn for_schedule_context_computes_correctly_and_presizes() {
        let (n, e) = (5usize, 257usize);
        let s = ring::allreduce(n, e);
        let ctx = ExecContext::for_schedule(&s).expect("valid schedule");
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        ctx.allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
    }

    #[test]
    fn pool_recycles_across_size_classes() {
        let pool = PayloadPool::default();
        let big = vec![1.0f32; 1000];
        let small = vec![2.0f32; 10];
        let b1 = pool.acquire_copy(&big);
        assert_eq!(pool.allocations(), 1, "one fresh buffer");
        assert!(b1.capacity() >= 1000);
        pool.release(b1);
        // A smaller payload reuses the big buffer without growing.
        let b2 = pool.acquire_copy(&small);
        assert_eq!(pool.allocations(), 1);
        assert_eq!(b2.len(), 10);
        pool.release(b2);
        // Same-size again: still no new events.
        let b3 = pool.acquire_copy(&big);
        assert_eq!(pool.allocations(), 1);
        assert_eq!(b3[999], 1.0);
    }

    #[test]
    fn pool_hint_presizes_fresh_buffers() {
        let pool = PayloadPool::default();
        pool.reserve_hint(500);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert!(b.capacity() >= 500, "fresh buffer must honor the hint");
        assert_eq!(pool.allocations(), 1);
        pool.release(b);
        // Raising the hint grows a recycled buffer exactly once.
        pool.reserve_hint(2000);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert!(b.capacity() >= 2000);
        assert_eq!(pool.allocations(), 2, "one growth event");
        pool.release(b);
        let b = pool.acquire_copy(&[1.0f32; 8]);
        assert_eq!(pool.allocations(), 2, "no further events");
        drop(b);
    }
}
