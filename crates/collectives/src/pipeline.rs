//! Pipelined (chunked) ring allreduce: split the buffer into `chunks`
//! independent ring pipelines and interleave their rounds.
//!
//! A plain ring moves segment `i` in lockstep: each rank is either
//! sending or reducing, and the wire idles during the reduction. With
//! `c` chunks, chunk `k+1`'s transfer overlaps chunk `k`'s reduction —
//! the trick NCCL uses to stay at line rate. The schedule interleaves
//! the per-chunk rings round-by-round; because the executors have no
//! global barrier, chunk pipelines drift into overlap naturally.

use crate::ring;
use crate::sched::{Round, Schedule, Seg};

/// Chunked ring allreduce. `chunks == 1` degenerates to the plain ring.
pub fn allreduce(n_ranks: usize, n_elems: usize, chunks: usize) -> Schedule {
    assert!(chunks >= 1, "need at least one chunk");
    let mut s = Schedule::new(n_ranks, n_elems);
    if n_ranks == 1 {
        return s;
    }
    // Build one ring schedule per chunk over its sub-range, then
    // interleave round-robin: global round `r·chunks + k` carries chunk
    // k's ring round r. Each global round holds at most one message per
    // rank pair (only one chunk is active in it), and the simulated
    // executor overlaps chunk k's transfer with chunk k-1's reduction
    // because their segments are disjoint (see `exec_sim`).
    let chunk_segs = Seg::whole(n_elems).partition(chunks);
    let subs: Vec<Schedule> = chunk_segs
        .iter()
        .map(|cseg| ring::allreduce(n_ranks, cseg.len).shifted(cseg.offset, n_elems))
        .collect();
    let max_rounds = subs.iter().map(Schedule::n_rounds).max().unwrap_or(0);
    for r in 0..max_rounds {
        for sub in &subs {
            if let Some(round) = sub.rounds.get(r) {
                s.rounds.push(round.clone());
            } else {
                s.rounds.push(Round::empty(n_ranks));
            }
        }
    }
    // Trim all-empty rounds (zero-length chunks contribute nothing).
    s.rounds.retain(|r| r.per_rank.iter().any(|a| !a.is_empty()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_sim::{simulate_dense, UniformCost};
    use crate::reduce::ReduceOp;
    use crate::reference::{apply_allreduce, assert_allreduce_result};
    use summit_sim::{Machine, MachineConfig};

    fn inputs(n: usize, e: usize) -> Vec<Vec<f32>> {
        (0..n).map(|r| (0..e).map(|i| ((r * 11 + i * 3) % 9) as f32 - 4.0).collect()).collect()
    }

    #[test]
    fn correct_for_various_chunkings() {
        for &(n, e, c) in
            &[(4usize, 64usize, 1usize), (4, 64, 4), (6, 100, 3), (5, 17, 4), (3, 7, 8)]
        {
            let s = allreduce(n, e, c);
            s.validate().unwrap_or_else(|err| panic!("n={n} e={e} c={c}: {err:?}"));
            let ins = inputs(n, e);
            let mut bufs = ins.clone();
            apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
            assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-3);
        }
    }

    #[test]
    fn one_chunk_is_plain_ring() {
        let a = allreduce(6, 60, 1);
        let b = ring::allreduce(6, 60);
        assert_eq!(a.n_rounds(), b.n_rounds());
        assert_eq!(a.total_sent_elems(), b.total_sent_elems());
    }

    #[test]
    fn chunking_adds_rounds_not_traffic() {
        let plain = allreduce(8, 800, 1);
        let piped = allreduce(8, 800, 4);
        assert_eq!(piped.total_sent_elems(), plain.total_sent_elems());
        assert_eq!(piped.n_rounds(), plain.n_rounds() * 4);
    }

    #[test]
    fn threaded_execution_matches_reference() {
        let (n, e, c) = (5usize, 53usize, 3usize);
        let s = allreduce(n, e, c);
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&s, &mut by_ref, ReduceOp::Sum);
        let mut by_thr = ins.clone();
        crate::exec_thread::allreduce(&s, &mut by_thr, ReduceOp::Sum).unwrap();
        assert_eq!(by_ref, by_thr);
    }

    #[test]
    fn pipelining_helps_when_reduction_stalls_the_wire() {
        // With a slow local reduction (low reduce bandwidth), the plain
        // ring's wire idles during each reduce; chunking overlaps them.
        let m = Machine::new(MachineConfig::summit_for_gpus(12));
        let cost = UniformCost::default();
        let slow_reduce = SlowReduce(cost);
        let e = 4 << 20;
        let plain = simulate_dense(&allreduce(12, e, 1), &m, &slow_reduce).makespan;
        let piped = simulate_dense(&allreduce(12, e, 4), &m, &slow_reduce).makespan;
        assert!(
            piped < plain,
            "4-chunk pipeline {piped} should beat plain ring {plain} with slow reduction"
        );
    }

    struct SlowReduce(UniformCost);
    impl crate::exec_sim::CostModel for SlowReduce {
        fn msg(
            &self,
            machine: &Machine,
            src: summit_sim::GpuId,
            dst: summit_sim::GpuId,
            bytes: u64,
        ) -> crate::exec_sim::MsgParams {
            self.0.msg(machine, src, dst, bytes)
        }
        fn reduce_bw(&self) -> f64 {
            20e9 // 10x slower than the default GPU reduction
        }
    }

    #[test]
    fn zero_len_chunks_are_trimmed() {
        let s = allreduce(4, 2, 8); // 6 empty chunks
        s.validate().unwrap();
        let ins = inputs(4, 2);
        let mut bufs = ins.clone();
        apply_allreduce(&s, &mut bufs, ReduceOp::Sum);
        assert_allreduce_result(&ins, &bufs, ReduceOp::Sum, 1e-4);
    }
}
