//! Gradient compression codecs for the allreduce wire path.
//!
//! Horovod's headline bandwidth lever is fp16 compression; DisTrO-style
//! systems push further with int8/int4 quantization and top-k
//! sparsification, kept convergent by an fp32 error-feedback residual.
//! This module is that layer for our stack: a [`Codec`] trait with four
//! lossy implementations plus the identity, one shared wire format per
//! codec, and an [`ErrorFeedback`] accumulator.
//!
//! Design rules:
//!
//! * **Exact wire accounting.** `encoded_len(n)` is the *exact* byte
//!   length `encode` produces for `n` elements — the simulator, the
//!   metrics registry, and the benches all bill from it, and every test
//!   asserts `out.len() == encoded_len(n)`.
//! * **Zero hot-path allocation.** All intermediates live in an
//!   [`EncodeScratch`] owned by the caller (the executor pools them);
//!   once a scratch has seen its working size, encode/decode/roundtrip
//!   never touch the allocator (proven per codec in
//!   `trainer/tests/zero_alloc.rs`).
//! * **CPU-independent bytes.** The quantize inner loops dispatch to
//!   AVX2/F16C kernels in `crates/simd` whose scalar twins are
//!   bit-identical on non-NaN input, so the compressed bytes do not
//!   depend on the host (and compressed allreduce stays deterministic).
//! * **Determinism.** Ties in top-k selection break toward the lower
//!   index; chunk boundaries are fixed; no codec consults anything but
//!   the input slice.
//!
//! Wire formats (all little-endian):
//!
//! | codec | layout | bytes/elem |
//! |-------|--------|-----------|
//! | `none` | `n × f32` | 4 |
//! | `fp16` | `n × u16` (IEEE binary16, RNE) | 2 |
//! | `int8` | per 256-chunk: `f32` scale + `len × i8` | 1.015625 |
//! | `int4` | per 256-chunk: `f32` scale + `⌈len/2⌉` nibble bytes | 0.515625 |
//! | `topk` | `⌈n/8⌉ × (u32 index, f32 value)` | 1 |

use simd::{fp16, quant};

/// Chunk width of the per-chunk-scale quantizers. One f32 scale per
/// chunk: small enough to track local gradient magnitude, large enough
/// that the scale overhead stays under 2%.
pub const QUANT_CHUNK: usize = 256;

/// Largest magnitude the int4 quantizer emits (symmetric nibbles).
const Q4_MAX: f32 = 7.0;

/// Fraction denominator of the top-k sparsifier: keep ⌈n/8⌉ elements,
/// which at 8 bytes per (index, value) pair is 1 byte per element.
const TOPK_DIV: usize = 8;

/// The available gradient codecs, as a plain value the configuration
/// layers (trainer config, tuner knob space, benches) pass around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Identity: f32 straight onto the wire.
    #[default]
    None,
    /// IEEE binary16 round-to-nearest-even, bit-identical to the
    /// trainer's historical fp16 path ([`simd::fp16`]).
    Fp16,
    /// Symmetric int8 with a per-256-chunk f32 scale (absmax / 127).
    Int8,
    /// Symmetric int4 (packed nibbles) with a per-256-chunk f32 scale.
    Int4,
    /// Magnitude top-k sparsification, keeping ⌈n/8⌉ (index, value)
    /// pairs; ties break toward the lower index.
    TopK,
}

impl CodecKind {
    /// Every codec, identity first.
    pub const ALL: [CodecKind; 5] =
        [CodecKind::None, CodecKind::Fp16, CodecKind::Int8, CodecKind::Int4, CodecKind::TopK];

    /// Stable lower-case name (config files, bench JSON, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::None => "none",
            CodecKind::Fp16 => "fp16",
            CodecKind::Int8 => "int8",
            CodecKind::Int4 => "int4",
            CodecKind::TopK => "topk",
        }
    }

    /// Inverse of [`CodecKind::name`].
    pub fn parse(s: &str) -> Option<CodecKind> {
        CodecKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Exact wire bytes for `n` elements (see [`Codec::encoded_len`]).
    pub fn encoded_len(self, n: usize) -> usize {
        codec_for(self).encoded_len(n)
    }

    /// Nominal wire bytes per element (exact for whole chunks).
    pub fn bytes_per_element(self) -> f64 {
        codec_for(self).bytes_per_element()
    }

    /// Wire-byte reduction factor vs raw f32.
    pub fn ratio(self) -> f64 {
        4.0 / self.bytes_per_element()
    }

    /// True for every codec that loses information.
    pub fn is_lossy(self) -> bool {
        self != CodecKind::None
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable intermediate buffers for encode/decode. Owned by the
/// caller (the executors pool them across steps): after the first
/// call at a given size every buffer has its high-water capacity and
/// the codecs stop allocating.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// f16 bit patterns (fp16 codec).
    h: Vec<u16>,
    /// Quantized bytes (int8/int4 codecs).
    q: Vec<i8>,
    /// |x| working copy for top-k threshold selection.
    tmp: Vec<f32>,
    /// Internal wire buffer for [`roundtrip`] (not used by encode/decode).
    buf: Vec<u8>,
}

impl EncodeScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size every buffer `kind` will touch for inputs up to `n`
    /// elements, so later encode/decode calls are allocation-free.
    pub fn reserve(&mut self, kind: CodecKind, n: usize) {
        match kind {
            CodecKind::None => {}
            CodecKind::Fp16 => self.h.reserve(n.saturating_sub(self.h.capacity())),
            CodecKind::Int8 | CodecKind::Int4 => {
                self.q.reserve(QUANT_CHUNK.saturating_sub(self.q.capacity()))
            }
            CodecKind::TopK => self.tmp.reserve(n.saturating_sub(self.tmp.capacity())),
        }
        let wire = kind.encoded_len(n);
        self.buf.reserve(wire.saturating_sub(self.buf.capacity()));
    }
}

/// A gradient codec: exact wire-length accounting plus encode/decode
/// into caller-owned buffers. Implementations are stateless (error
/// feedback is layered on top, see [`ErrorFeedback`]); `encode` clears
/// `out` and fills it with exactly [`Codec::encoded_len`] bytes.
pub trait Codec: Send + Sync {
    fn kind(&self) -> CodecKind;

    /// Exact encoded byte length for `n` input elements.
    fn encoded_len(&self, n: usize) -> usize;

    /// Nominal wire bytes per element (exact when `n` is a multiple of
    /// the codec's chunking; `encoded_len` is always exact).
    fn bytes_per_element(&self) -> f64;

    /// Encode `src` into `out` (cleared first). Allocation-free once
    /// `out` and `scratch` have their working capacity.
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, scratch: &mut EncodeScratch);

    /// Decode `buf` (a full `encode` output for `dst.len()` elements)
    /// into `dst`, overwriting it entirely.
    fn decode(&self, buf: &[u8], dst: &mut [f32], scratch: &mut EncodeScratch);
}

/// The static codec instance for `kind` (codecs are stateless).
pub fn codec_for(kind: CodecKind) -> &'static dyn Codec {
    match kind {
        CodecKind::None => &NoCodec,
        CodecKind::Fp16 => &Fp16Codec,
        CodecKind::Int8 => &Int8Codec,
        CodecKind::Int4 => &Int4Codec,
        CodecKind::TopK => &TopKCodec,
    }
}

/// Apply exactly the codec's wire loss in place: encode into the
/// scratch's internal buffer, decode back over `xs`. The worker-side
/// compression path (classic trainer, pipelined tile reduction) uses
/// this — the reduction itself stays in f32.
// lint: hot-path
pub fn roundtrip(kind: CodecKind, xs: &mut [f32], scratch: &mut EncodeScratch) {
    if kind == CodecKind::None {
        return;
    }
    if kind == CodecKind::Fp16 {
        // Same bits as encode→decode, without materializing the wire.
        fp16::roundtrip_slice(xs);
        return;
    }
    let codec = codec_for(kind);
    let mut buf = std::mem::take(&mut scratch.buf);
    codec.encode(xs, &mut buf, scratch);
    codec.decode(&buf, xs, scratch);
    scratch.buf = buf;
}

/// Error-feedback compensated roundtrip with an explicit residual
/// slice: `xs += residual`, apply the codec's wire loss to `xs`, then
/// `residual = compensated − lossy`. The residual slice doubles as the
/// snapshot of the compensated gradient, so no extra buffer is needed.
///
/// The residual stays in fp32 (the `Fp32GradientAccumulator` idiom):
/// whatever a lossy codec dropped this step is re-injected next step,
/// which is what lets int4/top-k training converge to the fp32
/// baseline.
// lint: hot-path
// lint: no-f64
pub fn ef_roundtrip(
    kind: CodecKind,
    xs: &mut [f32],
    residual: &mut [f32],
    scratch: &mut EncodeScratch,
) {
    assert_eq!(xs.len(), residual.len(), "residual length mismatch");
    for (x, r) in xs.iter_mut().zip(residual.iter_mut()) {
        *x += *r;
        *r = *x;
    }
    roundtrip(kind, xs, scratch);
    for (x, r) in xs.iter().zip(residual.iter_mut()) {
        *r -= *x;
    }
}

/// Persistent fp32 residual accumulator for one gradient buffer.
///
/// Invariants: `residual` always equals the running sum of everything
/// the codec has dropped so far (bounded for quantizers: at most half a
/// quantization step per element per round, which the compensation
/// feeds back); resetting it is only sound when the optimizer state is
/// reset too.
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// A zeroed residual for an `n`-element gradient buffer.
    pub fn new(n: usize) -> Self {
        ErrorFeedback { residual: vec![0.0f32; n] }
    }

    /// The current residual (what the codec has dropped, cumulatively).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Forget the accumulated residual.
    pub fn reset(&mut self) {
        self.residual.fill(0.0);
    }

    /// Compensated roundtrip of the whole buffer (see [`ef_roundtrip`]).
    // lint: hot-path
    pub fn roundtrip(&mut self, kind: CodecKind, xs: &mut [f32], scratch: &mut EncodeScratch) {
        assert_eq!(xs.len(), self.residual.len(), "buffer/residual length mismatch");
        ef_roundtrip(kind, xs, &mut self.residual, scratch);
    }

    /// Compensated roundtrip of the sub-range starting at `offset` —
    /// the pipelined executor compresses per parameter tile.
    // lint: hot-path
    pub fn roundtrip_at(
        &mut self,
        kind: CodecKind,
        offset: usize,
        xs: &mut [f32],
        scratch: &mut EncodeScratch,
    ) {
        let res = &mut self.residual[offset..offset + xs.len()];
        ef_roundtrip(kind, xs, res, scratch);
    }
}

/// Reinterpret quantized bytes (i8 and u8 have identical layout).
fn i8_as_u8(q: &[i8]) -> &[u8] {
    // SAFETY: i8 and u8 have the same size, alignment, and validity.
    unsafe { std::slice::from_raw_parts(q.as_ptr() as *const u8, q.len()) }
}

fn u8_as_i8(b: &[u8]) -> &[i8] {
    // SAFETY: i8 and u8 have the same size, alignment, and validity.
    unsafe { std::slice::from_raw_parts(b.as_ptr() as *const i8, b.len()) }
}

/// Identity codec: f32 bits straight onto the wire.
pub struct NoCodec;

impl Codec for NoCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::None
    }

    fn encoded_len(&self, n: usize) -> usize {
        4 * n
    }

    fn bytes_per_element(&self) -> f64 {
        4.0
    }

    // lint: hot-path
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, _scratch: &mut EncodeScratch) {
        out.clear();
        out.resize(4 * src.len(), 0);
        for (o, s) in out.chunks_exact_mut(4).zip(src) {
            o.copy_from_slice(&s.to_le_bytes());
        }
    }

    // lint: hot-path
    fn decode(&self, buf: &[u8], dst: &mut [f32], _scratch: &mut EncodeScratch) {
        assert_eq!(buf.len(), 4 * dst.len(), "wire length mismatch");
        for (d, b) in dst.iter_mut().zip(buf.chunks_exact(4)) {
            *d = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
}

/// IEEE binary16 codec — the wire form of the trainer's historical
/// fp16 path, bit-identical to [`simd::fp16::roundtrip`] per element.
pub struct Fp16Codec;

impl Codec for Fp16Codec {
    fn kind(&self) -> CodecKind {
        CodecKind::Fp16
    }

    fn encoded_len(&self, n: usize) -> usize {
        2 * n
    }

    fn bytes_per_element(&self) -> f64 {
        2.0
    }

    // lint: hot-path
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, scratch: &mut EncodeScratch) {
        scratch.h.resize(src.len(), 0);
        fp16::pack_slice(src, &mut scratch.h);
        out.clear();
        out.resize(2 * src.len(), 0);
        for (o, h) in out.chunks_exact_mut(2).zip(&scratch.h) {
            o.copy_from_slice(&h.to_le_bytes());
        }
    }

    // lint: hot-path
    fn decode(&self, buf: &[u8], dst: &mut [f32], scratch: &mut EncodeScratch) {
        assert_eq!(buf.len(), 2 * dst.len(), "wire length mismatch");
        scratch.h.resize(dst.len(), 0);
        for (h, b) in scratch.h.iter_mut().zip(buf.chunks_exact(2)) {
            *h = u16::from_le_bytes([b[0], b[1]]);
        }
        fp16::unpack_slice(&scratch.h, dst);
    }
}

/// Per-chunk scale for a symmetric quantizer with max level `q_max`:
/// `(scale, inv_scale)`, both zero for an all-zero chunk.
// lint: hot-path
// lint: no-f64
fn chunk_scale(chunk: &[f32], q_max: f32) -> (f32, f32) {
    let m = quant::abs_max(chunk);
    if m > 0.0 {
        (m / q_max, q_max / m)
    } else {
        (0.0, 0.0)
    }
}

/// Symmetric int8 with a per-256-chunk f32 scale.
pub struct Int8Codec;

impl Codec for Int8Codec {
    fn kind(&self) -> CodecKind {
        CodecKind::Int8
    }

    fn encoded_len(&self, n: usize) -> usize {
        n + 4 * n.div_ceil(QUANT_CHUNK)
    }

    fn bytes_per_element(&self) -> f64 {
        (QUANT_CHUNK + 4) as f64 / QUANT_CHUNK as f64
    }

    // lint: hot-path
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, scratch: &mut EncodeScratch) {
        out.clear();
        for chunk in src.chunks(QUANT_CHUNK) {
            let (scale, inv) = chunk_scale(chunk, quant::Q8_MAX);
            out.extend_from_slice(&scale.to_le_bytes());
            scratch.q.resize(chunk.len(), 0);
            quant::quant8(chunk, inv, &mut scratch.q);
            out.extend_from_slice(i8_as_u8(&scratch.q));
        }
    }

    // lint: hot-path
    fn decode(&self, buf: &[u8], dst: &mut [f32], scratch: &mut EncodeScratch) {
        assert_eq!(buf.len(), self.encoded_len(dst.len()), "wire length mismatch");
        let _ = scratch;
        let mut pos = 0usize;
        for chunk in dst.chunks_mut(QUANT_CHUNK) {
            let scale = f32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            pos += 4;
            quant::dequant8(u8_as_i8(&buf[pos..pos + chunk.len()]), scale, chunk);
            pos += chunk.len();
        }
    }
}

/// Symmetric int4 (packed nibbles, bias +8) with a per-256-chunk scale.
pub struct Int4Codec;

impl Codec for Int4Codec {
    fn kind(&self) -> CodecKind {
        CodecKind::Int4
    }

    fn encoded_len(&self, n: usize) -> usize {
        let full = n / QUANT_CHUNK;
        let tail = n % QUANT_CHUNK;
        let mut len = full * (4 + QUANT_CHUNK / 2);
        if tail > 0 {
            len += 4 + tail.div_ceil(2);
        }
        len
    }

    fn bytes_per_element(&self) -> f64 {
        (QUANT_CHUNK / 2 + 4) as f64 / QUANT_CHUNK as f64
    }

    // lint: hot-path
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, scratch: &mut EncodeScratch) {
        out.clear();
        for chunk in src.chunks(QUANT_CHUNK) {
            let (scale, inv) = chunk_scale(chunk, Q4_MAX);
            out.extend_from_slice(&scale.to_le_bytes());
            scratch.q.resize(chunk.len(), 0);
            // The int8 kernel with the int4 inverse scale lands every
            // level in [-7, 7]; only the nibble packing is scalar.
            quant::quant8(chunk, inv, &mut scratch.q);
            let mut pairs = scratch.q.chunks_exact(2);
            for p in &mut pairs {
                out.push(((p[0] + 8) as u8) | (((p[1] + 8) as u8) << 4));
            }
            if let [last] = pairs.remainder() {
                out.push((last + 8) as u8 | 0x80); // high nibble = level 0
            }
        }
    }

    // lint: hot-path
    fn decode(&self, buf: &[u8], dst: &mut [f32], scratch: &mut EncodeScratch) {
        assert_eq!(buf.len(), self.encoded_len(dst.len()), "wire length mismatch");
        let mut pos = 0usize;
        for chunk in dst.chunks_mut(QUANT_CHUNK) {
            let scale = f32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
            pos += 4;
            let nbytes = chunk.len().div_ceil(2);
            scratch.q.resize(chunk.len(), 0);
            for (i, &b) in buf[pos..pos + nbytes].iter().enumerate() {
                scratch.q[2 * i] = (b & 0x0f) as i8 - 8;
                if 2 * i + 1 < chunk.len() {
                    scratch.q[2 * i + 1] = (b >> 4) as i8 - 8;
                }
            }
            pos += nbytes;
            quant::dequant8(&scratch.q, scale, chunk);
        }
    }
}

/// Magnitude top-k sparsification: keep the ⌈n/8⌉ largest |x| as
/// (u32 index, f32 value) pairs; everything else decodes to zero.
/// Ties at the threshold magnitude break toward the lower index, so
/// the selection (and the wire bytes) are fully deterministic.
pub struct TopKCodec;

impl TopKCodec {
    /// Elements kept for an `n`-element input.
    pub fn kept(n: usize) -> usize {
        n.div_ceil(TOPK_DIV)
    }
}

impl Codec for TopKCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::TopK
    }

    fn encoded_len(&self, n: usize) -> usize {
        8 * Self::kept(n)
    }

    fn bytes_per_element(&self) -> f64 {
        8.0 / TOPK_DIV as f64
    }

    // lint: hot-path
    fn encode(&self, src: &[f32], out: &mut Vec<u8>, scratch: &mut EncodeScratch) {
        out.clear();
        if src.is_empty() {
            return;
        }
        let n = src.len();
        let k = Self::kept(n);
        scratch.tmp.resize(n, 0.0);
        for (t, s) in scratch.tmp.iter_mut().zip(src) {
            *t = s.abs();
        }
        // k-th largest magnitude = element n-k of the ascending order.
        let thr = if k >= n {
            0.0
        } else {
            let (_, thr, _) = scratch.tmp.select_nth_unstable_by(n - k, f32::total_cmp);
            *thr
        };
        // Strictly-greater elements always make the cut; ties at the
        // threshold fill the remaining slots in index order.
        let greater = src.iter().filter(|x| x.abs() > thr).count();
        let mut ties_left = k - greater;
        let mut taken = 0usize;
        for (i, &x) in src.iter().enumerate() {
            let a = x.abs();
            let keep = a > thr || (a == thr && ties_left > 0);
            if keep {
                if a == thr {
                    ties_left -= 1;
                }
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.extend_from_slice(&x.to_le_bytes());
                taken += 1;
                if taken == k {
                    break;
                }
            }
        }
        debug_assert_eq!(taken, k, "top-k selection must fill exactly k slots");
    }

    // lint: hot-path
    fn decode(&self, buf: &[u8], dst: &mut [f32], scratch: &mut EncodeScratch) {
        assert_eq!(buf.len(), self.encoded_len(dst.len()), "wire length mismatch");
        let _ = scratch;
        dst.fill(0.0);
        for pair in buf.chunks_exact(8) {
            let i = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
            dst[i] = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enc(kind: CodecKind, src: &[f32]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut scratch = EncodeScratch::new();
        codec_for(kind).encode(src, &mut out, &mut scratch);
        assert_eq!(out.len(), kind.encoded_len(src.len()), "{kind}: encoded_len must be exact");
        out
    }

    fn dec(kind: CodecKind, buf: &[u8], n: usize) -> Vec<f32> {
        let mut dst = vec![0.0f32; n];
        let mut scratch = EncodeScratch::new();
        codec_for(kind).decode(buf, &mut dst, &mut scratch);
        dst
    }

    fn stress(i: usize) -> f32 {
        match i % 6 {
            0 => (i as f32 * 0.31).sin() * 2.0,
            1 => -(i as f32) * 1e-3,
            2 => (i as f32).cos() * 40.0,
            3 => 0.0,
            4 => 1e-6 * (i as f32 + 1.0),
            _ => f32::from_bits((i as u32).wrapping_mul(0x9e37_79b9) & 0x3eff_ffff),
        }
    }

    #[test]
    fn names_parse_back() {
        for k in CodecKind::ALL {
            assert_eq!(CodecKind::parse(k.name()), Some(k));
        }
        assert_eq!(CodecKind::parse("gzip"), None);
    }

    #[test]
    fn none_is_lossless() {
        let src: Vec<f32> = (0..777).map(stress).collect();
        let bytes = enc(CodecKind::None, &src);
        assert_eq!(dec(CodecKind::None, &bytes, src.len()), src);
    }

    #[test]
    fn fp16_wire_matches_roundtrip_path_bitwise() {
        let src: Vec<f32> = (0..1000).map(stress).collect();
        let bytes = enc(CodecKind::Fp16, &src);
        let got = dec(CodecKind::Fp16, &bytes, src.len());
        let want: Vec<f32> = src.iter().map(|&x| fp16::roundtrip(x)).collect();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want), "fp16 codec must equal the fp16.rs path");
    }

    #[test]
    fn int8_error_bounded_by_half_step_per_chunk() {
        let src: Vec<f32> = (0..1000).map(stress).collect();
        let bytes = enc(CodecKind::Int8, &src);
        let got = dec(CodecKind::Int8, &bytes, src.len());
        for (c, (orig, dec)) in src.chunks(QUANT_CHUNK).zip(got.chunks(QUANT_CHUNK)).enumerate() {
            let step = quant::abs_max(orig) / quant::Q8_MAX;
            for (i, (o, d)) in orig.iter().zip(dec).enumerate() {
                assert!(
                    (o - d).abs() <= 0.5001 * step + 1e-7,
                    "chunk {c} elem {i}: {o} -> {d}, step {step}"
                );
            }
        }
    }

    #[test]
    fn int4_error_bounded_by_half_step_per_chunk() {
        let src: Vec<f32> = (0..700).map(stress).collect();
        let bytes = enc(CodecKind::Int4, &src);
        let got = dec(CodecKind::Int4, &bytes, src.len());
        for (orig, dec) in src.chunks(QUANT_CHUNK).zip(got.chunks(QUANT_CHUNK)) {
            let step = quant::abs_max(orig) / Q4_MAX;
            for (o, d) in orig.iter().zip(dec) {
                assert!((o - d).abs() <= 0.5001 * step + 1e-7, "{o} -> {d}, step {step}");
            }
        }
    }

    #[test]
    fn topk_keeps_exactly_the_largest_magnitudes() {
        let src: Vec<f32> = (0..640).map(stress).collect();
        let bytes = enc(CodecKind::TopK, &src);
        let got = dec(CodecKind::TopK, &bytes, src.len());
        let k = TopKCodec::kept(src.len());
        let kept: Vec<usize> =
            got.iter().enumerate().filter(|(_, x)| **x != 0.0).map(|(i, _)| i).collect();
        assert!(kept.len() <= k, "{} kept, at most {k} allowed", kept.len());
        // Every kept value is bit-exact and at least as large as every
        // dropped value.
        let min_kept = kept.iter().map(|&i| src[i].abs()).fold(f32::INFINITY, f32::min);
        for (i, (&o, &d)) in src.iter().zip(&got).enumerate() {
            if d != 0.0 {
                assert_eq!(o.to_bits(), d.to_bits(), "kept value {i} must be exact");
            } else {
                assert!(o.abs() <= min_kept, "dropped {i} (|{o}|) outranks a kept value");
            }
        }
    }

    #[test]
    fn topk_tie_break_is_deterministic_toward_low_index() {
        // All-equal magnitudes: the first k indices win, always.
        let src = vec![1.0f32; 16];
        let bytes = enc(CodecKind::TopK, &src);
        let got = dec(CodecKind::TopK, &bytes, 16);
        let k = TopKCodec::kept(16);
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v != 0.0, i < k, "tie-break at index {i}");
        }
        // And all-zero input encodes without panicking.
        let z = vec![0.0f32; 40];
        let bytes = enc(CodecKind::TopK, &z);
        assert_eq!(dec(CodecKind::TopK, &bytes, 40), z);
    }

    #[test]
    fn roundtrip_equals_encode_decode_for_every_codec() {
        let src: Vec<f32> = (0..600).map(stress).collect();
        for kind in CodecKind::ALL {
            let via_wire = dec(kind, &enc(kind, &src), src.len());
            let mut in_place = src.clone();
            let mut scratch = EncodeScratch::new();
            roundtrip(kind, &mut in_place, &mut scratch);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&in_place), bits(&via_wire), "{kind}: roundtrip diverges from wire");
        }
    }

    #[test]
    fn encode_is_deterministic() {
        let src: Vec<f32> = (0..500).map(stress).collect();
        for kind in CodecKind::ALL {
            assert_eq!(enc(kind, &src), enc(kind, &src), "{kind}");
        }
    }

    #[test]
    fn declared_ratio_is_exact_on_whole_chunks() {
        // 2048 elements: a multiple of both QUANT_CHUNK and TOPK_DIV,
        // so the nominal bytes/element is exact for every codec.
        let n = 2048usize;
        for kind in CodecKind::ALL {
            let measured = kind.encoded_len(n) as f64 / n as f64;
            assert!(
                (measured - kind.bytes_per_element()).abs() < 1e-12,
                "{kind}: measured {measured} vs declared {}",
                kind.bytes_per_element()
            );
        }
    }

    #[test]
    fn error_feedback_recovers_dropped_mass() {
        // Feed the same gradient through a lossy codec T times with EF:
        // the *running mean* of the decoded outputs must converge to the
        // true gradient (the classic error-feedback telescoping sum),
        // even for int4 and top-k where a single pass is very lossy.
        let truth: Vec<f32> = (0..512).map(|i| stress(i) * 0.1).collect();
        for kind in [CodecKind::Int8, CodecKind::Int4, CodecKind::TopK] {
            let mut ef = ErrorFeedback::new(truth.len());
            let mut scratch = EncodeScratch::new();
            let mut sum = vec![0.0f64; truth.len()];
            let rounds = 64;
            for _ in 0..rounds {
                let mut g = truth.clone();
                ef.roundtrip(kind, &mut g, &mut scratch);
                for (s, v) in sum.iter_mut().zip(&g) {
                    *s += f64::from(*v);
                }
            }
            let scale_bound = truth.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            for (i, (s, t)) in sum.iter().zip(&truth).enumerate() {
                let mean = s / f64::from(rounds as u32);
                // Telescoping: |mean - truth| <= residual_bound / rounds.
                let tol = f64::from(scale_bound) * 2.0 / f64::from(rounds as u32) + 1e-6;
                assert!(
                    (mean - f64::from(*t)).abs() <= tol,
                    "{kind} elem {i}: mean {mean} vs truth {t} (tol {tol})"
                );
            }
        }
    }

    #[test]
    fn scratch_reaches_steady_state_capacity() {
        // After one encode+decode at size n, a second pass must not grow
        // any scratch buffer (capacity check stands in for the counting
        // allocator, which lives in the trainer's zero_alloc proof).
        let src: Vec<f32> = (0..4096).map(stress).collect();
        for kind in CodecKind::ALL {
            let mut scratch = EncodeScratch::new();
            scratch.reserve(kind, src.len());
            let mut out = Vec::with_capacity(kind.encoded_len(src.len()));
            let mut dst = vec![0.0f32; src.len()];
            codec_for(kind).encode(&src, &mut out, &mut scratch);
            codec_for(kind).decode(&out, &mut dst, &mut scratch);
            let caps = (
                scratch.h.capacity(),
                scratch.q.capacity(),
                scratch.tmp.capacity(),
                out.capacity(),
            );
            codec_for(kind).encode(&src, &mut out, &mut scratch);
            codec_for(kind).decode(&out, &mut dst, &mut scratch);
            let after = (
                scratch.h.capacity(),
                scratch.q.capacity(),
                scratch.tmp.capacity(),
                out.capacity(),
            );
            assert_eq!(caps, after, "{kind}: scratch grew after warm-up");
        }
    }

    proptest! {
        /// Differential property: decode(encode(x)) stays within each
        /// codec's declared tolerance of a scalar reference model.
        #[test]
        fn codecs_respect_their_error_model(
            src in proptest::collection::vec(-50.0f32..50.0, 1..700)
        ) {
            // fp16: bit-exact vs the scalar conversion.
            let got = dec(CodecKind::Fp16, &enc(CodecKind::Fp16, &src), src.len());
            for (o, d) in src.iter().zip(&got) {
                prop_assert_eq!(fp16::roundtrip(*o).to_bits(), d.to_bits());
            }
            // int8/int4: half-step error bound per chunk.
            for (kind, qmax) in [(CodecKind::Int8, quant::Q8_MAX), (CodecKind::Int4, Q4_MAX)] {
                let got = dec(kind, &enc(kind, &src), src.len());
                for (orig, dec) in src.chunks(QUANT_CHUNK).zip(got.chunks(QUANT_CHUNK)) {
                    let step = quant::abs_max(orig) / qmax;
                    for (o, d) in orig.iter().zip(dec) {
                        prop_assert!((o - d).abs() <= 0.5001 * step + 1e-6);
                    }
                }
            }
            // topk: kept values exact, dropped values dominated.
            let got = dec(CodecKind::TopK, &enc(CodecKind::TopK, &src), src.len());
            let min_kept = got
                .iter()
                .zip(&src)
                .filter(|(d, _)| **d != 0.0)
                .map(|(_, o)| o.abs())
                .fold(f32::INFINITY, f32::min);
            for (o, d) in src.iter().zip(&got) {
                if *d != 0.0 {
                    prop_assert_eq!(o.to_bits(), d.to_bits());
                } else {
                    prop_assert!(o.abs() <= min_kept);
                }
            }
        }

        /// Error feedback never lets the residual run away: after any
        /// number of rounds over random gradients, the residual stays
        /// bounded by a small multiple of the largest gradient scale.
        #[test]
        fn residual_stays_bounded(
            base in proptest::collection::vec(-2.0f32..2.0, 64..300),
            rounds in 1usize..12
        ) {
            for kind in [CodecKind::Int8, CodecKind::Int4, CodecKind::TopK] {
                let mut ef = ErrorFeedback::new(base.len());
                let mut scratch = EncodeScratch::new();
                for r in 0..rounds {
                    let mut g: Vec<f32> =
                        base.iter().map(|x| x * (1.0 + 0.1 * r as f32)).collect();
                    ef.roundtrip(kind, &mut g, &mut scratch);
                }
                let bound = 8.0 * 2.0 * (1.0 + 0.1 * rounds as f32);
                for r in ef.residual() {
                    prop_assert!(r.abs() <= bound, "{} residual {} exceeds {}", kind, r, bound);
                }
            }
        }
    }
}
