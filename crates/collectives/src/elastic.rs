//! Elastic allreduce: graceful degradation when ranks die.
//!
//! [`ElasticAllreduce`] wraps one algorithm + executor pair and owns
//! the *survivor topology*: a sorted list of original rank ids that are
//! still alive. A call with no fault session delegates straight to the
//! plain zero-overhead path. Under a [`FaultSession`], the buffers are
//! snapshotted before the attempt; if the fault-aware executor reports
//! [`ExecError::RanksDead`], the in-flight collective has already been
//! aborted, so the wrapper
//!
//! 1. restores every survivor's buffer from the snapshot (partial sums
//!    from the aborted attempt never leak),
//! 2. removes the dead ranks from the live set (and their buffers),
//! 3. rebuilds the schedule over the survivors with the *same*
//!    algorithm, re-runs the full static verifier on it
//!    ([`Schedule::verify_allreduce`]) — a degraded topology gets no
//!    less scrutiny than the original — and
//! 4. rebuilds the executor around the new schedule while inheriting
//!    the warm payload pool ([`ExecContext::for_schedule_with_pool`]),
//!
//! then retries. Because [`ReduceOp::Average`] finalizes by the
//! schedule's rank count, the result after degradation is automatically
//! rescaled to the *new* world size — the gradient average stays an
//! average.

use std::fmt;

use faults::FaultEvent;
use summit_metrics::FaultCounters;

use crate::algo::Algorithm;
use crate::exec_fault::FaultSession;
use crate::exec_thread::{ExecContext, ExecError};
use crate::exec_trace::ExecTrace;
use crate::reduce::ReduceOp;
use crate::sched::{Schedule, Violation};

/// Why an elastic collective gave up (distinct from one aborted
/// attempt, which is retried over the survivors).
#[derive(Debug, Clone, PartialEq)]
pub enum ElasticError {
    /// Every rank died; there is nobody left to hold a result.
    AllRanksDead,
    /// A rebuilt survivor schedule failed verification — a bug in the
    /// algorithm builder, surfaced rather than executed.
    Rejected(Vec<Violation>),
    /// A non-recoverable executor error (shape mismatch, retry budget
    /// exhausted on a live peer).
    Exec(ExecError),
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::AllRanksDead => write!(f, "all ranks died; no survivors"),
            ElasticError::Rejected(v) => {
                write!(f, "rebuilt survivor schedule failed verification: {v:?}")
            }
            ElasticError::Exec(e) => write!(f, "executor error: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// What one elastic call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticReport {
    /// Original ids of ranks that died during this call.
    pub dead: Vec<usize>,
    /// World size the returned result is averaged/summed over.
    pub world: usize,
    /// How many times the topology was rebuilt during this call.
    pub rebuilds: usize,
}

impl ElasticReport {
    pub fn degraded(&self) -> bool {
        self.rebuilds > 0
    }
}

/// A fault-tolerant allreduce with a persistent survivor topology. See
/// the module docs.
#[derive(Debug)]
pub struct ElasticAllreduce {
    algo: Algorithm,
    n_elems: usize,
    /// Original rank ids still alive, ascending. `live[local]` is the
    /// original id of buffer `local`.
    live: Vec<usize>,
    schedule: Schedule,
    ctx: ExecContext,
    /// World-id-keyed trace lanes (see [`ElasticAllreduce::set_trace`]).
    trace: Option<ExecTrace>,
    /// `trace` reindexed to the current local ranks — precomputed at
    /// `set_trace` and on degradation (both cold), so the per-step
    /// plain path hands the executor a ready view without allocating.
    trace_view: Option<ExecTrace>,
}

impl ElasticAllreduce {
    /// A fresh elastic collective over `world` ranks.
    pub fn new(algo: Algorithm, world: usize, n_elems: usize) -> Result<Self, ElasticError> {
        assert!(world >= 1, "need at least one rank");
        Self::with_live(algo, (0..world).collect(), n_elems)
    }

    /// An elastic collective resuming an already-degraded topology —
    /// e.g. a trainer restarting from a checkpoint whose live set has
    /// holes. `live` holds original ids, ascending.
    pub fn with_live(
        algo: Algorithm,
        live: Vec<usize>,
        n_elems: usize,
    ) -> Result<Self, ElasticError> {
        assert!(!live.is_empty(), "need at least one live rank");
        let schedule = algo.build(live.len(), n_elems);
        schedule.verify_allreduce().map_err(ElasticError::Rejected)?;
        let ctx = ExecContext::for_schedule(&schedule).map_err(ElasticError::Exec)?;
        Ok(ElasticAllreduce { algo, n_elems, live, schedule, ctx, trace: None, trace_view: None })
    }

    /// Attach trace lanes keyed by *original* rank id: the plain path
    /// records each survivor's SEND/RECV spans onto its original pid
    /// row, surviving renumbering across degradations. (The fault path
    /// traces through [`FaultSession::with_trace`] instead, which owns
    /// the same world-id keying.)
    pub fn set_trace(&mut self, trace: ExecTrace) {
        self.trace_view = Some(trace.reindex(&self.live));
        self.trace = Some(trace);
    }

    /// Original ids of the surviving ranks, ascending.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Current world size (survivor count).
    pub fn world(&self) -> usize {
        self.live.len()
    }

    /// The schedule currently executed (rebuilt after degradations).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The executor (rebuilt after degradations, pool carried over).
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Allreduce across the survivors. `buffers` must hold exactly one
    /// replica per live rank, in `live` order; dead ranks' buffers are
    /// removed from the vec during degradation.
    ///
    /// `session: None` is the fault-layer-off switch: the call goes
    /// through the plain zero-overhead executor untouched.
    pub fn allreduce(
        &mut self,
        buffers: &mut Vec<Vec<f32>>,
        op: ReduceOp,
        session: Option<&FaultSession>,
    ) -> Result<ElasticReport, ElasticError> {
        let session = match session {
            None => {
                self.ctx
                    .allreduce_traced(&self.schedule, buffers, op, self.trace_view.as_ref())
                    .map_err(ElasticError::Exec)?;
                return Ok(ElasticReport { dead: Vec::new(), world: self.live.len(), rebuilds: 0 });
            }
            Some(s) => s,
        };
        let mut dead_total = Vec::new();
        let mut rebuilds = 0usize;
        loop {
            // Snapshot before the attempt: an aborted collective leaves
            // partial sums behind, and the retry must start from the
            // same inputs the fault-free run would have seen.
            let snapshot = buffers.clone();
            match self.ctx.allreduce_with_faults(&self.schedule, buffers, op, session, &self.live) {
                Ok(()) => {
                    return Ok(ElasticReport { dead: dead_total, world: self.live.len(), rebuilds })
                }
                Err(ExecError::RanksDead { dead }) => {
                    // `dead` holds local indices into the current live
                    // set; translate, then shrink topology + buffers.
                    let dead_orig: Vec<usize> = dead.iter().map(|&l| self.live[l]).collect();
                    *buffers = snapshot;
                    for &local in dead.iter().rev() {
                        buffers.remove(local);
                        self.live.remove(local);
                    }
                    dead_total.extend_from_slice(&dead_orig);
                    if self.live.is_empty() {
                        return Err(ElasticError::AllRanksDead);
                    }
                    rebuilds += 1;
                    FaultCounters::bump(&session.counters().degradations);
                    session.events().push(FaultEvent::Degraded {
                        step: session.step(),
                        dead: dead_orig,
                        new_world: self.live.len(),
                    });
                    // Rebuild schedule + executor over the survivors;
                    // the degraded topology is re-verified in full and
                    // the warm payload pool carries over.
                    self.schedule = self.algo.build(self.live.len(), self.n_elems);
                    self.schedule.verify_allreduce().map_err(ElasticError::Rejected)?;
                    self.ctx = ExecContext::for_schedule_with_pool(&self.schedule, &self.ctx)
                        .map_err(ElasticError::Exec)?;
                    self.trace_view = self.trace.as_ref().map(|t| t.reindex(&self.live));
                }
                Err(other) => return Err(ElasticError::Exec(other)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_allreduce;
    use faults::{FaultKind, FaultPlan, Injection};

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 29 + i * 5) % 17) as f32 * 0.5 - 4.0).collect())
            .collect()
    }

    #[test]
    fn no_session_is_the_plain_path() {
        let (n, e) = (4usize, 64usize);
        let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(ela.schedule(), &mut by_ref, ReduceOp::Sum);
        let mut bufs = ins.clone();
        let report = ela.allreduce(&mut bufs, ReduceOp::Sum, None).unwrap();
        assert_eq!(bufs, by_ref);
        assert_eq!(report, ElasticReport { dead: vec![], world: 4, rebuilds: 0 });
    }

    #[test]
    fn crash_rebuilds_over_survivors_and_rescales_average() {
        let (n, e) = (4usize, 48usize);
        let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
        let plan = FaultPlan::explicit(
            9,
            vec![Injection { step: 0, rank: 2, round: 1, kind: FaultKind::Crash }],
        );
        let session = FaultSession::new(plan);
        let ins = inputs(n, e);
        let mut bufs = ins.clone();
        let report = ela.allreduce(&mut bufs, ReduceOp::Average, Some(&session)).unwrap();
        assert_eq!(report.dead, vec![2]);
        assert_eq!(report.world, 3);
        assert_eq!(report.rebuilds, 1);
        assert_eq!(ela.live(), &[0, 1, 3]);
        assert_eq!(bufs.len(), 3);
        assert_eq!(ela.schedule().n_ranks, 3);
        assert_eq!(ela.schedule().verify_allreduce(), Ok(()));
        // The survivors' average over the *new* world size, bit-exact
        // against the reference run of the rebuilt schedule.
        let mut by_ref = vec![ins[0].clone(), ins[1].clone(), ins[3].clone()];
        apply_allreduce(ela.schedule(), &mut by_ref, ReduceOp::Average);
        assert_eq!(bufs, by_ref);
        assert_eq!(session.counters().snapshot().degradations, 1);
        assert!(session.events().deterministic_core().contains(&FaultEvent::Degraded {
            step: 0,
            dead: vec![2],
            new_world: 3
        }));
    }

    #[test]
    fn later_calls_use_the_degraded_topology() {
        let (n, e) = (4usize, 32usize);
        let mut ela = ElasticAllreduce::new(Algorithm::RecursiveDoubling, n, e).unwrap();
        let plan = FaultPlan::explicit(
            3,
            vec![Injection { step: 0, rank: 0, round: 0, kind: FaultKind::Crash }],
        );
        let session = FaultSession::new(plan);
        let mut bufs = inputs(n, e);
        ela.allreduce(&mut bufs, ReduceOp::Sum, Some(&session)).unwrap();
        assert_eq!(ela.world(), 3);
        // Step 1: no further injections; both the fault path and the
        // plain path run the 3-rank schedule cleanly.
        session.begin_step(1);
        let ins3 = vec![inputs(4, e)[1].clone(), inputs(4, e)[2].clone(), inputs(4, e)[3].clone()];
        let mut with_faults = ins3.clone();
        let r1 = ela.allreduce(&mut with_faults, ReduceOp::Sum, Some(&session)).unwrap();
        assert_eq!(r1.rebuilds, 0);
        assert_eq!(r1.world, 3);
        let mut plain = ins3.clone();
        let r2 = ela.allreduce(&mut plain, ReduceOp::Sum, None).unwrap();
        assert!(!r2.degraded());
        assert_eq!(with_faults, plain, "fault path with no injections is bit-identical");
    }

    #[test]
    fn trace_rows_keep_original_ids_across_degradation() {
        let (n, e) = (4usize, 32usize);
        let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
        let rec = trace::TraceRecorder::new();
        let world_ids: Vec<usize> = (0..n).collect();
        let trace = crate::exec_trace::ExecTrace::comm(&rec, &world_ids);
        ela.set_trace(trace.clone());
        let plan = FaultPlan::explicit(
            7,
            vec![Injection { step: 0, rank: 1, round: 0, kind: FaultKind::Crash }],
        );
        let session = FaultSession::new(plan).with_trace(trace);
        let mut bufs = inputs(n, e);
        ela.allreduce(&mut bufs, ReduceOp::Sum, Some(&session)).unwrap();
        assert_eq!(ela.live(), &[0, 2, 3]);
        // A later *plain* (session-off) call must land survivor spans
        // on their original pid rows — local 1 is original rank 2.
        let before: usize =
            rec.snapshot().lanes.iter().filter(|l| l.pid == 2).map(|l| l.spans.len()).sum();
        let mut plain = vec![bufs[0].clone(), bufs[1].clone(), bufs[2].clone()];
        ela.allreduce(&mut plain, ReduceOp::Sum, None).unwrap();
        let after: usize =
            rec.snapshot().lanes.iter().filter(|l| l.pid == 2).map(|l| l.spans.len()).sum();
        assert!(after > before, "survivor rank 2 must keep recording on pid 2");
    }

    #[test]
    fn all_ranks_dead_is_an_error() {
        let (n, e) = (2usize, 8usize);
        let mut ela = ElasticAllreduce::new(Algorithm::Ring, n, e).unwrap();
        let plan = FaultPlan::explicit(
            1,
            vec![
                Injection { step: 0, rank: 0, round: 0, kind: FaultKind::Crash },
                Injection { step: 0, rank: 1, round: 0, kind: FaultKind::Crash },
            ],
        );
        let session = FaultSession::new(plan);
        let mut bufs = inputs(n, e);
        let err = ela.allreduce(&mut bufs, ReduceOp::Sum, Some(&session)).unwrap_err();
        assert_eq!(err, ElasticError::AllRanksDead);
    }
}
