//! Single-rank schedule execution over a [`transport::Wire`]: the §5d
//! resend protocol ([`exec_fault`](crate::exec_fault)) lifted out of
//! the shared-memory thread world and onto framed byte streams, so the
//! same verified [`Schedule`] runs between separate OS processes.
//!
//! # What moved, what stayed
//!
//! [`exec_fault`](crate::exec_fault) owns *all* ranks: it spawns one
//! thread per buffer and aggregates their outcomes. Here each process
//! owns exactly one rank, so [`PeerExecutor`] is the body of a single
//! `rank_main` — Phase A snapshot-and-send, Phase B validated in-order
//! receive-and-apply — with the identical reliability discipline:
//! per-peer sequence numbers, a clean-copy resend buffer cleared by
//! acks, nacks on deadline expiry with exponential backoff
//! ([`RetryPolicy`]), CRC-rejected frames surfacing as loss (the wire
//! drops them at decode), and a [`DedupWindow`] that discards
//! duplicates idempotently and re-orders early arrivals. Because the
//! applied payloads and the per-rank combine order are exactly those of
//! the schedule, the result is bit-identical to the in-process
//! executors — that is the parity the multi-process integration tests
//! assert.
//!
//! # Streams multiplex data and control
//!
//! Thread-world acks ride a dedicated reverse channel; a socket gives
//! us one full-duplex stream per peer, so data, acks, and nacks
//! interleave on it. Every receive demultiplexes: acks clear the
//! resend buffer, nacks answer with the clean copy, data goes through
//! the era filter and the dedup window, and in-order deliveries queue
//! per peer until the schedule asks for them (a frame from peer Q can
//! land while Phase B is blocked on peer P).
//!
//! # Eras
//!
//! Elastic degradation renumbers the world; the frame `era` field keeps
//! pre- and post-degrade traffic apart. Frames below the current era
//! are stale and dropped; frames above it are stashed and replayed once
//! [`PeerExecutor::bump_era`] resets the sequence space (a survivor
//! that processed the degrade first may already be sending in the new
//! era). Within an era, sequence numbers run continuously across
//! steps — they reset *only* on era bumps.
//!
//! # Death
//!
//! Two signals, both mapped to [`PeerExecError::PeerDead`]: the wire
//! reports [`WireError::PeerGone`] (EOF after draining — the kernel
//! closes a SIGKILLed process's sockets), or the peer's
//! [`Wire::silence`] exceeds [`RetryPolicy::death_threshold`] while we
//! starve (wedged-but-open). The caller — the elastic layer in the
//! worker loop — restores its snapshot, rebuilds the schedule over the
//! survivors, re-verifies it, bumps the era, and retries.

use std::collections::VecDeque;
use std::time::Duration;

use faults::{FaultClock, RetryPolicy};
use transport::{DedupWindow, Frame, FrameKind, Offer, Wire, WireError};

use crate::reduce::{combine, finalize, ReduceOp};
use crate::sched::{Action, Schedule};

/// What the control-plane poll (checked once per timeout tick while
/// blocked) tells the executor to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlSignal {
    /// Keep waiting.
    Continue,
    /// Abort the collective now (a degrade was announced out-of-band);
    /// the run returns [`PeerExecError::Aborted`] with partial buffers.
    Abort,
}

/// Why a peer-executed collective stopped short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerExecError {
    /// Peers died (stream EOF or heartbeat silence past the death
    /// threshold). Reported as **original** rank ids — the wire's
    /// addressing — unlike `ExecError::RanksDead`'s local indices.
    PeerDead { dead: Vec<usize> },
    /// The retry budget ran out on a peer that still looks alive.
    RetriesExhausted { peer: usize, round: usize },
    /// The control poll demanded an abort mid-collective.
    Aborted,
}

impl std::fmt::Display for PeerExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerExecError::PeerDead { dead } => write!(f, "peers dead: {dead:?}"),
            PeerExecError::RetriesExhausted { peer, round } => {
                write!(f, "retries exhausted on live peer {peer} in round {round}")
            }
            PeerExecError::Aborted => write!(f, "aborted by control signal"),
        }
    }
}

impl std::error::Error for PeerExecError {}

/// Cumulative reliability-layer statistics for one executor: what the
/// telemetry plane ships to the coordinator every heartbeat (§5j).
/// All counters are totals since construction; eras do not reset them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames first-sent (resends not included).
    pub data_frames: u64,
    /// Payload bytes put on the wire, resends included.
    pub data_bytes: u64,
    /// Nacks this executor sent (receive deadlines that fired).
    pub nacks_sent: u64,
    /// Resends this executor answered.
    pub resends: u64,
}

/// One un-acked send: the clean payload bytes plus the header needed to
/// reconstruct the exact frame on a nack.
struct PendingOut {
    seq: u64,
    step: u32,
    round: u32,
    offset: u32,
    clean: Vec<u8>,
}

/// See the module docs. One instance per process, living across
/// training steps (sequence numbers, dedup windows, and ready queues
/// persist; only era bumps reset them) — all state vectors are indexed
/// by **original** rank id.
pub struct PeerExecutor<'w> {
    wire: &'w dyn Wire,
    policy: RetryPolicy,
    clock: FaultClock,
    era: u32,
    step: u32,
    /// Next outbound sequence number, per destination.
    next_seq: Vec<u64>,
    /// Un-acked sends per destination, oldest first.
    pending: Vec<VecDeque<PendingOut>>,
    /// Inbound sequencing per source.
    window: Vec<DedupWindow>,
    /// First not-yet-acked inbound seq per source (acks trail the
    /// window's delivery edge).
    acked: Vec<u64>,
    /// Delivered-but-not-yet-applied frames per source, in seq order.
    ready: Vec<VecDeque<Frame>>,
    /// Frames from a future era per source, replayed after `bump_era`.
    future: Vec<VecDeque<Frame>>,
    /// Recycled payload-byte buffers for outbound clean copies.
    byte_pool: Vec<Vec<u8>>,
    /// Reusable decode target: payload bytes → f32s before combine.
    f32_scratch: Vec<f32>,
    /// Cumulative wire statistics (telemetry reads these).
    stats: WireStats,
}

impl<'w> PeerExecutor<'w> {
    /// An executor over `wire` pacing every wait from `policy`. Uses a
    /// real clock — socket peers really do time out.
    pub fn new(wire: &'w dyn Wire, policy: RetryPolicy) -> Self {
        let slots = wire.world_ids().iter().copied().max().unwrap_or(0) + 1;
        PeerExecutor {
            wire,
            policy,
            clock: FaultClock::real(),
            era: 0,
            step: 0,
            next_seq: vec![0; slots],
            pending: (0..slots).map(|_| VecDeque::new()).collect(),
            window: (0..slots).map(|_| DedupWindow::new()).collect(),
            acked: vec![0; slots],
            ready: (0..slots).map(|_| VecDeque::new()).collect(),
            future: (0..slots).map(|_| VecDeque::new()).collect(),
            byte_pool: Vec::new(),
            f32_scratch: Vec::new(),
            stats: WireStats::default(),
        }
    }

    /// Substitute a [`FaultClock`] (tests use a virtual clock so waits
    /// are accounted, not slept).
    pub fn with_clock(mut self, clock: FaultClock) -> Self {
        self.clock = clock;
        self
    }

    pub fn era(&self) -> u32 {
        self.era
    }

    /// Cumulative wire statistics since construction.
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// Data sends currently awaiting an ack, across all peers — the
    /// "in-flight sends" a crashed rank's post-mortem reports.
    pub fn pending_sends(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Tag subsequent frames with the training step they belong to.
    pub fn begin_step(&mut self, step: usize) {
        self.step = step as u32;
    }

    /// Enter the next era after a degrade: sequence spaces restart at
    /// zero, stale state is scrapped, and frames that arrived early
    /// from survivors already in the new era are replayed.
    pub fn bump_era(&mut self) {
        self.era += 1;
        for p in 0..self.window.len() {
            self.window[p].reset();
            self.next_seq[p] = 0;
            self.acked[p] = 0;
            while let Some(entry) = self.pending[p].pop_front() {
                self.byte_pool.push(entry.clean);
            }
            while let Some(f) = self.ready[p].pop_front() {
                self.wire.release(f.payload);
            }
            let parked = std::mem::take(&mut self.future[p]);
            for f in parked {
                if f.era == self.era {
                    self.ingest_data(p, f);
                } else if f.era > self.era {
                    self.future[p].push_back(f);
                } else {
                    self.wire.release(f.payload);
                }
            }
        }
    }

    /// Run `schedule` against this rank's `buf` and apply the op's
    /// finalization — the peer analogue of `ExecContext::allreduce`.
    /// `rank_ids[local]` maps the schedule's local rank indices to
    /// original wire ids (the elastic live-set).
    pub fn allreduce(
        &mut self,
        schedule: &Schedule,
        buf: &mut [f32],
        op: ReduceOp,
        rank_ids: &[usize],
        poll: &mut dyn FnMut() -> CtlSignal,
    ) -> Result<(), PeerExecError> {
        self.run(schedule, buf, op, rank_ids, poll)?;
        finalize(op, buf, schedule.n_ranks);
        Ok(())
    }

    /// Execute the schedule without finalization. On any `Err` the
    /// buffer is in an unspecified partial state — the caller restores
    /// its snapshot exactly as the elastic layer does.
    pub fn run(
        &mut self,
        schedule: &Schedule,
        buf: &mut [f32],
        op: ReduceOp,
        rank_ids: &[usize],
        poll: &mut dyn FnMut() -> CtlSignal,
    ) -> Result<(), PeerExecError> {
        assert_eq!(rank_ids.len(), schedule.n_ranks, "one original id per schedule rank");
        assert_eq!(buf.len(), schedule.n_elems, "buffer length disagrees with schedule");
        let my = self.wire.rank();
        let me_local = rank_ids
            .iter()
            .position(|&id| id == my)
            .expect("own rank id missing from the live set"); // lint: allow(unwrap): caller contract — the live set always contains the executing rank
        if schedule.n_ranks == 1 || schedule.rounds.is_empty() {
            return Ok(());
        }
        for (round_idx, round) in schedule.rounds.iter().enumerate() {
            let actions = &round.per_rank[me_local];
            // Phase A: snapshot-and-send every outgoing segment before
            // touching any incoming one — pre-round values, exactly
            // like the threaded executors.
            for a in actions {
                if let Action::Send { peer, seg } = *a {
                    self.send_data(
                        rank_ids[peer],
                        round_idx,
                        seg.offset,
                        &buf[seg.offset..seg.end()],
                    )?;
                }
            }
            self.service(rank_ids)?;
            // Phase B: blocking, validated receives in action order.
            for a in actions {
                let (peer, seg) = match *a {
                    Action::Send { .. } => continue,
                    Action::RecvReduce { peer, seg } | Action::RecvReplace { peer, seg } => {
                        (rank_ids[peer], seg)
                    }
                };
                let frame = self.next_data(peer, round_idx, rank_ids, poll)?;
                assert_eq!(frame.step, self.step, "rank {my}: out-of-step frame from {peer}");
                assert_eq!(
                    frame.round as usize, round_idx,
                    "rank {my}: out-of-round frame from {peer}"
                );
                assert_eq!(
                    frame.offset as usize, seg.offset,
                    "rank {my}: segment mismatch from {peer}"
                );
                assert_eq!(
                    frame.payload.len(),
                    seg.len * 4,
                    "rank {my}: length mismatch from {peer}"
                );
                bytes_to_f32s(&frame.payload, &mut self.f32_scratch);
                match a {
                    Action::RecvReduce { .. } => {
                        combine(op, &mut buf[seg.offset..seg.end()], &self.f32_scratch)
                    }
                    Action::RecvReplace { .. } => {
                        buf[seg.offset..seg.end()].copy_from_slice(&self.f32_scratch)
                    }
                    Action::Send { .. } => unreachable!(),
                }
                self.wire.release(frame.payload);
            }
        }
        self.flush(rank_ids)
    }

    /// Stay responsive after the schedule completes until every send is
    /// acked (bounded by one death threshold per peer): the last frame
    /// of a schedule has no later receive to piggyback its nack
    /// servicing on, so a lossy wire needs this window to repair it.
    fn flush(&mut self, rank_ids: &[usize]) -> Result<(), PeerExecError> {
        let my = self.wire.rank();
        for &peer in rank_ids.iter().filter(|&&id| id != my) {
            let mut waited = Duration::ZERO;
            let budget = self.policy.death_threshold();
            while !self.pending[peer].is_empty() && waited < budget {
                match self.wire.recv_timeout(peer, self.policy.tick) {
                    Ok(frame) => self.ingest(peer, frame)?,
                    Err(WireError::Timeout) => {
                        self.clock.note_wait(self.policy.tick);
                        waited += self.policy.tick;
                    }
                    Err(WireError::PeerGone) => break,
                    Err(WireError::NoSuchPeer(p)) => unreachable!("flush addressed rank {p}"),
                }
            }
        }
        Ok(())
    }

    /// Send one data frame and park its clean copy in the resend
    /// buffer. A dead stream surfaces immediately as `PeerDead`.
    fn send_data(
        &mut self,
        peer: usize,
        round: usize,
        offset: usize,
        src: &[f32],
    ) -> Result<(), PeerExecError> {
        let mut clean = self.byte_pool.pop().unwrap_or_default();
        f32s_to_bytes(src, &mut clean);
        let seq = self.next_seq[peer];
        self.next_seq[peer] += 1;
        let frame = Frame {
            kind: FrameKind::Data,
            from: self.wire.rank() as u16,
            era: self.era,
            seq,
            step: self.step,
            round: round as u32,
            offset: offset as u32,
            payload: clean,
        };
        let sent = self.wire.send(peer, &frame);
        self.stats.data_frames += 1;
        self.stats.data_bytes += frame.payload.len() as u64;
        self.pending[peer].push_back(PendingOut {
            seq,
            step: self.step,
            round: round as u32,
            offset: offset as u32,
            clean: frame.payload,
        });
        match sent {
            Ok(()) => Ok(()),
            Err(WireError::PeerGone) => Err(PeerExecError::PeerDead { dead: vec![peer] }),
            Err(e) => unreachable!("send to schedule peer {peer}: {e}"),
        }
    }

    /// Drain whatever every live peer has queued, without blocking.
    /// This is `exec_fault`'s `service_ctl` generalized to multiplexed
    /// streams: a rank blocked on peer P must still clear acks, answer
    /// nacks, and bank early data arriving from Q — the cross-peer
    /// dependency chains of a schedule deadlock otherwise.
    fn service(&mut self, live: &[usize]) -> Result<(), PeerExecError> {
        let my = self.wire.rank();
        for &p in live.iter().filter(|&&id| id != my) {
            loop {
                match self.wire.recv_timeout(p, Duration::ZERO) {
                    Ok(frame) => self.ingest(p, frame)?,
                    Err(WireError::Timeout) => break,
                    // Death is surfaced by whoever awaits this peer's
                    // data; servicing just stops early.
                    Err(WireError::PeerGone) => break,
                    Err(WireError::NoSuchPeer(_)) => break,
                }
            }
        }
        Ok(())
    }

    /// Next applicable data frame from `peer`: the delivered queue if
    /// one is waiting, otherwise the demultiplexing receive loop with
    /// nack-on-deadline and the two death signals.
    fn next_data(
        &mut self,
        peer: usize,
        round: usize,
        live: &[usize],
        poll: &mut dyn FnMut() -> CtlSignal,
    ) -> Result<Frame, PeerExecError> {
        if let Some(f) = self.ready[peer].pop_front() {
            return Ok(f);
        }
        let mut attempt: u32 = 0;
        let mut deadline = self.policy.base;
        let mut waited = Duration::ZERO;
        loop {
            match self.wire.recv_timeout(peer, self.policy.tick) {
                Ok(frame) => {
                    self.ingest(peer, frame)?;
                    if let Some(f) = self.ready[peer].pop_front() {
                        return Ok(f);
                    }
                }
                Err(WireError::Timeout) => {
                    self.clock.note_wait(self.policy.tick);
                    waited += self.policy.tick;
                    if poll() == CtlSignal::Abort {
                        return Err(PeerExecError::Aborted);
                    }
                    self.service(live)?;
                    if let Some(f) = self.ready[peer].pop_front() {
                        return Ok(f);
                    }
                    if self.wire.silence(peer) > self.policy.death_threshold() {
                        return Err(PeerExecError::PeerDead { dead: vec![peer] });
                    }
                    if waited >= deadline {
                        attempt += 1;
                        if attempt >= self.policy.max_attempts {
                            return Err(PeerExecError::RetriesExhausted { peer, round });
                        }
                        self.control(peer, FrameKind::Nack, self.window[peer].expected())?;
                        self.stats.nacks_sent += 1;
                        deadline = deadline.saturating_mul(self.policy.factor);
                        waited = Duration::ZERO;
                    }
                }
                Err(WireError::PeerGone) => {
                    return Err(PeerExecError::PeerDead { dead: vec![peer] })
                }
                Err(WireError::NoSuchPeer(p)) => unreachable!("recv addressed rank {p}"),
            }
        }
    }

    /// Demultiplex one received frame: ack/nack bookkeeping or the
    /// data path (era filter, then dedup window, then ready queue).
    fn ingest(&mut self, peer: usize, frame: Frame) -> Result<(), PeerExecError> {
        match frame.kind {
            FrameKind::Ack => {
                if let Some(pos) = self.pending[peer].iter().position(|p| p.seq == frame.seq) {
                    let entry = self.pending[peer].remove(pos).expect("position just found"); // lint: allow(unwrap): position just found by iter().position
                    self.byte_pool.push(entry.clean);
                }
                self.wire.release(frame.payload);
                Ok(())
            }
            FrameKind::Nack => {
                self.resend(peer, frame.seq)?;
                self.wire.release(frame.payload);
                Ok(())
            }
            FrameKind::Data => {
                if frame.era < self.era {
                    // Stale era: the degrade already invalidated it.
                    self.wire.release(frame.payload);
                    return Ok(());
                }
                if frame.era > self.era {
                    // The sender degraded first; replay after our bump.
                    self.future[peer].push_back(frame);
                    return Ok(());
                }
                let seq = frame.seq;
                if !self.ingest_data(peer, frame) {
                    // Duplicate of an applied frame (a nack raced the
                    // original): re-ack so the sender clears it.
                    self.control(peer, FrameKind::Ack, seq)?;
                }
                // Ack every seq the window has newly committed to
                // delivery order.
                while self.acked[peer] < self.window[peer].expected() {
                    let next = self.acked[peer];
                    self.control(peer, FrameKind::Ack, next)?;
                    self.acked[peer] = next + 1;
                }
                Ok(())
            }
            // Heartbeats die in the socket reader; other kinds are
            // control-plane traffic that never shares a data stream.
            other => unreachable!("unexpected {other:?} frame on a data wire"),
        }
    }

    /// Run `frame` through the dedup window, queueing it (and anything
    /// it unblocks from the stash) for application. False ⇔ duplicate.
    fn ingest_data(&mut self, peer: usize, frame: Frame) -> bool {
        match self.window[peer].offer(frame) {
            Offer::Deliver(f) => {
                self.ready[peer].push_back(f);
                while let Some(g) = self.window[peer].pop_ready() {
                    self.ready[peer].push_back(g);
                }
                true
            }
            Offer::Stashed => true,
            Offer::Duplicate => false,
        }
    }

    /// Answer a nack with the clean buffered copy, if still held.
    fn resend(&mut self, peer: usize, seq: u64) -> Result<(), PeerExecError> {
        // Already acked or not yet assigned: a benign race.
        let Some(pos) = self.pending[peer].iter().position(|p| p.seq == seq) else {
            return Ok(());
        };
        // The clean bytes ride the frame only for the send, then go
        // straight back into the buffer.
        let (step, round, offset, clean) = {
            let e = &mut self.pending[peer][pos];
            (e.step, e.round, e.offset, std::mem::take(&mut e.clean))
        };
        let frame = Frame {
            kind: FrameKind::Data,
            from: self.wire.rank() as u16,
            era: self.era,
            seq,
            step,
            round,
            offset,
            payload: clean,
        };
        let sent = self.wire.send(peer, &frame);
        self.stats.resends += 1;
        self.stats.data_bytes += frame.payload.len() as u64;
        self.pending[peer][pos].clean = frame.payload;
        match sent {
            Ok(()) => Ok(()),
            Err(WireError::PeerGone) => Err(PeerExecError::PeerDead { dead: vec![peer] }),
            Err(e) => unreachable!("resend to schedule peer {peer}: {e}"),
        }
    }

    /// Send one payload-less protocol frame carrying `seq`.
    fn control(&mut self, peer: usize, kind: FrameKind, seq: u64) -> Result<(), PeerExecError> {
        let mut f = Frame::control(kind, self.wire.rank() as u16, self.era, self.step);
        f.seq = seq;
        match self.wire.send(peer, &f) {
            Ok(()) => Ok(()),
            Err(WireError::PeerGone) => Err(PeerExecError::PeerDead { dead: vec![peer] }),
            Err(e) => unreachable!("control to schedule peer {peer}: {e}"),
        }
    }
}

/// Encode f32s little-endian into a reused byte buffer.
fn f32s_to_bytes(src: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(src.len() * 4);
    for &x in src {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Decode little-endian bytes into a reused f32 buffer.
fn bytes_to_f32s(bytes: &[u8], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(bytes.len() / 4);
    for c in bytes.chunks_exact(4) {
        out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_allreduce;
    use crate::{rd, ring};
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use transport::ChannelWire;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(5),
            factor: 2,
            max_attempts: 5,
            tick: Duration::from_millis(1),
        }
    }

    fn inputs(n_ranks: usize, n_elems: usize) -> Vec<Vec<f32>> {
        (0..n_ranks)
            .map(|r| (0..n_elems).map(|i| ((r * 31 + i * 7) % 19) as f32 * 0.25 - 2.0).collect())
            .collect()
    }

    /// Run one allreduce per rank-thread over the given wires and
    /// return the per-rank buffers.
    fn run_mesh(
        wires: Vec<impl Wire>,
        schedule: &Schedule,
        mut bufs: Vec<Vec<f32>>,
        op: ReduceOp,
        step: usize,
    ) -> Vec<Vec<f32>> {
        let ids: Vec<usize> = (0..wires.len()).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = wires
                .iter()
                .zip(bufs.iter_mut())
                .map(|(wire, buf)| {
                    let ids = &ids;
                    scope.spawn(move || {
                        let mut ex = PeerExecutor::new(wire, policy());
                        ex.begin_step(step);
                        ex.allreduce(schedule, buf, op, ids, &mut || CtlSignal::Continue)
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("rank thread").expect("allreduce");
            }
        });
        bufs
    }

    #[test]
    fn parity_with_reference_over_channel_mesh() {
        for (n, e) in [(4usize, 96usize), (3, 31)] {
            for schedule in [ring::allreduce(n, e), rd::allreduce(n, e)] {
                let ins = inputs(n, e);
                let mut by_ref = ins.clone();
                apply_allreduce(&schedule, &mut by_ref, ReduceOp::Sum);
                let got = run_mesh(ChannelWire::mesh(n), &schedule, ins.clone(), ReduceOp::Sum, 0);
                assert_eq!(by_ref, got, "n={n} e={e}");
            }
        }
    }

    /// Sequence numbers run continuously across steps; an era bump
    /// resets them and the next collective still lands bit-exactly.
    #[test]
    fn steps_share_an_era_and_survive_a_bump() {
        let (n, e) = (4usize, 40usize);
        let schedule = ring::allreduce(n, e);
        let ids: Vec<usize> = (0..n).collect();
        let wires = ChannelWire::mesh(n);
        let mut bufs = inputs(n, e);
        let mut expect = bufs.clone();
        for _ in 0..3 {
            apply_allreduce(&schedule, &mut expect, ReduceOp::Average);
        }
        std::thread::scope(|scope| {
            for (wire, buf) in wires.iter().zip(bufs.iter_mut()) {
                let ids = &ids;
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut ex = PeerExecutor::new(wire, policy());
                    for step in 0..3 {
                        ex.begin_step(step);
                        ex.allreduce(schedule, buf, ReduceOp::Average, ids, &mut || {
                            CtlSignal::Continue
                        })
                        .expect("allreduce");
                        if step == 1 {
                            ex.bump_era();
                            assert_eq!(ex.era(), 1);
                        }
                    }
                });
            }
        });
        assert_eq!(expect, bufs);
    }

    /// A wire that eats the first transmission of chosen data frames —
    /// loss the deadline/nack/resend machinery must repair exactly.
    struct LossyWire {
        inner: ChannelWire,
        /// (peer, seq) pairs already seen once (resends pass through).
        seen: Mutex<HashSet<(usize, u64)>>,
        /// Drop the first transmission of seqs where `seq % 3 == 0`.
        drop_thirds: bool,
        /// Send every data frame twice.
        duplicate: bool,
    }

    impl Wire for LossyWire {
        fn rank(&self) -> usize {
            self.inner.rank()
        }
        fn world_ids(&self) -> &[usize] {
            self.inner.world_ids()
        }
        fn send(&self, peer: usize, frame: &Frame) -> Result<(), WireError> {
            if frame.kind == FrameKind::Data {
                if self.drop_thirds
                    && frame.seq.is_multiple_of(3)
                    && self.seen.lock().insert((peer, frame.seq))
                {
                    return Ok(()); // swallowed: the wire "lost" it
                }
                if self.duplicate {
                    self.inner.send(peer, frame)?;
                }
            }
            self.inner.send(peer, frame)
        }
        fn recv_timeout(&self, peer: usize, timeout: Duration) -> Result<Frame, WireError> {
            self.inner.recv_timeout(peer, timeout)
        }
        fn silence(&self, peer: usize) -> Duration {
            self.inner.silence(peer)
        }
        fn release(&self, payload: Vec<u8>) {
            self.inner.release(payload);
        }
    }

    #[test]
    fn dropped_transmissions_are_repaired_exactly() {
        let (n, e) = (4usize, 48usize);
        let schedule = ring::allreduce(n, e);
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&schedule, &mut by_ref, ReduceOp::Sum);
        let wires: Vec<LossyWire> = ChannelWire::mesh(n)
            .into_iter()
            .map(|inner| LossyWire {
                inner,
                seen: Mutex::new(HashSet::new()),
                drop_thirds: true,
                duplicate: false,
            })
            .collect();
        let got = run_mesh(wires, &schedule, ins, ReduceOp::Sum, 0);
        assert_eq!(by_ref, got);
    }

    #[test]
    fn duplicated_frames_are_deduped_exactly() {
        let (n, e) = (4usize, 48usize);
        let schedule = rd::allreduce(n, e);
        let ins = inputs(n, e);
        let mut by_ref = ins.clone();
        apply_allreduce(&schedule, &mut by_ref, ReduceOp::Sum);
        let wires: Vec<LossyWire> = ChannelWire::mesh(n)
            .into_iter()
            .map(|inner| LossyWire {
                inner,
                seen: Mutex::new(HashSet::new()),
                drop_thirds: false,
                duplicate: true,
            })
            .collect();
        let got = run_mesh(wires, &schedule, ins, ReduceOp::Sum, 0);
        assert_eq!(by_ref, got);
    }

    #[test]
    fn a_dropped_wire_surfaces_peer_dead() {
        let n = 3usize;
        let e = 24usize;
        let schedule = ring::allreduce(n, e);
        let ids: Vec<usize> = (0..n).collect();
        let mut wires = ChannelWire::mesh(n);
        let dead_wire = wires.pop().expect("rank 2's wire"); // lint: allow(unwrap): mesh(3) yields three wires
        drop(dead_wire); // rank 2 "dies" before the collective
        let mut bufs = inputs(n, e);
        bufs.pop();
        std::thread::scope(|scope| {
            let handles: Vec<_> = wires
                .iter()
                .zip(bufs.iter_mut())
                .map(|(wire, buf)| {
                    let ids = &ids;
                    let schedule = &schedule;
                    scope.spawn(move || {
                        let mut ex = PeerExecutor::new(wire, policy());
                        ex.run(schedule, buf, ReduceOp::Sum, ids, &mut || CtlSignal::Continue)
                    })
                })
                .collect();
            for h in handles {
                let err = h.join().expect("rank thread").expect_err("peer 2 is gone");
                assert_eq!(err, PeerExecError::PeerDead { dead: vec![2] });
            }
        });
    }

    #[test]
    fn abort_poll_stops_a_starved_receive() {
        let n = 2usize;
        let e = 8usize;
        let schedule = ring::allreduce(n, e);
        let ids: Vec<usize> = (0..n).collect();
        let wires = ChannelWire::mesh(n);
        // Rank 1 never shows up, but its wire stays open — only the
        // control-plane abort can unblock rank 0.
        let mut buf = vec![1.0f32; e];
        let mut polls = 0u32;
        let mut ex = PeerExecutor::new(&wires[0], policy());
        let err = ex
            .run(&schedule, &mut buf, ReduceOp::Sum, &ids, &mut || {
                polls += 1;
                if polls > 3 {
                    CtlSignal::Abort
                } else {
                    CtlSignal::Continue
                }
            })
            .expect_err("no peer, must abort");
        assert_eq!(err, PeerExecError::Aborted);
        assert!(polls > 3);
    }
}
