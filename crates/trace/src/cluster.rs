//! The coordinator side of the distributed telemetry plane (§5j):
//! cluster-wide aggregation of per-worker [`TelemetrySnapshot`]s.
//!
//! [`ClusterView::ingest`] folds each arriving snapshot (keeping the
//! newest by seq — telemetry is best-effort and may arrive out of
//! order from the heartbeat thread racing the training loop), feeds
//! the **online straggler model**, and reports a [`StragglerAlert`]
//! when a rank newly crosses the threshold. The model is the live twin
//! of the offline critical-path analyzer's: per-rank step-latency
//! EWMAs run through the *same* [`lateness_from`] helper the analyzer
//! applies to per-rank finish times — the fastest rank defines zero,
//! everyone else's excess is their lateness.
//!
//! The view exposes three renderings, all deterministic for goldens:
//!
//! * [`ClusterView::to_prometheus_text`] / [`ClusterView::to_json`] —
//!   the live scrape endpoint's bodies: every wire metric as a
//!   rank-labeled series (`train_steps_committed_total{rank="0"}`),
//!   plus derived `train_straggler_lateness_us{rank=…}` gauges and
//!   cluster totals.
//! * [`ClusterView::flight_json`] — a dead rank's post-mortem
//!   (`flight_<rank>.json`): last-known step, metric cells, in-flight
//!   sends, and the flight-recorder tail that rode its last telemetry
//!   frame.
//! * [`ClusterView::summary_json`] — the per-step-window
//!   `cluster_summary.json` roll-up.
//!
//! [`TelemetrySnapshot`]: crate::telemetry::TelemetrySnapshot

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::critical_path::lateness_from;
use crate::telemetry::{metric, TelemetrySnapshot};

/// Knobs of the online straggler detector.
#[derive(Debug, Clone, Copy)]
pub struct StragglerPolicy {
    /// EWMA smoothing factor for per-rank step latency (weight of the
    /// newest committed step).
    pub alpha: f64,
    /// A rank is lagging when its EWMA exceeds `ratio ×` the fastest
    /// live rank's EWMA…
    pub ratio: f64,
    /// …and its lateness (EWMA − fastest EWMA) exceeds this floor, so
    /// microsecond jitter between equally-fast ranks never alerts.
    pub floor_us: f64,
}

impl Default for StragglerPolicy {
    fn default() -> Self {
        StragglerPolicy { alpha: 0.2, ratio: 2.0, floor_us: 5_000.0 }
    }
}

/// A rank newly crossed the straggler threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerAlert {
    pub rank: u16,
    /// EWMA excess over the fastest live rank, µs.
    pub lateness_us: f64,
    /// The lagging rank's own EWMA, µs.
    pub ewma_us: f64,
    /// The fastest live rank's EWMA, µs.
    pub best_us: f64,
    /// The lagging rank's step when the alert fired.
    pub step: u32,
}

#[derive(Debug)]
struct RankState {
    snap: TelemetrySnapshot,
    alive: bool,
    /// Step-latency EWMA in µs; 0 folds ⇒ not yet in the model.
    ewma_us: f64,
    folds: u64,
    /// `train_steps_committed_total` at the last EWMA fold.
    last_committed: u64,
    /// Currently over the threshold (alerts fire on the transition).
    lagging: bool,
}

/// See the module docs.
#[derive(Debug)]
pub struct ClusterView {
    policy: StragglerPolicy,
    ranks: BTreeMap<u16, RankState>,
}

impl ClusterView {
    pub fn new(policy: StragglerPolicy) -> Self {
        ClusterView { policy, ranks: BTreeMap::new() }
    }

    /// Fold one decoded snapshot in. Stale seqs (at or below the
    /// newest already held for the rank) are dropped. Returns an alert
    /// iff this snapshot moved its rank *across* the straggler
    /// threshold (level-triggered alerts would spam the log every
    /// heartbeat).
    pub fn ingest(&mut self, snap: TelemetrySnapshot) -> Option<StragglerAlert> {
        let rank = snap.rank;
        match self.ranks.get_mut(&rank) {
            Some(state) => {
                if snap.seq <= state.snap.seq {
                    return None;
                }
                // Fold one EWMA sample per newly committed step.
                let committed = snap.metric(metric::STEPS_COMMITTED).unwrap_or(0);
                if committed > state.last_committed {
                    if let Some(lat) = snap.metric(metric::STEP_LATENCY_US).filter(|&l| l > 0) {
                        let lat = lat as f64;
                        state.ewma_us = if state.folds == 0 {
                            lat
                        } else {
                            self.policy.alpha * lat + (1.0 - self.policy.alpha) * state.ewma_us
                        };
                        state.folds += 1;
                    }
                    state.last_committed = committed;
                }
                state.snap = snap;
            }
            None => {
                let committed = snap.metric(metric::STEPS_COMMITTED).unwrap_or(0);
                let mut state = RankState {
                    snap,
                    alive: true,
                    ewma_us: 0.0,
                    folds: 0,
                    last_committed: committed,
                    lagging: false,
                };
                // The first snapshot seeds the EWMA if it already
                // carries a committed step's latency.
                if committed > 0 {
                    if let Some(lat) = state.snap.metric(metric::STEP_LATENCY_US).filter(|&l| l > 0)
                    {
                        state.ewma_us = lat as f64;
                        state.folds = 1;
                    }
                }
                self.ranks.insert(rank, state);
            }
        }
        self.update_lagging(rank)
    }

    /// Re-evaluate `rank` against the model; alert on the off→on edge.
    fn update_lagging(&mut self, rank: u16) -> Option<StragglerAlert> {
        let (lateness, best) = {
            let lat = self.lateness_map();
            let best = self
                .ranks
                .values()
                .filter(|s| s.alive && s.folds > 0)
                .map(|s| s.ewma_us)
                .fold(f64::INFINITY, f64::min);
            (lat, best)
        };
        let state = self.ranks.get_mut(&rank)?;
        let lateness_us = lateness.get(&rank).copied().unwrap_or(0.0);
        let over = state.folds > 0
            && best.is_finite()
            && lateness_us > self.policy.floor_us
            && state.ewma_us > self.policy.ratio * best;
        let fired = over && !state.lagging;
        state.lagging = over;
        if fired {
            Some(StragglerAlert {
                rank,
                lateness_us,
                ewma_us: state.ewma_us,
                best_us: best,
                step: state.snap.current_step,
            })
        } else {
            None
        }
    }

    /// Per-rank lateness (µs) over live modeled ranks, via the same
    /// [`lateness_from`] the critical-path analyzer uses offline.
    fn lateness_map(&self) -> BTreeMap<u16, f64> {
        let modeled: Vec<(u16, f64)> = self
            .ranks
            .iter()
            .filter(|(_, s)| s.alive && s.folds > 0)
            .map(|(&r, s)| (r, s.ewma_us))
            .collect();
        let values: Vec<f64> = modeled.iter().map(|&(_, v)| v).collect();
        modeled.iter().map(|&(r, _)| r).zip(lateness_from(&values)).collect()
    }

    /// Mark a rank dead (degrade/SIGKILL). Its last snapshot is kept
    /// for the post-mortem; it leaves the straggler model's live set.
    pub fn mark_dead(&mut self, rank: u16) {
        if let Some(state) = self.ranks.get_mut(&rank) {
            state.alive = false;
            state.lagging = false;
        }
    }

    /// The newest snapshot held for `rank`.
    pub fn latest(&self, rank: u16) -> Option<&TelemetrySnapshot> {
        self.ranks.get(&rank).map(|s| &s.snap)
    }

    /// Ranks ever heard from, ascending.
    pub fn known_ranks(&self) -> Vec<u16> {
        self.ranks.keys().copied().collect()
    }

    /// Prometheus text exposition of the cluster: every wire metric as
    /// a rank-labeled series, the straggler gauges, and cluster
    /// totals. Deterministic (ranks ascending, metric ids ascending).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut ids: BTreeSet<u16> = BTreeSet::new();
        for state in self.ranks.values() {
            ids.extend(state.snap.metrics.iter().map(|&(id, _)| id));
        }
        for id in ids {
            let name = metric_series_name(id);
            let kind = if metric::is_counter(id) { "counter" } else { "gauge" };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (rank, state) in &self.ranks {
                if let Some(v) = state.snap.metric(id) {
                    let _ = writeln!(out, "{name}{{rank=\"{rank}\"}} {v}");
                }
            }
        }
        let _ = writeln!(out, "# TYPE train_current_step gauge");
        for (rank, state) in &self.ranks {
            let _ =
                writeln!(out, "train_current_step{{rank=\"{rank}\"}} {}", state.snap.current_step);
        }
        let lateness = self.lateness_map();
        let _ = writeln!(out, "# TYPE train_straggler_lateness_us gauge");
        for rank in self.ranks.keys() {
            let v = lateness.get(rank).copied().unwrap_or(0.0);
            let _ = writeln!(out, "train_straggler_lateness_us{{rank=\"{rank}\"}} {v}");
        }
        let alive = self.ranks.values().filter(|s| s.alive).count();
        let _ = writeln!(
            out,
            "# TYPE cluster_ranks_total gauge\ncluster_ranks_total {}",
            self.ranks.len()
        );
        let _ = writeln!(out, "# TYPE cluster_ranks_alive gauge\ncluster_ranks_alive {alive}");
        out
    }

    /// JSON exposition: the same content as the text form, machine
    /// readable, plus per-rank liveness/seq/EWMA (flight tails are in
    /// [`Self::flight_json`], not here — scrapes stay small).
    pub fn to_json(&self) -> String {
        let lateness = self.lateness_map();
        let mut out = String::from("{\"ranks\":{");
        for (i, (rank, state)) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{rank}\":{{\"alive\":{},\"current_step\":{},\"seq\":{},\"ewma_step_us\":{},\"lateness_us\":{},\"flight_dropped\":{},\"metrics\":{{",
                state.alive,
                state.snap.current_step,
                state.snap.seq,
                state.ewma_us,
                lateness.get(rank).copied().unwrap_or(0.0),
                state.snap.flight_dropped,
            );
            let mut sorted: Vec<(u16, u64)> = state.snap.metrics.clone();
            sorted.sort_by_key(|&(id, _)| id);
            for (j, (id, v)) in sorted.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", metric_series_name(*id));
            }
            out.push_str("}}");
        }
        let alive = self.ranks.values().filter(|s| s.alive).count();
        let _ = write!(
            out,
            "}},\"cluster\":{{\"ranks_total\":{},\"ranks_alive\":{alive}}}}}",
            self.ranks.len()
        );
        out
    }

    /// A dead (or live) rank's post-mortem document, if it was ever
    /// heard from: last-known step, metric cells, and the
    /// flight-recorder tail. Written as `flight_<rank>.json`.
    pub fn flight_json(&self, rank: u16) -> Option<String> {
        let state = self.ranks.get(&rank)?;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"rank\": {rank},");
        let _ = writeln!(out, "  \"alive\": {},", state.alive);
        let _ = writeln!(out, "  \"last_step\": {},", state.snap.current_step);
        let _ = writeln!(out, "  \"seq\": {},", state.snap.seq);
        let _ = writeln!(out, "  \"flight_dropped\": {},", state.snap.flight_dropped);
        out.push_str("  \"metrics\": {");
        let mut sorted: Vec<(u16, u64)> = state.snap.metrics.clone();
        sorted.sort_by_key(|&(id, _)| id);
        for (j, (id, v)) in sorted.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", metric_series_name(*id));
        }
        out.push_str("\n  },\n  \"flight\": [");
        for (j, ev) in state.snap.flight.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"cat\": \"{}\", \"name\": \"{}\", \"step\": {}, \"ts_us\": {}, \"dur_us\": {}, \"a0\": {}}}",
                escape_json(&ev.cat),
                escape_json(&ev.name),
                ev.step,
                ev.ts_us,
                ev.dur_us,
                ev.a0
            );
        }
        out.push_str("\n  ]\n}\n");
        Some(out)
    }

    /// The per-step-window roll-up written as `cluster_summary.json`.
    pub fn summary_json(&self) -> String {
        let lateness = self.lateness_map();
        let alive = self.ranks.values().filter(|s| s.alive).count();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"ranks_total\": {},", self.ranks.len());
        let _ = writeln!(out, "  \"ranks_alive\": {alive},");
        out.push_str("  \"ranks\": [");
        for (j, (rank, state)) in self.ranks.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rank\": {rank}, \"alive\": {}, \"last_step\": {}, \"steps_committed\": {}, \"ewma_step_us\": {}, \"lateness_us\": {}}}",
                state.alive,
                state.snap.current_step,
                state.snap.metric(metric::STEPS_COMMITTED).unwrap_or(0),
                state.ewma_us,
                lateness.get(rank).copied().unwrap_or(0.0)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Exposition name for a wire metric id: the schema name, or a stable
/// fallback for ids from a newer worker.
fn metric_series_name(id: u16) -> String {
    match metric::name(id) {
        Some(name) => name.to_string(),
        None => format!("telemetry_metric_{id}"),
    }
}

/// Minimal JSON string escaping for decoded labels (which arrived off
/// the wire and are only guaranteed to be UTF-8).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{FlightEvent, TelemetrySnapshot};

    fn snap(rank: u16, seq: u64, step: u32, committed: u64, latency_us: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            rank,
            current_step: step,
            seq,
            metrics: vec![
                (metric::STEPS_BEGUN, committed + 1),
                (metric::STEPS_COMMITTED, committed),
                (metric::STEP_LATENCY_US, latency_us),
            ],
            flight_dropped: 0,
            flight: vec![FlightEvent {
                cat: "STEP".into(),
                name: "begin".into(),
                step,
                ts_us: 10,
                dur_us: 0,
                a0: 0,
            }],
        }
    }

    fn policy() -> StragglerPolicy {
        StragglerPolicy { alpha: 0.5, ratio: 1.5, floor_us: 100.0 }
    }

    #[test]
    fn stale_seqs_are_dropped() {
        let mut view = ClusterView::new(policy());
        view.ingest(snap(0, 5, 3, 3, 1000));
        view.ingest(snap(0, 4, 9, 9, 1000)); // older seq, wilder content
        assert_eq!(view.latest(0).map(|s| s.current_step), Some(3));
    }

    #[test]
    fn straggler_alert_fires_once_on_the_crossing() {
        let mut view = ClusterView::new(policy());
        // Two fast ranks, one slow. First folds seed the EWMAs.
        assert!(view.ingest(snap(0, 1, 1, 1, 1000)).is_none());
        assert!(view.ingest(snap(1, 1, 1, 1, 1000)).is_none());
        let alert = view.ingest(snap(2, 1, 1, 1, 8000));
        let alert = alert.expect("slow rank crosses the threshold");
        assert_eq!(alert.rank, 2);
        assert!(alert.lateness_us > 100.0);
        assert!((alert.best_us - 1000.0).abs() < 1e-9);
        // Still lagging on the next snapshot: no duplicate alert.
        assert!(view.ingest(snap(2, 2, 2, 2, 8000)).is_none());
        // Recovery then re-crossing alerts again.
        for s in 3..12 {
            view.ingest(snap(2, s, s as u32, s, 1000));
        }
        assert!(view.ingest(snap(2, 12, 12, 12, 100_000)).is_some());
    }

    #[test]
    fn dead_ranks_leave_the_model_but_keep_their_snapshot() {
        let mut view = ClusterView::new(policy());
        view.ingest(snap(0, 1, 1, 1, 1000));
        view.ingest(snap(1, 1, 1, 1, 50_000));
        view.mark_dead(1);
        // The dead slow rank no longer defines anyone's lateness.
        let text = view.to_prometheus_text();
        assert!(text.contains("train_straggler_lateness_us{rank=\"0\"} 0"), "{text}");
        assert!(text.contains("cluster_ranks_alive 1"), "{text}");
        // Its post-mortem is still available.
        let flight = view.flight_json(1).expect("dead rank has a post-mortem");
        assert!(flight.contains("\"alive\": false"), "{flight}");
        assert!(flight.contains("\"last_step\": 1"), "{flight}");
    }

    #[test]
    fn ewma_folds_once_per_committed_step() {
        let mut view = ClusterView::new(StragglerPolicy { alpha: 0.5, ..policy() });
        view.ingest(snap(0, 1, 1, 1, 1000));
        // Same committed count, new seq: heartbeat resends don't fold.
        view.ingest(snap(0, 2, 1, 1, 9000));
        view.ingest(snap(0, 3, 2, 2, 2000));
        let json = view.to_json();
        // 0.5 * 2000 + 0.5 * 1000 = 1500 — the 9000 never entered.
        assert!(json.contains("\"ewma_step_us\":1500"), "{json}");
    }

    #[test]
    fn unknown_metric_ids_expose_with_a_stable_fallback_name() {
        let mut view = ClusterView::new(policy());
        let mut s = snap(0, 1, 1, 1, 1000);
        s.metrics.push((700, 9));
        view.ingest(s);
        let text = view.to_prometheus_text();
        assert!(text.contains("telemetry_metric_700{rank=\"0\"} 9"), "{text}");
    }

    #[test]
    fn flight_json_escapes_hostile_labels() {
        let mut view = ClusterView::new(policy());
        let mut s = snap(0, 1, 1, 1, 1000);
        s.flight[0].name = "a\"b\\c\n".into();
        view.ingest(s);
        let flight = view.flight_json(0).expect("present");
        assert!(flight.contains("\"name\": \"a\\\"b\\\\c\\u000a\""), "{flight}");
    }
}
