//! The worker side of the distributed telemetry plane (§5j).
//!
//! Each worker process keeps one [`WorkerTelemetry`]: a fixed table of
//! atomic metric cells keyed by a compact **u16 metric id** (names are
//! schema, not wire data — see [`metric`]), the step currently being
//! trained, and a bounded **flight recorder** ring of the most recent
//! spans/events. [`WorkerTelemetry::encode_into`] serializes all of it
//! into a reused byte buffer — the payload of one
//! `FrameKind::Telemetry` frame — without allocating once the buffer
//! is warm, so snapshots can ride the heartbeat cadence from inside
//! the hot training loop (the counting-allocator proof in
//! `collectives/tests/socket_zero_alloc.rs` pins this).
//!
//! The coordinator decodes payloads with [`decode`], which is **total**
//! over arbitrary bytes: truncations, bit flips, and version skew come
//! back as a typed [`TelemetryError`], never a panic (the adversarial
//! proptests in `tests/telemetry_proptests.rs` pin this, mirroring the
//! frame codec's suite). Decoded [`TelemetrySnapshot`]s feed the
//! cluster aggregation in [`crate::cluster`].
//!
//! # Wire payload format (`TELEMETRY_VERSION` 1)
//!
//! ```text
//! u8   version            u8   flags (reserved, 0)
//! u16  rank               u32  current_step
//! u64  seq (monotonic per worker; receivers keep the max)
//! u16  metric_count       metric_count × { u16 id, u64 value }
//! u64  flight_dropped     u16  flight_count
//! flight_count × { u8 cat_len, cat bytes (≤ 16),
//!                  u8 name_len, name bytes (≤ 16),
//!                  u32 step, u64 ts_us, u32 dur_us, u64 a0 }
//! ```
//!
//! All integers little-endian. Unknown metric ids are carried through
//! (forward compatibility: an old coordinator exposes them as
//! `telemetry_metric_<id>`); an unknown *version* is a hard
//! [`TelemetryError::BadVersion`], because field layout may differ.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Version byte leading every telemetry payload.
pub const TELEMETRY_VERSION: u8 = 1;

/// Flight-recorder ring capacity: enough to reconstruct the last few
/// steps of a worker's life without bloating the heartbeat frames.
pub const FLIGHT_CAPACITY: usize = 32;

/// Decode-side sanity bound on `metric_count` / `flight_count` — far
/// above anything a real worker sends, low enough that a bit-flipped
/// count cannot make the decoder reserve gigabytes.
pub const MAX_COUNT: usize = 1024;

// Wide enough for the longest trace-lane category ("MPI_ALLREDUCE"),
// so flight-recorder spans carry the same labels the critical-path
// analyzer keys on offline.
const MAX_CAT_LEN: usize = 16;
const MAX_NAME_LEN: usize = 16;

/// The fixed metric-id schema. Ids are wire format: **never renumber**
/// — append new ids and bump nothing (unknown ids pass through
/// decoders). Names match the single-process `Registry` metrics where
/// an equivalent exists.
pub mod metric {
    /// Steps whose gradient compute began (counter).
    pub const STEPS_BEGUN: u16 = 0;
    /// Steps committed by the coordinator and applied (counter).
    pub const STEPS_COMMITTED: u16 = 1;
    /// Degrades observed (counter).
    pub const DEGRADES: u16 = 2;
    /// Gradient payload bytes put on the wire, resends included (counter).
    pub const WIRE_BYTES: u16 = 3;
    /// Nacks this worker sent (receive deadlines that fired) (counter).
    pub const NACKS: u16 = 4;
    /// Resends this worker answered (counter).
    pub const RESENDS: u16 = 5;
    /// Wall time of the last committed step, µs (gauge).
    pub const STEP_LATENCY_US: u16 = 6;
    /// Un-acked data sends at the last snapshot (gauge).
    pub const INFLIGHT_SENDS: u16 = 7;
    /// Wall time from last vote to its verdict, µs (gauge).
    pub const COMMIT_WAIT_US: u16 = 8;

    /// Number of ids in the schema (cells in [`super::WorkerTelemetry`]).
    pub const COUNT: usize = 9;

    /// The exposition name for `id`, if the schema knows it.
    pub fn name(id: u16) -> Option<&'static str> {
        Some(match id {
            STEPS_BEGUN => "train_steps_begun_total",
            STEPS_COMMITTED => "train_steps_committed_total",
            DEGRADES => "train_degrades_total",
            WIRE_BYTES => "train_wire_bytes_total",
            NACKS => "train_nacks_total",
            RESENDS => "train_resends_total",
            STEP_LATENCY_US => "train_step_latency_us",
            INFLIGHT_SENDS => "train_inflight_sends",
            COMMIT_WAIT_US => "train_commit_wait_us",
            _ => return None,
        })
    }

    /// Counter vs gauge, for `# TYPE` lines. Unknown ids expose as
    /// gauges (no monotonicity promise can be made for them).
    pub fn is_counter(id: u16) -> bool {
        matches!(id, STEPS_BEGUN | STEPS_COMMITTED | DEGRADES | WIRE_BYTES | NACKS | RESENDS)
    }
}

/// One flight-recorder record: a span/event with its labels inlined
/// into fixed arrays so recording is `Copy` and allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct FlightRec {
    cat: [u8; MAX_CAT_LEN],
    cat_len: u8,
    name: [u8; MAX_NAME_LEN],
    name_len: u8,
    /// Training step the record belongs to.
    pub step: u32,
    /// Microseconds since the worker's telemetry epoch.
    pub ts_us: u64,
    /// Span duration in µs (0 for instant events).
    pub dur_us: u32,
    /// One free argument (dead rank id, byte count, …).
    pub a0: u64,
}

impl FlightRec {
    pub fn cat(&self) -> &str {
        // Only ever built from &str truncated on a char boundary check;
        // lossy is belt-and-braces for decoded records.
        std::str::from_utf8(&self.cat[..self.cat_len as usize]).unwrap_or("?") // lint: allow(unwrap): unwrap_or, not unwrap — total
    }

    pub fn name(&self) -> &str {
        std::str::from_utf8(&self.name[..self.name_len as usize]).unwrap_or("?")
        // lint: allow(unwrap): unwrap_or, not unwrap — total
    }
}

/// Copy `s` into a fixed label array, truncating on a UTF-8 boundary.
fn fixed_label<const N: usize>(s: &str) -> ([u8; N], u8) {
    let mut out = [0u8; N];
    let mut len = s.len().min(N);
    while len > 0 && !s.is_char_boundary(len) {
        len -= 1;
    }
    out[..len].copy_from_slice(&s.as_bytes()[..len]);
    (out, len as u8)
}

/// The bounded ring of recent [`FlightRec`]s. Oldest records are
/// overwritten; `dropped` counts the overwrites so a post-mortem says
/// how much history it is missing.
#[derive(Debug)]
struct FlightRing {
    recs: Box<[FlightRec]>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl FlightRing {
    fn new() -> Self {
        let zero = FlightRec {
            cat: [0; MAX_CAT_LEN],
            cat_len: 0,
            name: [0; MAX_NAME_LEN],
            name_len: 0,
            step: 0,
            ts_us: 0,
            dur_us: 0,
            a0: 0,
        };
        FlightRing {
            recs: vec![zero; FLIGHT_CAPACITY].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: FlightRec) {
        if self.len < self.recs.len() {
            self.recs[(self.head + self.len) % self.recs.len()] = rec;
            self.len += 1;
        } else {
            self.recs[self.head] = rec;
            self.head = (self.head + 1) % self.recs.len();
            self.dropped += 1;
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-worker telemetry state: metric cells, current step, and the
/// flight recorder. All recording methods are lock-cheap and
/// allocation-free; `encode_into` snapshots everything into a reused
/// buffer. Shared by `Arc` between the training loop (writes) and the
/// heartbeat thread's `TelemetrySource` (encodes).
#[derive(Debug)]
pub struct WorkerTelemetry {
    rank: u16,
    epoch: Instant,
    cells: [AtomicU64; metric::COUNT],
    current_step: AtomicU64,
    seq: AtomicU64,
    flight: Mutex<FlightRing>,
}

impl WorkerTelemetry {
    pub fn new(rank: u16) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        WorkerTelemetry {
            rank,
            epoch: Instant::now(),
            cells: [ZERO; metric::COUNT],
            current_step: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            flight: Mutex::new(FlightRing::new()),
        }
    }

    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// Microseconds since this worker's telemetry epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Add `n` to a counter cell. Out-of-schema ids are ignored.
    pub fn add(&self, id: u16, n: u64) {
        if let Some(cell) = self.cells.get(id as usize) {
            cell.fetch_add(n, Ordering::Relaxed); // lint: allow(relaxed): monotonic statistic; snapshot tolerates races with writers
        }
    }

    /// Overwrite a gauge cell. Out-of-schema ids are ignored.
    pub fn set(&self, id: u16, v: u64) {
        if let Some(cell) = self.cells.get(id as usize) {
            cell.store(v, Ordering::Relaxed); // lint: allow(relaxed): gauge cell; last-writer-wins is the gauge contract
        }
    }

    pub fn get(&self, id: u16) -> u64 {
        self.cells.get(id as usize).map_or(0, |c| c.load(Ordering::Relaxed)) // lint: allow(relaxed): statistic read; snapshot tolerates races with writers
    }

    /// Mark `step` as the step currently in progress.
    pub fn begin_step(&self, step: u32) {
        self.current_step.store(step as u64, Ordering::Relaxed); // lint: allow(relaxed): independent statistic; the snapshot needs no cross-cell ordering
    }

    pub fn current_step(&self) -> u32 {
        self.current_step.load(Ordering::Relaxed) as u32 // lint: allow(relaxed): independent statistic; the snapshot needs no cross-cell ordering
    }

    /// Record one flight-recorder event, stamped with [`Self::now_us`].
    /// Labels longer than the fixed fields truncate (16/16 bytes).
    pub fn flight(&self, cat: &str, name: &str, step: u32, dur_us: u32, a0: u64) {
        let (cat, cat_len) = fixed_label::<MAX_CAT_LEN>(cat);
        let (name, name_len) = fixed_label::<MAX_NAME_LEN>(name);
        let rec =
            FlightRec { cat, cat_len, name, name_len, step, ts_us: self.now_us(), dur_us, a0 };
        lock(&self.flight).push(rec);
    }

    /// Serialize the current state into `out` (cleared first) as one
    /// telemetry payload, assigning and returning the snapshot's seq.
    /// Allocation-free once `out` has warmed to the payload size.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): seq uniqueness only needs atomicity, not ordering
        out.clear();
        out.push(TELEMETRY_VERSION);
        out.push(0); // flags
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.current_step().to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&(metric::COUNT as u16).to_le_bytes());
        for (id, cell) in self.cells.iter().enumerate() {
            out.extend_from_slice(&(id as u16).to_le_bytes());
            out.extend_from_slice(&cell.load(Ordering::Relaxed).to_le_bytes()); // lint: allow(relaxed): statistic read; snapshot tolerates races with writers
        }
        let ring = lock(&self.flight);
        out.extend_from_slice(&ring.dropped.to_le_bytes());
        out.extend_from_slice(&(ring.len as u16).to_le_bytes());
        for i in 0..ring.len {
            let rec = &ring.recs[(ring.head + i) % ring.recs.len()];
            out.push(rec.cat_len);
            out.extend_from_slice(&rec.cat[..rec.cat_len as usize]);
            out.push(rec.name_len);
            out.extend_from_slice(&rec.name[..rec.name_len as usize]);
            out.extend_from_slice(&rec.step.to_le_bytes());
            out.extend_from_slice(&rec.ts_us.to_le_bytes());
            out.extend_from_slice(&rec.dur_us.to_le_bytes());
            out.extend_from_slice(&rec.a0.to_le_bytes());
        }
        seq
    }
}

/// Why a telemetry payload failed to decode. Total over arbitrary
/// bytes — corruption is an `Err`, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// The payload ended before a declared field.
    Truncated,
    /// Leading version byte is not [`TELEMETRY_VERSION`].
    BadVersion(u8),
    /// A count field exceeds [`MAX_COUNT`] (or a label its bound).
    BadCount(usize),
    /// A label is not valid UTF-8.
    BadLabel,
    /// Bytes remain after the declared content — framing is suspect.
    TrailingBytes(usize),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Truncated => write!(f, "telemetry payload truncated"),
            TelemetryError::BadVersion(v) => write!(f, "unknown telemetry version {v}"),
            TelemetryError::BadCount(n) => write!(f, "telemetry count {n} out of bounds"),
            TelemetryError::BadLabel => write!(f, "telemetry label is not utf-8"),
            TelemetryError::TrailingBytes(n) => write!(f, "{n} trailing bytes after telemetry"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// One decoded flight-recorder event (owned labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    pub cat: String,
    pub name: String,
    pub step: u32,
    pub ts_us: u64,
    pub dur_us: u32,
    pub a0: u64,
}

/// One decoded telemetry payload: a worker's state as of `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub rank: u16,
    pub current_step: u32,
    pub seq: u64,
    /// `(id, value)` pairs in wire order. Unknown ids are preserved.
    pub metrics: Vec<(u16, u64)>,
    /// Flight records overwritten before this snapshot (lost history).
    pub flight_dropped: u64,
    /// The flight-recorder tail, oldest first.
    pub flight: Vec<FlightEvent>,
}

impl TelemetrySnapshot {
    /// The value of metric `id`, if this snapshot carried it.
    pub fn metric(&self, id: u16) -> Option<u64> {
        self.metrics.iter().find(|&&(i, _)| i == id).map(|&(_, v)| v)
    }
}

/// Bounds-checked little-endian cursor over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TelemetryError> {
        let end = self.at.checked_add(n).ok_or(TelemetryError::Truncated)?;
        let s = self.bytes.get(self.at..end).ok_or(TelemetryError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TelemetryError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TelemetryError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TelemetryError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TelemetryError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn label(&mut self, max: usize) -> Result<String, TelemetryError> {
        let len = self.u8()? as usize;
        if len > max {
            return Err(TelemetryError::BadCount(len));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| TelemetryError::BadLabel)
    }
}

/// Decode one telemetry payload. Total: arbitrary input yields
/// `Ok(snapshot)` or a typed error, never a panic and never an
/// unbounded allocation (counts are sanity-capped at [`MAX_COUNT`]).
pub fn decode(payload: &[u8]) -> Result<TelemetrySnapshot, TelemetryError> {
    let mut c = Cursor { bytes: payload, at: 0 };
    let version = c.u8()?;
    if version != TELEMETRY_VERSION {
        return Err(TelemetryError::BadVersion(version));
    }
    let _flags = c.u8()?;
    let rank = c.u16()?;
    let current_step = c.u32()?;
    let seq = c.u64()?;
    let metric_count = c.u16()? as usize;
    if metric_count > MAX_COUNT {
        return Err(TelemetryError::BadCount(metric_count));
    }
    let mut metrics = Vec::with_capacity(metric_count);
    for _ in 0..metric_count {
        let id = c.u16()?;
        let value = c.u64()?;
        metrics.push((id, value));
    }
    let flight_dropped = c.u64()?;
    let flight_count = c.u16()? as usize;
    if flight_count > MAX_COUNT {
        return Err(TelemetryError::BadCount(flight_count));
    }
    let mut flight = Vec::with_capacity(flight_count);
    for _ in 0..flight_count {
        let cat = c.label(MAX_CAT_LEN)?;
        let name = c.label(MAX_NAME_LEN)?;
        let step = c.u32()?;
        let ts_us = c.u64()?;
        let dur_us = c.u32()?;
        let a0 = c.u64()?;
        flight.push(FlightEvent { cat, name, step, ts_us, dur_us, a0 });
    }
    if c.at != payload.len() {
        return Err(TelemetryError::TrailingBytes(payload.len() - c.at));
    }
    Ok(TelemetrySnapshot { rank, current_step, seq, metrics, flight_dropped, flight })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips_state() {
        let tel = WorkerTelemetry::new(3);
        tel.begin_step(7);
        tel.add(metric::STEPS_BEGUN, 8);
        tel.add(metric::STEPS_COMMITTED, 7);
        tel.set(metric::STEP_LATENCY_US, 1234);
        tel.flight("STEP", "begin", 7, 0, 0);
        tel.flight("MPI_ALLREDUCE", "exchange", 7, 900, 42);

        let mut buf = Vec::new();
        let seq = tel.encode_into(&mut buf);
        let snap = decode(&buf).expect("own encoding decodes");
        assert_eq!(snap.rank, 3);
        assert_eq!(snap.current_step, 7);
        assert_eq!(snap.seq, seq);
        assert_eq!(snap.metric(metric::STEPS_BEGUN), Some(8));
        assert_eq!(snap.metric(metric::STEP_LATENCY_US), Some(1234));
        assert_eq!(snap.flight.len(), 2);
        assert_eq!(snap.flight[0].name, "begin");
        // The longest trace-lane category fits the 16-byte field whole.
        assert_eq!(snap.flight[1].cat, "MPI_ALLREDUCE");
        assert_eq!(snap.flight[1].a0, 42);

        // Seqs are monotonic across encodes.
        let seq2 = tel.encode_into(&mut buf);
        assert_eq!(seq2, seq + 1);
    }

    #[test]
    fn flight_ring_bounds_history_and_counts_drops() {
        let tel = WorkerTelemetry::new(0);
        for i in 0..(FLIGHT_CAPACITY as u64 + 5) {
            tel.flight("STEP", "begin", i as u32, 0, 0);
        }
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        let snap = decode(&buf).expect("decodes");
        assert_eq!(snap.flight.len(), FLIGHT_CAPACITY);
        assert_eq!(snap.flight_dropped, 5);
        // Oldest-first: the first surviving record is step 5.
        assert_eq!(snap.flight[0].step, 5);
        assert_eq!(snap.flight[FLIGHT_CAPACITY - 1].step, FLIGHT_CAPACITY as u32 + 4);
    }

    #[test]
    fn version_skew_is_a_clean_error() {
        let tel = WorkerTelemetry::new(1);
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        buf[0] = TELEMETRY_VERSION + 1;
        assert_eq!(decode(&buf), Err(TelemetryError::BadVersion(TELEMETRY_VERSION + 1)));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_clean_errors() {
        let tel = WorkerTelemetry::new(1);
        tel.flight("FAULT", "degrade", 3, 0, 2);
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(decode(&buf[..cut]).is_err(), "cut at {cut} must not decode");
        }
        buf.push(0);
        assert_eq!(decode(&buf), Err(TelemetryError::TrailingBytes(1)));
    }

    #[test]
    fn out_of_schema_ids_are_ignored_not_panics() {
        let tel = WorkerTelemetry::new(0);
        tel.add(999, 5);
        tel.set(999, 5);
        assert_eq!(tel.get(999), 0);
    }

    #[test]
    fn schema_names_are_unique_and_typed() {
        let mut names = std::collections::BTreeSet::new();
        for id in 0..metric::COUNT as u16 {
            let name = metric::name(id).expect("schema id has a name");
            assert!(names.insert(name), "duplicate metric name {name}");
            if metric::is_counter(id) {
                assert!(name.ends_with("_total"), "{name} counter naming");
            }
        }
        assert_eq!(metric::name(metric::COUNT as u16), None);
    }
}
