//! The observability layer of the Summit DLv3+ reproduction.
//!
//! The paper's whole methodology is *observe, then tune*: Anthony et
//! al. diagnose why default DLv3+ scaling is poor by reading the
//! Horovod timeline, then prove the tuning gain by watching the
//! allreduce fraction shrink. This crate is the corresponding layer
//! here — three pieces, deliberately dependency-free so every other
//! crate can use them:
//!
//! * [`span`] — a low-overhead span recorder. Lanes are keyed by
//!   `(pid, tid)` exactly as Chrome-trace wants them (rank → pid,
//!   executor thread → tid); each lane records into a **preallocated
//!   ring buffer**, so recording on the hot path performs zero heap
//!   allocation (the counting-allocator test in
//!   `trainer/tests/zero_alloc.rs` proves it with the recorder
//!   enabled).
//! * [`metrics`] — a metrics registry: monotonic counters, f64 gauges,
//!   and log2-bucketed histograms, all behind atomics, with
//!   deterministic snapshots plus Prometheus-style text and JSON
//!   exposition.
//! * [`critical_path`] — an analyzer that consumes a multi-rank trace
//!   and reports per-phase **busy time** (interval union, not span
//!   sum), communication/computation overlap, and per-rank straggler
//!   attribution.
//!
//! [`chrome`] holds the shared Chrome-trace JSON emitter and a small
//! parser used by the round-trip tests; `horovod::Timeline`'s
//! `to_chrome_json` is a thin shim over it.

pub mod chrome;
pub mod cluster;
pub mod critical_path;
pub mod metrics;
pub mod race;
pub mod span;
pub mod telemetry;

pub use chrome::{parse_trace, write_trace, ChromeEvent, ParseError};
pub use cluster::{ClusterView, StragglerAlert, StragglerPolicy};
pub use critical_path::{
    analyze, lateness_from, Breakdown, PhaseStat, RankStat, COMM_CATS, COMPUTE_CATS,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use race::{RaceDetector, RaceReport, SyncKind};
pub use span::{Lane, LaneSnapshot, SpanRec, TraceRecorder, TraceSnapshot};
pub use telemetry::{
    FlightEvent, TelemetryError, TelemetrySnapshot, WorkerTelemetry, TELEMETRY_VERSION,
};

/// A recorder + registry bundle: everything one traced run shares.
/// Cheap to share via `Arc` between the driver and the instrumented
/// layers (the trainer's `TrainConfig::trace` holds one).
#[derive(Debug, Default)]
pub struct TraceSession {
    pub recorder: TraceRecorder,
    pub registry: Registry,
}

impl TraceSession {
    pub fn new() -> Self {
        Self::default()
    }
}
