//! The metrics registry: counters, gauges, and log2-bucketed
//! histograms behind atomics, with deterministic snapshots and
//! Prometheus-style text / JSON exposition.
//!
//! Instruments are created through [`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`] (get-or-create by
//! name, so independent layers naming the same metric share one
//! instrument) and updated lock-free: counters and histogram buckets
//! are `AtomicU64` adds, gauges and histogram sums store f64 bit
//! patterns with a CAS loop. Updating never allocates; only
//! registration and snapshotting do.
//!
//! Histogram buckets are powers of two: a dedicated zero bucket, an
//! underflow bucket for values at or below 2^-30 (subnormals land
//! here), one bucket per binade up to 2^33 (~8.6e9 — microseconds for
//! over two hours), and an overflow bucket. Bucketing is exact bit
//! arithmetic on the f64, not `log2`, so boundary values land
//! deterministically.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    // lint: hot-path
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): monotonic statistic; snapshot tolerates races with writers
    }

    // lint: hot-path
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed); // lint: allow(relaxed): monotonic statistic; snapshot tolerates races with writers
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // lint: allow(relaxed): monotonic statistic; snapshot tolerates races with writers
    }
}

/// A settable f64 gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    // lint: hot-path
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed); // lint: allow(relaxed): gauge bits; last-writer-wins is the gauge contract
    }

    // lint: hot-path
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed); // lint: allow(relaxed): gauge bits; last-writer-wins is the gauge contract
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            let swap = self.bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed, // lint: allow(relaxed): gauge bits; last-writer-wins contract
                Ordering::Relaxed, // lint: allow(relaxed): gauge bits; last-writer-wins contract
            );
            match swap {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed)) // lint: allow(relaxed): gauge bits; last-writer-wins is the gauge contract
    }
}

/// Lowest binade exponent with its own bucket: values `<= 2^MIN_EXP`
/// (including subnormals) share the underflow bucket.
pub const MIN_EXP: i32 = -30;
/// Highest binade exponent: values `> 2^MAX_EXP` go to overflow.
pub const MAX_EXP: i32 = 33;
/// zero + underflow + one per binade in (MIN_EXP, MAX_EXP] + overflow.
pub const BUCKETS: usize = 2 + (MAX_EXP - MIN_EXP) as usize + 1;

/// A histogram over power-of-two buckets (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

/// Which bucket `v` falls in. Exact bit arithmetic: for finite
/// positive `v`, the bucket upper bound is the smallest `2^e >= v`.
/// Negative values clamp into the zero bucket (durations cannot be
/// negative; a negative observation is a caller bug we keep visible
/// rather than panicking over). NaN and +inf go to overflow.
pub fn bucket_for(v: f64) -> usize {
    if v.is_nan() || v.is_infinite() {
        return BUCKETS - 1;
    }
    if v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let biased = (bits >> 52) & 0x7ff;
    if biased == 0 {
        // Subnormal: far below 2^MIN_EXP.
        return 1;
    }
    let exp = biased as i32 - 1023;
    let mantissa = bits & ((1u64 << 52) - 1);
    // Smallest e with v <= 2^e: exact powers of two sit at their own
    // exponent; everything else rounds up one binade.
    let e = if mantissa == 0 { exp } else { exp + 1 };
    if e <= MIN_EXP {
        1
    } else if e > MAX_EXP {
        BUCKETS - 1
    } else {
        1 + (e - MIN_EXP) as usize
    }
}

/// Upper bound (`le`) of bucket `i`; `f64::INFINITY` for overflow.
pub fn bucket_le(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i >= BUCKETS - 1 {
        f64::INFINITY
    } else {
        2f64.powi(MIN_EXP + i as i32 - 1)
    }
}

impl Histogram {
    // lint: hot-path
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_for(v)].fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
        self.count.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
        let mut cur = self.sum_bits.load(Ordering::Relaxed); // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed, // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
                Ordering::Relaxed, // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed); // lint: allow(relaxed): histogram cell; per-cell totals are exact, cross-cell skew is fine
        }
        HistogramSnapshot { buckets, count: self.count(), sum: self.sum() }
    }
}

/// A frozen histogram: raw per-bucket counts (not cumulative).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// `(le, cumulative_count)` rows, truncated after the highest
    /// non-empty bucket, always ending with the `+Inf` row — the shape
    /// both expositions print (truncation keeps golden snapshots
    /// stable as the bucket range grows).
    pub fn cumulative_rows(&self) -> Vec<(f64, u64)> {
        let last_used = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let stop = last_used.min(BUCKETS - 2);
        let mut rows = Vec::with_capacity(stop + 2);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate().take(stop + 1) {
            cum += c;
            rows.push((bucket_le(i), cum));
        }
        rows.push((f64::INFINITY, self.count));
        rows
    }
}

/// A frozen, name-sorted copy of every instrument.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// `le` labels: exact integers for the binades that have them,
/// exponent notation below 1 — deterministic either way.
fn fmt_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else if le >= 1.0 && le <= 2f64.powi(33) {
        format!("{}", le as u64)
    } else {
        format!("{le:e}")
    }
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, cum) in h.cumulative_rows() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_le(le));
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }

    /// JSON exposition (same content, machine-readable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ =
                write!(out, "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum);
            for (j, (le, cum)) in h.cumulative_rows().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[\"{}\",{cum}]", fmt_le(*le));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// The instrument registry: get-or-create by name, deterministic
/// (name-sorted) snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Freeze every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("steps_total");
        c.inc();
        c.add(4);
        // Same name → same instrument.
        assert_eq!(reg.counter("steps_total").get(), 5);
        let g = reg.gauge("loss");
        g.set(2.5);
        g.add(-0.5);
        assert!((reg.gauge("loss").get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_for_covers_boundaries() {
        // Zero and negatives → the zero bucket.
        assert_eq!(bucket_for(0.0), 0);
        assert_eq!(bucket_for(-0.0), 0);
        assert_eq!(bucket_for(-3.0), 0);
        // Subnormals and anything at or below 2^MIN_EXP → underflow.
        assert_eq!(bucket_for(f64::from_bits(1)), 1);
        assert_eq!(bucket_for(2f64.powi(MIN_EXP)), 1);
        assert_eq!(bucket_for(f64::MIN_POSITIVE), 1);
        // Just above the underflow bound → first binade bucket.
        assert_eq!(bucket_for(2f64.powi(MIN_EXP) * 1.0000001), 2);
        // Exact powers of two sit at their own exponent's bucket.
        assert_eq!(bucket_for(1.0), 1 + (0 - MIN_EXP) as usize);
        assert_eq!(bucket_for(2.0), 1 + (1 - MIN_EXP) as usize);
        assert_eq!(bucket_for(1.5), 1 + (1 - MIN_EXP) as usize);
        // The top binade is inclusive; past it (and inf/NaN) overflow.
        assert_eq!(bucket_for(2f64.powi(MAX_EXP)), BUCKETS - 2);
        assert_eq!(bucket_for(2f64.powi(MAX_EXP) * 1.01), BUCKETS - 1);
        assert_eq!(bucket_for(f64::MAX), BUCKETS - 1);
        assert_eq!(bucket_for(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_for(f64::NAN), BUCKETS - 1);
    }

    #[test]
    fn bucket_le_matches_bucket_for() {
        // Every finite observation lands in a bucket whose le bounds it.
        for v in [0.0, 1e-12, 0.3, 1.0, 7.0, 1024.0, 8.5e9, 1e300] {
            let i = bucket_for(v);
            assert!(v <= bucket_le(i), "v={v} le={}", bucket_le(i));
            if i > 0 && v > 0.0 {
                assert!(v > bucket_le(i - 1) || i == 1, "v={v} should exceed previous le");
            }
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [0.0, 0.5, 1.0, 3.0, 1e12] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - (0.0 + 0.5 + 1.0 + 3.0 + 1e12)).abs() < 1.0);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), 5);
        // Cumulative rows end at +Inf with the total count.
        let rows = snap.cumulative_rows();
        let (le, cum) = rows[rows.len() - 1];
        assert!(le.is_infinite());
        assert_eq!(cum, 5);
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let reg = Registry::new();
        reg.counter("zz").inc();
        reg.counter("aa").add(2);
        reg.gauge("mid").set(1.5);
        reg.histogram("lat_us").observe(3.0);
        let a = reg.snapshot().to_prometheus_text();
        let b = reg.snapshot().to_prometheus_text();
        assert_eq!(a, b);
        let aa = a.find("aa 2").expect("aa present");
        let zz = a.find("zz 1").expect("zz present");
        assert!(aa < zz, "name-sorted exposition");
        assert!(a.contains("lat_us_bucket{le=\"4\"}"), "{a}");
        assert!(a.contains("lat_us_bucket{le=\"+Inf\"} 1"), "{a}");
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"aa\":2") && json.contains("\"lat_us\""), "{json}");
    }
}
