//! A vector-clock happens-before race detector for the pipelined
//! executor, in the FastTrack style: last-write *epochs* per location
//! plus a read vector clock, with synchronization modeled through a
//! narrow [`sync_event`] hook.
//!
//! Identity piggybacks the span recorder's `(pid, tid)` convention
//! (rank → pid, executor thread → tid), so the lanes a race report
//! names line up with the lanes in the Chrome trace of the same run.
//!
//! Like the span recorder (§5b of DESIGN.md), the hot path performs
//! **zero heap allocation**: every table — thread slots, their vector
//! clocks, the location and sync-object tables — is preallocated at
//! construction, and `on_read`/`on_write`/`sync_event` only index into
//! them. Lookup is open addressing over fixed power-of-two tables;
//! filling a table is a hard error (`TableFull`), never a realloc.
//!
//! The protocol mapping used by the trainer's `race-detect` feature:
//!
//! * `RangeQueue` claims and the tile completion counters are AcqRel
//!   RMW chains → [`SyncKind::AcqRel`] on a sync object per queue word
//!   / per counter.
//! * `CorePool::run`'s publish (Release stores + unpark) and the
//!   helpers' generation load → [`SyncKind::Release`] by the submitter,
//!   [`SyncKind::Acquire`] by each helper, on one sync object per pool
//!   phase direction.
//! * Gradient tile payloads and the weight buffers are the *data*
//!   whose accesses `on_read`/`on_write` track.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// How a [`RaceDetector::sync_event`] moves clocks around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncKind {
    /// Publish: the sync object's clock joins the thread's view
    /// (`L ⊔= C_t`), then the thread's own epoch advances.
    Release,
    /// Subscribe: the thread's view joins the object's clock
    /// (`C_t ⊔= L`).
    Acquire,
    /// An RMW edge (CAS / fetch_sub chains): acquire then release.
    AcqRel,
}

/// One recorded race (reports are capped; the count is not).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceReport {
    pub loc: u64,
    /// `(pid, tid)` of the prior access this one races with.
    pub prior: (u32, u32),
    /// `(pid, tid)` of the racing access.
    pub current: (u32, u32),
    /// True when both accesses are writes.
    pub write_write: bool,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on loc {:#x}: ({},{}) vs ({},{})",
            if self.write_write { "write-write" } else { "read-write" },
            self.loc,
            self.prior.0,
            self.prior.1,
            self.current.0,
            self.current.1,
        )
    }
}

/// Why a hook call could not be tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceError {
    /// More distinct `(pid, tid)` lanes than `max_threads`.
    TooManyThreads,
    /// The location or sync-object table filled up.
    TableFull,
}

const EMPTY: u64 = u64::MAX;

/// Fixed-capacity open-addressing map from a `u64` key to a slot index
/// in a side table. Never allocates after construction.
struct FixedMap {
    keys: Vec<u64>,
    slots: Vec<u32>,
    len: usize,
}

impl FixedMap {
    fn new(capacity_pow2: usize) -> Self {
        assert!(capacity_pow2.is_power_of_two());
        FixedMap { keys: vec![EMPTY; capacity_pow2], slots: vec![0; capacity_pow2], len: 0 }
    }

    /// Find `key`, or claim the next free slot for it. `Err` when the
    /// table is at its fill limit (¾ of capacity keeps probing short).
    fn get_or_insert(&mut self, key: u64) -> Result<(u32, bool), RaceError> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the tombstone key");
        // Fibonacci hashing: cheap, and good enough for addresses.
        let mask = self.keys.len() - 1;
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            if self.keys[i] == key {
                return Ok((self.slots[i], false));
            }
            if self.keys[i] == EMPTY {
                if self.len >= self.keys.len() / 4 * 3 {
                    return Err(RaceError::TableFull);
                }
                let slot = self.len as u32;
                self.keys[i] = key;
                self.slots[i] = slot;
                self.len += 1;
                return Ok((slot, true));
            }
            i = (i + 1) & mask;
        }
    }
}

/// Per-location access history: FastTrack's write epoch + read VC.
struct LocState {
    /// Thread slot and clock of the last write (`u32::MAX`: none yet).
    write_tid: u32,
    write_clk: u32,
    write_id: (u32, u32),
    /// Last read clock per thread slot.
    reads: Vec<u32>,
    read_ids: Vec<(u32, u32)>,
}

struct Inner {
    /// Registered `(pid, tid)` lanes, and one VC per lane.
    lane_map: FixedMap,
    lane_ids: Vec<(u32, u32)>,
    /// Flattened `max_threads × max_threads` clock matrix.
    clocks: Vec<u32>,
    locs: FixedMap,
    loc_states: Vec<LocState>,
    syncs: FixedMap,
    /// Flattened `max_syncs × max_threads` sync-object clocks.
    sync_clocks: Vec<u32>,
    races: u64,
    dropped: u64,
    reports: Vec<RaceReport>,
    max_threads: usize,
}

/// The detector. One instance per run; share it via [`install`] /
/// [`global`] or pass it around explicitly. All methods take `&self`
/// (a mutex guards the clock state — the contention is acceptable
/// because the detector only runs in the `race-detect` configuration).
pub struct RaceDetector {
    inner: Mutex<Inner>,
    report_cap: usize,
}

impl RaceDetector {
    /// Preallocate for at most `max_threads` lanes, `max_locs` tracked
    /// locations and `max_syncs` sync objects. Everything the hot path
    /// touches is sized here, up front.
    pub fn new(max_threads: usize, max_locs: usize, max_syncs: usize) -> Self {
        let loc_cap = (max_locs * 4 / 3 + 1).next_power_of_two();
        let sync_cap = (max_syncs * 4 / 3 + 1).next_power_of_two();
        let lane_cap = (max_threads * 4 / 3 + 1).next_power_of_two();
        let mut loc_states = Vec::with_capacity(loc_cap);
        for _ in 0..loc_cap {
            loc_states.push(LocState {
                write_tid: u32::MAX,
                write_clk: 0,
                write_id: (0, 0),
                reads: vec![0; max_threads],
                read_ids: vec![(0, 0); max_threads],
            });
        }
        RaceDetector {
            inner: Mutex::new(Inner {
                lane_map: FixedMap::new(lane_cap),
                lane_ids: vec![(0, 0); max_threads],
                clocks: vec![0; max_threads * max_threads],
                locs: FixedMap::new(loc_cap),
                loc_states,
                syncs: FixedMap::new(sync_cap),
                sync_clocks: vec![0; sync_cap * max_threads],
                races: 0,
                dropped: 0,
                reports: Vec::with_capacity(64),
                max_threads,
            }),
            report_cap: 64,
        }
    }

    /// A write of `loc` by lane `(pid, tid)`.
    pub fn on_write(&self, pid: u32, tid: u32, loc: u64) {
        let mut g = self.inner.lock().unwrap(); // lint: allow(unwrap): poisoning implies a prior panic under this lock
        let Some(t) = lane(&mut g, pid, tid) else { return };
        let Some(l) = loc_slot(&mut g, loc) else { return };
        let n = g.max_threads;
        let my_clk = g.clocks[t * n + t];
        let st = &g.loc_states[l];
        // Prior write must happen-before this one...
        let mut racy = None;
        if st.write_tid != u32::MAX {
            let w = st.write_tid as usize;
            if w != t && st.write_clk > g.clocks[t * n + w] {
                racy = Some((st.write_id, true));
            }
        }
        // ...and so must every prior read.
        if racy.is_none() {
            for u in 0..n {
                if u != t && st.reads[u] > g.clocks[t * n + u] {
                    racy = Some((st.read_ids[u], false));
                    break;
                }
            }
        }
        if let Some((prior, ww)) = racy {
            record(
                &mut g,
                self.report_cap,
                RaceReport { loc, prior, current: (pid, tid), write_write: ww },
            );
        }
        let st = &mut g.loc_states[l];
        st.write_tid = t as u32;
        st.write_clk = my_clk;
        st.write_id = (pid, tid);
        // The write epoch subsumes older same-thread reads; other
        // threads' reads stay (they must still be checked against
        // later writers, and remain covered by the VC entries above).
        st.reads[t] = my_clk;
        st.read_ids[t] = (pid, tid);
    }

    /// A read of `loc` by lane `(pid, tid)`.
    pub fn on_read(&self, pid: u32, tid: u32, loc: u64) {
        let mut g = self.inner.lock().unwrap(); // lint: allow(unwrap): poisoning implies a prior panic under this lock
        let Some(t) = lane(&mut g, pid, tid) else { return };
        let Some(l) = loc_slot(&mut g, loc) else { return };
        let n = g.max_threads;
        let my_clk = g.clocks[t * n + t];
        let st = &g.loc_states[l];
        if st.write_tid != u32::MAX {
            let w = st.write_tid as usize;
            if w != t && st.write_clk > g.clocks[t * n + w] {
                let prior = st.write_id;
                record(
                    &mut g,
                    self.report_cap,
                    RaceReport { loc, prior, current: (pid, tid), write_write: false },
                );
            }
        }
        let st = &mut g.loc_states[l];
        st.reads[t] = my_clk;
        st.read_ids[t] = (pid, tid);
    }

    /// A synchronization edge through sync object `obj`.
    pub fn sync_event(&self, pid: u32, tid: u32, obj: u64, kind: SyncKind) {
        let mut g = self.inner.lock().unwrap(); // lint: allow(unwrap): poisoning implies a prior panic under this lock
        let Some(t) = lane(&mut g, pid, tid) else { return };
        let Ok((s, _)) = g.syncs.get_or_insert(obj) else {
            g.dropped += 1;
            return;
        };
        let n = g.max_threads;
        let (s, t_row) = (s as usize * n, t * n);
        if matches!(kind, SyncKind::Acquire | SyncKind::AcqRel) {
            for u in 0..n {
                g.clocks[t_row + u] = g.clocks[t_row + u].max(g.sync_clocks[s + u]);
            }
        }
        if matches!(kind, SyncKind::Release | SyncKind::AcqRel) {
            for u in 0..n {
                g.sync_clocks[s + u] = g.sync_clocks[s + u].max(g.clocks[t_row + u]);
            }
            // Advance the epoch so later unrelated accesses by this
            // thread are not confused with the published prefix.
            g.clocks[t_row + t] += 1;
        }
    }

    /// Total races observed (never capped).
    pub fn races(&self) -> u64 {
        self.inner.lock().unwrap().races // lint: allow(unwrap): poisoning implies a prior panic under this lock
    }

    /// Hook calls dropped because a table filled up.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped // lint: allow(unwrap): poisoning implies a prior panic under this lock
    }

    /// The first few race reports (capped at 64).
    pub fn reports(&self) -> Vec<RaceReport> {
        self.inner.lock().unwrap().reports.clone() // lint: allow(unwrap): poisoning implies a prior panic under this lock
    }
}

fn lane(g: &mut Inner, pid: u32, tid: u32) -> Option<usize> {
    let key = (u64::from(pid) << 32) | u64::from(tid);
    // The span recorder's (pid, tid) pairs are never (MAX, MAX).
    match g.lane_map.get_or_insert(key) {
        Ok((slot, fresh)) => {
            let slot = slot as usize;
            if slot >= g.max_threads {
                g.dropped += 1;
                return None;
            }
            if fresh {
                g.lane_ids[slot] = (pid, tid);
                // Epoch convention: a thread's own clock starts at 1,
                // every other view of it at 0 — so an access is
                // unordered (`clk > view`) until a release publishes.
                let n = g.max_threads;
                g.clocks[slot * n + slot] = 1;
            }
            Some(slot)
        }
        Err(_) => {
            g.dropped += 1;
            None
        }
    }
}

fn loc_slot(g: &mut Inner, loc: u64) -> Option<usize> {
    match g.locs.get_or_insert(loc) {
        Ok((slot, _)) => Some(slot as usize),
        Err(_) => {
            g.dropped += 1;
            None
        }
    }
}

fn record(g: &mut Inner, cap: usize, r: RaceReport) {
    g.races += 1;
    if g.reports.len() < cap {
        g.reports.push(r);
    }
}

static GLOBAL: OnceLock<RaceDetector> = OnceLock::new();

/// Install a process-wide detector (first caller wins) and return it.
pub fn install(max_threads: usize, max_locs: usize, max_syncs: usize) -> &'static RaceDetector {
    GLOBAL.get_or_init(|| RaceDetector::new(max_threads, max_locs, max_syncs))
}

/// The installed detector, if any. Instrumentation sites use this so
/// uninstrumented runs pay one atomic load.
pub fn global() -> Option<&'static RaceDetector> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_write(0, 0, 0x10);
        d.on_write(0, 1, 0x10);
        assert_eq!(d.races(), 1);
        let r = d.reports()[0];
        assert!(r.write_write);
        assert_eq!(r.prior, (0, 0));
        assert_eq!(r.current, (0, 1));
    }

    #[test]
    fn release_acquire_orders_the_handoff() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_write(0, 0, 0x10);
        d.sync_event(0, 0, 0xA, SyncKind::Release);
        d.sync_event(0, 1, 0xA, SyncKind::Acquire);
        d.on_write(0, 1, 0x10);
        d.on_read(0, 1, 0x10);
        assert_eq!(d.races(), 0, "{:?}", d.reports());
    }

    #[test]
    fn acquire_without_matching_release_does_not_synchronize() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_write(0, 0, 0x10);
        // Thread 1 acquires a *different* object: no edge.
        d.sync_event(0, 0, 0xA, SyncKind::Release);
        d.sync_event(0, 1, 0xB, SyncKind::Acquire);
        d.on_read(0, 1, 0x10);
        assert_eq!(d.races(), 1);
        assert!(!d.reports()[0].write_write);
    }

    #[test]
    fn rmw_chain_links_successive_claimants() {
        let d = RaceDetector::new(4, 16, 16);
        // t0 writes, then joins an AcqRel chain (a CAS on a queue
        // word); t1 continues the chain and may touch the data.
        d.on_write(0, 0, 0x20);
        d.sync_event(0, 0, 0xC, SyncKind::AcqRel);
        d.sync_event(0, 1, 0xC, SyncKind::AcqRel);
        d.on_write(0, 1, 0x20);
        // t2 never joined the chain: its read races.
        d.on_read(0, 2, 0x20);
        assert_eq!(d.races(), 1);
        assert_eq!(d.reports()[0].current, (0, 2));
    }

    #[test]
    fn read_then_unsynchronized_write_is_a_race() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_read(0, 0, 0x30);
        d.on_write(0, 1, 0x30);
        assert_eq!(d.races(), 1);
        let r = d.reports()[0];
        assert!(!r.write_write);
        assert_eq!(r.prior, (0, 0));
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_write(0, 0, 0x40);
        d.on_read(0, 0, 0x40);
        d.on_write(0, 0, 0x40);
        assert_eq!(d.races(), 0);
    }

    #[test]
    fn transitive_happens_before_through_two_objects() {
        let d = RaceDetector::new(4, 16, 16);
        d.on_write(0, 0, 0x50);
        d.sync_event(0, 0, 0x1, SyncKind::Release);
        d.sync_event(0, 1, 0x1, SyncKind::Acquire);
        d.sync_event(0, 1, 0x2, SyncKind::Release);
        d.sync_event(0, 2, 0x2, SyncKind::Acquire);
        d.on_write(0, 2, 0x50);
        assert_eq!(d.races(), 0, "{:?}", d.reports());
    }

    #[test]
    fn table_overflow_is_counted_not_grown() {
        let d = RaceDetector::new(2, 4, 4);
        for i in 0..64 {
            d.on_write(0, 0, 0x100 + i);
        }
        assert!(d.dropped() > 0);
        // Lanes beyond max_threads are dropped, not misattributed.
        d.on_write(0, 7, 0x100);
        d.on_write(0, 8, 0x100);
        assert!(d.dropped() > 0);
    }

    #[test]
    fn race_count_keeps_growing_past_the_report_cap() {
        let d = RaceDetector::new(4, 256, 4);
        for i in 0..100 {
            d.on_write(0, 0, 0x1000 + i);
            d.on_write(0, 1, 0x1000 + i);
        }
        assert_eq!(d.races(), 100);
        assert_eq!(d.reports().len(), 64);
    }
}
