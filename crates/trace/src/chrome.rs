//! Chrome-trace JSON: the shared emitter every trace producer funnels
//! through, plus a small in-repo parser for round-trip tests.
//!
//! The format is the flat-array flavor of the Trace Event Format:
//! complete spans are `"ph":"X"` objects with `ts`/`dur` in
//! microseconds, and lane naming travels as `"ph":"M"` metadata events
//! (`process_name` / `thread_name`) — which is what makes a
//! multi-rank trace render as one row group per rank instead of
//! collapsing onto `pid:0,tid:0`. JSON is emitted and parsed by hand;
//! the crate stays dependency-free.

use std::fmt;
use std::fmt::Write as _;

/// One event of a Chrome trace, covering the two phases we emit:
/// complete spans (`ph == 'X'`) and metadata (`ph == 'M'`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: char,
    pub ts_us: f64,
    pub dur_us: f64,
    pub pid: u32,
    pub tid: u32,
    /// For `'M'` events: the `args.name` payload (the lane label).
    pub meta_name: Option<String>,
    /// For `'X'` events: numeric args rendered as `"args":{...}`.
    pub args: Vec<(&'static str, u64)>,
}

impl ChromeEvent {
    /// A complete ("X") span.
    pub fn complete(name: &str, cat: &str, ts_us: f64, dur_us: f64, pid: u32, tid: u32) -> Self {
        ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us,
            pid,
            tid,
            meta_name: None,
            args: Vec::new(),
        }
    }

    pub fn is_metadata(&self) -> bool {
        self.ph == 'M'
    }
}

/// A `process_name` metadata event: names the `pid` row group.
pub fn metadata_process_name(pid: u32, name: &str) -> ChromeEvent {
    ChromeEvent {
        name: "process_name".to_string(),
        cat: String::new(),
        ph: 'M',
        ts_us: 0.0,
        dur_us: 0.0,
        pid,
        tid: 0,
        meta_name: Some(name.to_string()),
        args: Vec::new(),
    }
}

/// A `thread_name` metadata event: names the `(pid, tid)` lane.
pub fn metadata_thread_name(pid: u32, tid: u32, name: &str) -> ChromeEvent {
    ChromeEvent {
        name: "thread_name".to_string(),
        cat: String::new(),
        ph: 'M',
        ts_us: 0.0,
        dur_us: 0.0,
        pid,
        tid,
        meta_name: Some(name.to_string()),
        args: Vec::new(),
    }
}

/// Serialize events into the flat-array Chrome-trace JSON.
pub fn write_trace(events: &[ChromeEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match e.ph {
            'M' => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    escape(&e.name),
                    e.pid,
                    e.tid,
                    escape(e.meta_name.as_deref().unwrap_or("")),
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
                    escape(&e.name),
                    escape(&e.cat),
                    e.ph,
                    e.ts_us,
                    e.dur_us,
                    e.pid,
                    e.tid,
                );
                if !e.args.is_empty() {
                    out.push_str(",\"args\":{");
                    for (j, (k, v)) in e.args.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{k}\":{v}");
                    }
                    out.push('}');
                }
                out.push('}');
            }
        }
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Why a trace failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chrome trace parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// A minimal JSON value — just enough for flat trace events.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.at, what: what.into() })
    }

    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn consume(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            self.err(format!("expected `{text}`"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(format!("bad number `{text}`")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at).copied() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5);
                            let code = hex
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match code {
                                Some(c) => {
                                    out.push(c);
                                    self.at += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.at += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    match std::str::from_utf8(self.bytes.get(self.at..self.at + len).unwrap_or(b""))
                    {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("bad utf-8 in string"),
                    }
                    self.at += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a flat-array Chrome trace back into events. Only the fields
/// this repo emits are interpreted; unknown fields are ignored, so the
/// parser also accepts traces written by other tools as long as they
/// use the flat-array form.
pub fn parse_trace(json: &str) -> Result<Vec<ChromeEvent>, ParseError> {
    let mut p = Parser { bytes: json.as_bytes(), at: 0 };
    let root = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return p.err("trailing bytes after the event array");
    }
    let Json::Arr(items) = root else {
        return Err(ParseError { at: 0, what: "top level is not an array".to_string() });
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field_str = |key: &str| {
            item.get(key).and_then(Json::as_str).map(str::to_string).unwrap_or_default()
        };
        let field_num = |key: &str| item.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let ph_text = field_str("ph");
        let ph = ph_text.chars().next().unwrap_or(' ');
        if !matches!(ph, 'X' | 'M' | 'i' | 'I' | 'B' | 'E') {
            return Err(ParseError {
                at: 0,
                what: format!("event {i}: unsupported ph `{ph_text}`"),
            });
        }
        let meta_name =
            item.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).map(str::to_string);
        events.push(ChromeEvent {
            name: field_str("name"),
            cat: field_str("cat"),
            ph,
            ts_us: field_num("ts"),
            dur_us: field_num("dur"),
            pid: field_num("pid") as u32,
            tid: field_num("tid") as u32,
            meta_name,
            args: Vec::new(),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_spans_and_metadata() {
        let events =
            vec![metadata_process_name(2, "rank 2"), metadata_thread_name(2, 1, "comm"), {
                let mut e = ChromeEvent::complete("send \"x\"", "SEND", 12.5, 3.25, 2, 1);
                e.args = vec![("a0", 7), ("a1", 4096)];
                e
            }];
        let json = write_trace(&events);
        let parsed = parse_trace(&json).expect("parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].ph, 'M');
        assert_eq!(parsed[0].meta_name.as_deref(), Some("rank 2"));
        assert_eq!(parsed[1].tid, 1);
        let span = &parsed[2];
        assert_eq!(span.name, "send \"x\"");
        assert_eq!(span.cat, "SEND");
        assert_eq!((span.pid, span.tid), (2, 1));
        assert!((span.ts_us - 12.5).abs() < 1e-9);
        assert!((span.dur_us - 3.25).abs() < 1e-9);
    }

    #[test]
    fn writer_formats_match_the_legacy_timeline_shape() {
        let json =
            write_trace(&[ChromeEvent::complete("cycle", "NEGOTIATE_ALLREDUCE", 0.0, 10.0, 0, 0)]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":10.000"), "{json}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{}").is_err(), "top level must be an array");
        assert!(parse_trace("[{\"ph\":\"Q\"}]").is_err(), "unknown phase");
        assert!(parse_trace("[] trailing").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let json = r#"[{"name":"a\"b\\cA","ph":"X","ts":1,"dur":2,"pid":0,"tid":0}]"#;
        let events = parse_trace(json).expect("parses");
        assert_eq!(events[0].name, "a\"b\\cA");
    }

    #[test]
    fn control_chars_are_flattened_not_emitted() {
        let json = write_trace(&[ChromeEvent::complete("a\nb", "C", 0.0, 1.0, 0, 0)]);
        assert!(json.contains("\"a b\""), "{json}");
    }
}
