//! The span recorder: per-rank/per-thread lanes over preallocated
//! ring buffers.
//!
//! A [`TraceRecorder`] owns the lane registry; [`TraceRecorder::lane`]
//! registers a `(pid, tid)` lane (rank → pid, executor thread → tid)
//! and hands back a cheap cloneable [`Lane`] handle. Registration
//! allocates (the ring buffer, once); **recording does not**:
//! [`Lane::record`] writes a fixed-size [`SpanRec`] into the ring,
//! overwriting the oldest span when full and counting the overwrite,
//! so an enabled recorder can sit on the zero-allocation gradient path
//! (`trainer/tests/zero_alloc.rs` asserts exactly this). Names and
//! categories are `&'static str` — no interning, no formatting; spans
//! carry two free `u64` args (`a0`, `a1`) for payload bytes, peers,
//! counts, rendered only at export time.
//!
//! Dynamic labels (fault events, degradation messages) go through
//! [`Lane::record_dyn`], which allocates into a side buffer — the
//! in-repo lint (`xtask`) bans that call inside hot-path-marked
//! regions, so the allocating tier cannot creep onto the hot path.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::chrome::{metadata_process_name, metadata_thread_name, ChromeEvent};

/// Default ring capacity per lane, in spans.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

/// Lock a mutex, riding through poisoning (a panicked recorder thread
/// must not take the trace down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One recorded span: fixed-size, `Copy`, ring-buffer friendly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRec {
    /// Static span name ("send", "forward", ...).
    pub name: &'static str,
    /// Static category — the phase taxonomy the analyzer keys on
    /// ("MPI_ALLREDUCE", "SEND", ...).
    pub cat: &'static str,
    /// Start, microseconds from the recorder epoch (or virtual time).
    pub ts_us: f64,
    /// Duration in microseconds (0 for instantaneous events).
    pub dur_us: f64,
    /// Free numeric args rendered into the Chrome `args` object.
    pub a0: u64,
    pub a1: u64,
}

const EMPTY_SPAN: SpanRec = SpanRec { name: "", cat: "", ts_us: 0.0, dur_us: 0.0, a0: 0, a1: 0 };

/// A dynamically-labelled span (cold path only; see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DynSpan {
    pub name: String,
    pub cat: &'static str,
    pub ts_us: f64,
    pub dur_us: f64,
}

#[derive(Debug)]
struct LaneBuf {
    ring: Box<[SpanRec]>,
    /// Next write index.
    head: usize,
    /// Spans currently held (≤ ring.len()).
    len: usize,
    /// Spans overwritten because the ring was full.
    dropped: u64,
    dyn_spans: Vec<DynSpan>,
}

impl LaneBuf {
    fn with_capacity(capacity: usize) -> Self {
        LaneBuf {
            ring: vec![EMPTY_SPAN; capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
            dyn_spans: Vec::new(),
        }
    }

    /// Spans in chronological insertion order (oldest surviving first).
    fn ordered(&self) -> Vec<SpanRec> {
        let cap = self.ring.len();
        let mut out = Vec::with_capacity(self.len);
        let start = if self.len < cap { 0 } else { self.head };
        for i in 0..self.len {
            out.push(self.ring[(start + i) % cap]);
        }
        out
    }
}

#[derive(Debug, Clone)]
struct LaneMeta {
    pid: u32,
    tid: u32,
    process_name: String,
    thread_name: String,
}

/// A cloneable handle onto one `(pid, tid)` lane. Recording through it
/// is lock-a-mutex + write-a-slot: no allocation, no formatting.
#[derive(Debug, Clone)]
pub struct Lane {
    pid: u32,
    tid: u32,
    enabled: bool,
    epoch: Instant,
    buf: Arc<Mutex<LaneBuf>>,
}

impl Lane {
    pub fn pid(&self) -> u32 {
        self.pid
    }

    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Microseconds since the owning recorder's epoch — the real-time
    /// clock instrumented executors stamp spans with. (Simulated
    /// timelines pass their own virtual timestamps instead.)
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Record a span with both numeric args. This is the no-alloc
    /// recording primitive the hot paths use.
    // lint: hot-path
    pub fn record_args(
        &self,
        cat: &'static str,
        name: &'static str,
        ts_us: f64,
        dur_us: f64,
        a0: u64,
        a1: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut buf = lock(&self.buf);
        let cap = buf.ring.len();
        if buf.len == cap {
            buf.dropped += 1;
        } else {
            buf.len += 1;
        }
        let head = buf.head;
        buf.ring[head] = SpanRec { name, cat, ts_us, dur_us, a0, a1 };
        buf.head = (head + 1) % cap;
    }

    /// Record a span without args.
    // lint: hot-path
    pub fn record(&self, cat: &'static str, name: &'static str, ts_us: f64, dur_us: f64) {
        self.record_args(cat, name, ts_us, dur_us, 0, 0);
    }

    /// Record an instantaneous (zero-duration) event.
    // lint: hot-path
    pub fn instant(&self, cat: &'static str, name: &'static str, ts_us: f64) {
        self.record_args(cat, name, ts_us, 0.0, 0, 0);
    }

    /// Record a span with an owned label. **Allocates** — the xtask
    /// lint bans this call inside hot-path-marked functions; use it
    /// only on cold paths (fault events, degradations, checkpoints).
    pub fn record_dyn(&self, cat: &'static str, name: String, ts_us: f64, dur_us: f64) {
        if !self.enabled {
            return;
        }
        lock(&self.buf).dyn_spans.push(DynSpan { name, cat, ts_us, dur_us });
    }

    /// Spans recorded so far (ring + dynamic).
    pub fn recorded(&self) -> usize {
        let buf = lock(&self.buf);
        buf.len + buf.dyn_spans.len()
    }
}

/// A frozen copy of one lane.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    pub pid: u32,
    pub tid: u32,
    pub process_name: String,
    pub thread_name: String,
    /// Ring spans, oldest surviving first.
    pub spans: Vec<SpanRec>,
    /// Dynamically-labelled spans, insertion order.
    pub dyn_spans: Vec<DynSpan>,
    /// Ring overwrites (0 ⇔ nothing was lost).
    pub dropped: u64,
}

/// A frozen copy of every lane, sorted by `(pid, tid)` then
/// registration order — deterministic given deterministic recording.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    pub lanes: Vec<LaneSnapshot>,
}

impl TraceSnapshot {
    /// Total spans across all lanes (ring + dynamic).
    pub fn total_spans(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len() + l.dyn_spans.len()).sum()
    }

    /// Distinct pids present, ascending.
    pub fn pids(&self) -> Vec<u32> {
        let mut pids: Vec<u32> = self.lanes.iter().map(|l| l.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }
}

/// The lane registry. See the module docs for the recording contract.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: bool,
    capacity: usize,
    epoch: Instant,
    lanes: Mutex<Vec<(LaneMeta, Arc<Mutex<LaneBuf>>)>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// An enabled recorder with the default per-lane ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// An enabled recorder with `capacity` spans per lane.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            enabled: true,
            capacity: capacity.max(1),
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// A recorder whose lanes drop every record — the compiled-in-but-
    /// off configuration (branch on a bool per record, nothing else).
    pub fn disabled() -> Self {
        TraceRecorder { enabled: false, ..Self::new() }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a `(pid, tid)` lane. `process` names the pid (shown as
    /// the Chrome process row, e.g. "rank 3"), `thread` names the tid
    /// ("compute", "comm", ...). The ring buffer is preallocated here,
    /// which is what keeps recording allocation-free.
    pub fn lane(&self, pid: u32, tid: u32, process: &str, thread: &str) -> Lane {
        let buf = Arc::new(Mutex::new(LaneBuf::with_capacity(self.capacity)));
        let meta = LaneMeta {
            pid,
            tid,
            process_name: process.to_string(),
            thread_name: thread.to_string(),
        };
        lock(&self.lanes).push((meta, Arc::clone(&buf)));
        Lane { pid, tid, enabled: self.enabled, epoch: self.epoch, buf }
    }

    /// Registered lane count.
    pub fn lane_count(&self) -> usize {
        lock(&self.lanes).len()
    }

    /// Freeze every lane (sorted by `(pid, tid)`, stable).
    pub fn snapshot(&self) -> TraceSnapshot {
        let lanes = lock(&self.lanes);
        let mut out: Vec<LaneSnapshot> = lanes
            .iter()
            .map(|(meta, buf)| {
                let b = lock(buf);
                LaneSnapshot {
                    pid: meta.pid,
                    tid: meta.tid,
                    process_name: meta.process_name.clone(),
                    thread_name: meta.thread_name.clone(),
                    spans: b.ordered(),
                    dyn_spans: b.dyn_spans.clone(),
                    dropped: b.dropped,
                }
            })
            .collect();
        out.sort_by_key(|a| (a.pid, a.tid));
        TraceSnapshot { lanes: out }
    }

    /// The snapshot as Chrome-trace events: per-pid `process_name` and
    /// per-lane `thread_name` metadata first (deduplicated, first
    /// registration wins), then every span as a complete "X" event.
    pub fn to_chrome_events(&self) -> Vec<ChromeEvent> {
        snapshot_to_chrome_events(&self.snapshot())
    }

    /// The full trace as Chrome-trace JSON (load in `chrome://tracing`
    /// or Perfetto).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::write_trace(&self.to_chrome_events())
    }
}

/// Convert a frozen snapshot into Chrome events (see
/// [`TraceRecorder::to_chrome_events`]).
pub fn snapshot_to_chrome_events(snap: &TraceSnapshot) -> Vec<ChromeEvent> {
    let mut events = Vec::new();
    let mut named_pids: Vec<u32> = Vec::new();
    let mut named_lanes: Vec<(u32, u32)> = Vec::new();
    for lane in &snap.lanes {
        if !named_pids.contains(&lane.pid) {
            named_pids.push(lane.pid);
            events.push(metadata_process_name(lane.pid, &lane.process_name));
        }
        if !named_lanes.contains(&(lane.pid, lane.tid)) {
            named_lanes.push((lane.pid, lane.tid));
            events.push(metadata_thread_name(lane.pid, lane.tid, &lane.thread_name));
        }
    }
    for lane in &snap.lanes {
        for s in &lane.spans {
            let mut ev =
                ChromeEvent::complete(s.name, s.cat, s.ts_us, s.dur_us, lane.pid, lane.tid);
            if s.a0 != 0 || s.a1 != 0 {
                ev.args = vec![("a0", s.a0), ("a1", s.a1)];
            }
            events.push(ev);
        }
        for d in &lane.dyn_spans {
            events
                .push(ChromeEvent::complete(&d.name, d.cat, d.ts_us, d.dur_us, lane.pid, lane.tid));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_record_and_snapshot_in_order() {
        let rec = TraceRecorder::new();
        let lane = rec.lane(3, 1, "rank 3", "comm");
        lane.record("SEND", "send", 10.0, 5.0);
        lane.record_args("RECV", "recv", 20.0, 2.0, 7, 64);
        let snap = rec.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        let l = &snap.lanes[0];
        assert_eq!((l.pid, l.tid), (3, 1));
        assert_eq!(l.spans.len(), 2);
        assert_eq!(l.spans[0].name, "send");
        assert_eq!(l.spans[1].a0, 7);
        assert_eq!(l.dropped, 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = TraceRecorder::with_capacity(4);
        let lane = rec.lane(0, 0, "rank 0", "compute");
        for i in 0..10u64 {
            lane.record_args("C", "tick", i as f64, 1.0, i, 0);
        }
        let snap = rec.snapshot();
        let l = &snap.lanes[0];
        assert_eq!(l.spans.len(), 4);
        assert_eq!(l.dropped, 6);
        // Oldest surviving first: ticks 6..10.
        let ids: Vec<u64> = l.spans.iter().map(|s| s.a0).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = TraceRecorder::disabled();
        let lane = rec.lane(0, 0, "rank 0", "compute");
        lane.record("C", "tick", 0.0, 1.0);
        lane.record_dyn("C", "dynamic".to_string(), 0.0, 1.0);
        assert_eq!(rec.snapshot().total_spans(), 0);
        assert_eq!(lane.recorded(), 0);
    }

    #[test]
    fn snapshot_sorts_lanes_and_collects_pids() {
        let rec = TraceRecorder::new();
        let b = rec.lane(1, 0, "rank 1", "compute");
        let a = rec.lane(0, 1, "rank 0", "comm");
        let c = rec.lane(0, 0, "rank 0", "compute");
        for lane in [&a, &b, &c] {
            lane.record("C", "x", 0.0, 1.0);
        }
        let snap = rec.snapshot();
        let keys: Vec<(u32, u32)> = snap.lanes.iter().map(|l| (l.pid, l.tid)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0)]);
        assert_eq!(snap.pids(), vec![0, 1]);
    }

    #[test]
    fn chrome_events_lead_with_deduped_metadata() {
        let rec = TraceRecorder::new();
        rec.lane(0, 0, "rank 0", "compute").record("C", "f", 0.0, 1.0);
        rec.lane(0, 1, "rank 0", "comm").record("A", "ar", 1.0, 1.0);
        let events = rec.to_chrome_events();
        let metas: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == 'M').collect();
        // One process_name for pid 0, two thread_names.
        assert_eq!(metas.len(), 3);
        assert_eq!(metas[0].name, "process_name");
        assert_eq!(events.iter().filter(|e| e.ph == 'X').count(), 2);
    }

    #[test]
    fn dyn_spans_survive_alongside_ring_spans() {
        let rec = TraceRecorder::with_capacity(2);
        let lane = rec.lane(9, 2, "faults", "faults");
        lane.record("FAULT", "inject", 1.0, 0.0);
        lane.record_dyn("FAULT", "inject drop step 3 rank 1".to_string(), 2.0, 0.0);
        let snap = rec.snapshot();
        assert_eq!(snap.total_spans(), 2);
        assert_eq!(snap.lanes[0].dyn_spans[0].name, "inject drop step 3 rank 1");
    }

    #[test]
    fn now_us_is_monotonic() {
        let rec = TraceRecorder::new();
        let lane = rec.lane(0, 0, "r", "t");
        let a = lane.now_us();
        let b = lane.now_us();
        assert!(b >= a && a >= 0.0);
    }
}
