//! The critical-path analyzer: turns a multi-rank Chrome trace into
//! the numbers the paper's tuning argument is made of.
//!
//! Everything is computed as **interval unions**, never span sums: a
//! phase whose spans overlap (64 ranks all inside `MPI_ALLREDUCE` at
//! once, or nested cycle spans) contributes its covered wall-clock
//! time exactly once. That is the fix for the old
//! `Timeline::total` double-counting, and it is what makes
//! "allreduce fraction of the step" a quantity that can be compared
//! between configs.
//!
//! The analyzer consumes `&[ChromeEvent]` so all three producers
//! converge on it: the live [`crate::span::TraceRecorder`], the
//! simulated `horovod::Timeline` (via its Chrome shim), and
//! [`crate::chrome::parse_trace`] on a trace file read back from disk.

use crate::chrome::ChromeEvent;
use std::fmt::Write as _;

/// Categories counted as computation.
pub const COMPUTE_CATS: &[&str] = &["FORWARD", "BACKWARD", "OPTIMIZER"];

/// Categories counted as communication (Horovod phases plus the
/// executor's wire-level spans).
pub const COMM_CATS: &[&str] =
    &["NEGOTIATE_ALLREDUCE", "MEMCPY_IN_FUSION_BUFFER", "MPI_ALLREDUCE", "SEND", "RECV", "RETRY"];

/// Merge `(start, end)` intervals in place and return them sorted and
/// disjoint.
fn merged(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn union_len(merged: &[(f64, f64)]) -> f64 {
    merged.iter().map(|&(s, e)| e - s).sum()
}

/// The per-rank lateness model: each value minus the minimum (the
/// fastest rank defines zero; everyone else's excess is what the
/// straggler hunt ranks by). Shared between this offline analyzer
/// (values = per-rank finish times) and the live cluster view in
/// [`crate::cluster`] (values = per-rank step-latency EWMAs). Empty
/// input yields empty output; non-finite values yield lateness 0 for
/// themselves without poisoning the minimum.
pub fn lateness_from(values: &[f64]) -> Vec<f64> {
    let min = values.iter().copied().filter(|v| v.is_finite()).fold(f64::INFINITY, f64::min);
    values
        .iter()
        .map(|&v| if v.is_finite() && min.is_finite() { (v - min).max(0.0) } else { 0.0 })
        .collect()
}

/// Total overlap between two merged interval lists.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// One phase (category) of the breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    pub cat: String,
    /// Union of the phase's spans across all ranks — wall-clock time
    /// during which *some* rank was in this phase.
    pub busy_us: f64,
    /// Plain sum of span durations (rank-seconds; ≥ `busy_us`).
    pub span_sum_us: f64,
    pub spans: usize,
    /// Wall-clock time this phase ran concurrently with the *opposite*
    /// class: comm phases report overlap with compute and vice versa
    /// (0 for categories in neither class). For `MPI_ALLREDUCE` this is
    /// the per-phase number the layer-pipelined executor exists to
    /// raise — reduction hidden behind someone's backprop.
    pub overlap_us: f64,
}

impl PhaseStat {
    /// `overlap_us` as a fraction of this phase's busy time.
    pub fn overlap_fraction(&self) -> f64 {
        if self.busy_us > 0.0 {
            self.overlap_us / self.busy_us
        } else {
            0.0
        }
    }
}

/// Per-rank attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStat {
    pub pid: u32,
    /// Union of this rank's compute-category spans.
    pub compute_busy_us: f64,
    /// Union of this rank's comm-category spans.
    pub comm_busy_us: f64,
    /// When this rank's last span ended (relative to trace start).
    pub finish_us: f64,
    /// `finish_us` minus the earliest rank's finish — how long the
    /// others would have waited on this rank at a barrier.
    pub lateness_us: f64,
}

/// The analyzer's report.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Trace extent: last span end minus first span start.
    pub wall_us: f64,
    /// Per-category stats, sorted by `busy_us` descending (name
    /// breaks ties) — deterministic.
    pub phases: Vec<PhaseStat>,
    /// Per-rank stats, sorted by pid.
    pub ranks: Vec<RankStat>,
    /// Union of all comm-category spans across ranks.
    pub comm_busy_us: f64,
    /// Union of all compute-category spans across ranks.
    pub compute_busy_us: f64,
    /// Wall-clock time when comm and compute ran concurrently — the
    /// overlap Horovod's background cycle exists to create.
    pub overlap_us: f64,
    /// Bytes that actually crossed the wire: sum of the `a1` argument
    /// over `SEND` spans (both executors record the *encoded* payload
    /// size there, so a gradient codec shows up here directly).
    pub wire_bytes: u64,
    /// The rank with the largest lateness, when there is a spread.
    pub straggler: Option<u32>,
}

impl Breakdown {
    /// Busy time of one category (0 if absent).
    pub fn phase_busy(&self, cat: &str) -> f64 {
        self.phases.iter().find(|p| p.cat == cat).map_or(0.0, |p| p.busy_us)
    }

    /// Busy time of `cat` as a fraction of the trace extent.
    pub fn phase_fraction(&self, cat: &str) -> f64 {
        if self.wall_us > 0.0 {
            self.phase_busy(cat) / self.wall_us
        } else {
            0.0
        }
    }

    /// The paper's headline number: fraction of the run during which
    /// some rank sat in `MPI_ALLREDUCE`.
    pub fn allreduce_fraction(&self) -> f64 {
        self.phase_fraction("MPI_ALLREDUCE")
    }

    /// Effective wire bandwidth: encoded bytes sent per second of
    /// comm-busy wall clock (0 when nothing was sent or timed).
    pub fn wire_bw_bytes_per_s(&self) -> f64 {
        if self.comm_busy_us > 0.0 {
            self.wire_bytes as f64 / (self.comm_busy_us * 1e-6)
        } else {
            0.0
        }
    }

    /// The human-readable breakdown table the experiment binary
    /// prints.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>8} {:>8} {:>10}",
            "phase", "busy (ms)", "% wall", "spans", "% overlap"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<26} {:>12.3} {:>7.1}% {:>8} {:>9.1}%",
                p.cat,
                p.busy_us / 1e3,
                100.0 * self.phase_fraction(&p.cat),
                p.spans,
                100.0 * p.overlap_fraction(),
            );
        }
        let _ = writeln!(
            out,
            "wall {:.3} ms | comm busy {:.3} ms | compute busy {:.3} ms | overlap {:.3} ms",
            self.wall_us / 1e3,
            self.comm_busy_us / 1e3,
            self.compute_busy_us / 1e3,
            self.overlap_us / 1e3,
        );
        if self.wire_bytes > 0 {
            let _ = writeln!(
                out,
                "wire {} B sent | {:.1} MB/s effective",
                self.wire_bytes,
                self.wire_bw_bytes_per_s() / 1e6,
            );
        }
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "rank {:<3} compute {:>10.3} ms  comm {:>10.3} ms  finish {:>10.3} ms  late {:>8.3} ms{}",
                r.pid,
                r.compute_busy_us / 1e3,
                r.comm_busy_us / 1e3,
                r.finish_us / 1e3,
                r.lateness_us / 1e3,
                if self.straggler == Some(r.pid) { "  <- straggler" } else { "" },
            );
        }
        out
    }
}

/// Analyze a Chrome trace. Only complete (`ph == 'X'`) events are
/// considered; timestamps are shifted so the trace starts at 0.
pub fn analyze(events: &[ChromeEvent]) -> Breakdown {
    let spans: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == 'X').collect();
    if spans.is_empty() {
        return Breakdown {
            wall_us: 0.0,
            phases: Vec::new(),
            ranks: Vec::new(),
            comm_busy_us: 0.0,
            compute_busy_us: 0.0,
            overlap_us: 0.0,
            wire_bytes: 0,
            straggler: None,
        };
    }
    let t0 = spans.iter().map(|e| e.ts_us).fold(f64::INFINITY, f64::min);
    let t_end = spans.iter().map(|e| e.ts_us + e.dur_us).fold(f64::NEG_INFINITY, f64::max);

    // Per-category intervals (global) and per-rank comm/compute.
    // (category, intervals, span-duration sum, span count) per cat.
    type CatAcc = (String, Vec<(f64, f64)>, f64, usize);
    let mut cats: Vec<CatAcc> = Vec::new();
    let mut rank_ids: Vec<u32> = spans.iter().map(|e| e.pid).collect();
    rank_ids.sort_unstable();
    rank_ids.dedup();
    let mut rank_comm: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rank_ids.len()];
    let mut rank_compute: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rank_ids.len()];
    let mut rank_finish: Vec<f64> = vec![0.0; rank_ids.len()];

    for e in &spans {
        let (s, end) = (e.ts_us - t0, e.ts_us - t0 + e.dur_us);
        match cats.iter_mut().find(|(c, ..)| *c == e.cat) {
            Some((_, iv, sum, n)) => {
                iv.push((s, end));
                *sum += e.dur_us;
                *n += 1;
            }
            None => cats.push((e.cat.clone(), vec![(s, end)], e.dur_us, 1)),
        }
        let r = rank_ids.binary_search(&e.pid).unwrap_or(0);
        if COMM_CATS.contains(&e.cat.as_str()) {
            rank_comm[r].push((s, end));
        } else if COMPUTE_CATS.contains(&e.cat.as_str()) {
            rank_compute[r].push((s, end));
        }
        rank_finish[r] = rank_finish[r].max(end);
    }

    // Global comm/compute unions and their overlap.
    let all_comm = merged(rank_comm.iter().flatten().copied().collect());
    let all_compute = merged(rank_compute.iter().flatten().copied().collect());
    let overlap_us = intersection_len(&all_comm, &all_compute);

    let mut phases: Vec<PhaseStat> = cats
        .into_iter()
        .map(|(cat, iv, span_sum_us, spans)| {
            let iv = merged(iv);
            let overlap_us = if COMM_CATS.contains(&cat.as_str()) {
                intersection_len(&iv, &all_compute)
            } else if COMPUTE_CATS.contains(&cat.as_str()) {
                intersection_len(&iv, &all_comm)
            } else {
                0.0
            };
            PhaseStat { cat, busy_us: union_len(&iv), span_sum_us, spans, overlap_us }
        })
        .collect();
    phases.sort_by(|a, b| {
        b.busy_us
            .partial_cmp(&a.busy_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cat.cmp(&b.cat))
    });

    let lateness = lateness_from(&rank_finish);
    let ranks: Vec<RankStat> = rank_ids
        .iter()
        .enumerate()
        .map(|(i, &pid)| RankStat {
            pid,
            compute_busy_us: union_len(&merged(rank_compute[i].clone())),
            comm_busy_us: union_len(&merged(rank_comm[i].clone())),
            finish_us: rank_finish[i],
            lateness_us: lateness[i],
        })
        .collect();
    let straggler = ranks
        .iter()
        .max_by(|a, b| {
            a.lateness_us.partial_cmp(&b.lateness_us).unwrap_or(std::cmp::Ordering::Equal)
        })
        .filter(|r| r.lateness_us > 0.0)
        .map(|r| r.pid);

    let wire_bytes = spans
        .iter()
        .filter(|e| e.cat == "SEND")
        .flat_map(|e| e.args.iter().filter(|(k, _)| *k == "a1").map(|&(_, v)| v))
        .sum();

    Breakdown {
        wall_us: t_end - t0,
        phases,
        ranks,
        comm_busy_us: union_len(&all_comm),
        compute_busy_us: union_len(&all_compute),
        overlap_us,
        wire_bytes,
        straggler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeEvent;

    fn span(cat: &str, ts: f64, dur: f64, pid: u32) -> ChromeEvent {
        ChromeEvent::complete("s", cat, ts, dur, pid, 0)
    }

    #[test]
    fn busy_time_is_union_not_sum() {
        // Two overlapping allreduce spans on different ranks: 0-10 and
        // 5-15 cover 15 µs of wall clock, not 20.
        let b =
            analyze(&[span("MPI_ALLREDUCE", 0.0, 10.0, 0), span("MPI_ALLREDUCE", 5.0, 10.0, 1)]);
        let p = &b.phases[0];
        assert!((p.busy_us - 15.0).abs() < 1e-9);
        assert!((p.span_sum_us - 20.0).abs() < 1e-9);
        assert_eq!(p.spans, 2);
        assert!((b.allreduce_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_counts_concurrent_comm_and_compute() {
        // Compute 0-10, comm 6-16 → 4 µs of overlap.
        let b = analyze(&[span("FORWARD", 0.0, 10.0, 0), span("MPI_ALLREDUCE", 6.0, 10.0, 0)]);
        assert!((b.overlap_us - 4.0).abs() < 1e-9);
        assert!((b.comm_busy_us - 10.0).abs() < 1e-9);
        assert!((b.compute_busy_us - 10.0).abs() < 1e-9);
        assert!((b.wall_us - 16.0).abs() < 1e-9);
    }

    #[test]
    fn per_phase_overlap_pairs_each_class_with_the_other() {
        // Compute (FORWARD 0-10, BACKWARD 20-30), comm allreduce 6-24:
        // the allreduce overlaps compute for 4 + 4 = 8 µs; each compute
        // phase overlaps comm for its 4 µs share.
        let b = analyze(&[
            span("FORWARD", 0.0, 10.0, 0),
            span("BACKWARD", 20.0, 10.0, 0),
            span("MPI_ALLREDUCE", 6.0, 18.0, 1),
        ]);
        let get = |cat: &str| b.phases.iter().find(|p| p.cat == cat).expect("phase");
        assert!((get("MPI_ALLREDUCE").overlap_us - 8.0).abs() < 1e-9);
        assert!((get("FORWARD").overlap_us - 4.0).abs() < 1e-9);
        assert!((get("BACKWARD").overlap_us - 4.0).abs() < 1e-9);
        assert!((get("MPI_ALLREDUCE").overlap_fraction() - 8.0 / 18.0).abs() < 1e-9);
        // A category in neither class reports no overlap.
        let other = analyze(&[span("CHECKPOINT", 0.0, 5.0, 0), span("FORWARD", 0.0, 5.0, 0)]);
        assert_eq!(other.phases.iter().find(|p| p.cat == "CHECKPOINT").expect("p").overlap_us, 0.0);
        // The table shows the new column.
        assert!(b.table().contains("% overlap"), "{}", b.table());
    }

    #[test]
    fn wire_ledger_sums_send_span_bytes() {
        let mut a = span("SEND", 0.0, 5.0, 0);
        a.args = vec![("a0", 1), ("a1", 4096)];
        let mut b = span("SEND", 5.0, 5.0, 1);
        b.args = vec![("a0", 0), ("a1", 1024)];
        // RECV args and arg-less SENDs do not count.
        let mut c = span("RECV", 0.0, 5.0, 1);
        c.args = vec![("a0", 0), ("a1", 9999)];
        let d = span("SEND", 10.0, 5.0, 0);
        let brk = analyze(&[a, b, c, d]);
        assert_eq!(brk.wire_bytes, 5120);
        // 15 µs of comm busy time → effective bandwidth.
        assert!((brk.wire_bw_bytes_per_s() - 5120.0 / 15e-6).abs() < 1.0);
        assert!(brk.table().contains("5120 B sent"), "{}", brk.table());
        // No sends → no wire line in the table.
        let none = analyze(&[span("FORWARD", 0.0, 5.0, 0)]);
        assert_eq!(none.wire_bytes, 0);
        assert!(!none.table().contains("B sent"));
    }

    #[test]
    fn straggler_is_the_latest_finishing_rank() {
        let b = analyze(&[
            span("FORWARD", 0.0, 10.0, 0),
            span("FORWARD", 0.0, 10.0, 1),
            span("FORWARD", 0.0, 17.0, 2),
        ]);
        assert_eq!(b.straggler, Some(2));
        let r2 = b.ranks.iter().find(|r| r.pid == 2).expect("rank 2");
        assert!((r2.lateness_us - 7.0).abs() < 1e-9);
        // Identical finishes → no straggler.
        let even = analyze(&[span("FORWARD", 0.0, 5.0, 0), span("FORWARD", 0.0, 5.0, 1)]);
        assert_eq!(even.straggler, None);
    }

    #[test]
    fn metadata_events_are_ignored_and_empty_is_zero() {
        let b = analyze(&[crate::chrome::metadata_process_name(0, "rank 0")]);
        assert_eq!(b.wall_us, 0.0);
        assert!(b.phases.is_empty() && b.ranks.is_empty());
    }

    #[test]
    fn table_renders_every_phase_and_rank() {
        let b = analyze(&[span("FORWARD", 0.0, 10.0, 0), span("MPI_ALLREDUCE", 10.0, 5.0, 1)]);
        let t = b.table();
        assert!(t.contains("FORWARD") && t.contains("MPI_ALLREDUCE"), "{t}");
        assert!(t.contains("rank 0") && t.contains("rank 1"), "{t}");
        assert!(t.contains("% wall"), "{t}");
    }
}
