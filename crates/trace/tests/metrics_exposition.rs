//! Histogram bucket-boundary behavior (zero, subnormal, huge) and a
//! golden snapshot of both exposition formats — the contract dashboards
//! and diffing scripts depend on.

use trace::cluster::{ClusterView, StragglerPolicy};
use trace::metrics::{bucket_for, bucket_le, BUCKETS, MAX_EXP, MIN_EXP};
use trace::telemetry::{metric, FlightEvent, TelemetrySnapshot};
use trace::Registry;

#[test]
fn zero_and_negative_land_in_the_zero_bucket() {
    assert_eq!(bucket_for(0.0), 0);
    assert_eq!(bucket_for(-0.0), 0);
    // Negative durations are caller bugs; they stay visible in the
    // zero bucket instead of panicking or skewing a binade.
    assert_eq!(bucket_for(-1.0), 0);
    assert_eq!(bucket_for(f64::NEG_INFINITY), BUCKETS - 1, "NaN/inf rule wins over sign");
    assert_eq!(bucket_le(0), 0.0);
}

#[test]
fn subnormals_and_tiny_values_land_in_the_underflow_bucket() {
    let smallest_subnormal = f64::from_bits(1);
    let largest_subnormal = f64::from_bits((1u64 << 52) - 1);
    assert_eq!(bucket_for(smallest_subnormal), 1);
    assert_eq!(bucket_for(largest_subnormal), 1);
    assert_eq!(bucket_for(f64::MIN_POSITIVE), 1, "smallest normal is still far below 2^MIN_EXP");
    // The underflow boundary itself is inclusive: v <= 2^MIN_EXP.
    let lo = 2f64.powi(MIN_EXP);
    assert_eq!(bucket_for(lo), 1);
    assert_eq!(bucket_for(lo * (1.0 + f64::EPSILON)), 2, "just above the boundary starts binades");
    assert_eq!(bucket_le(1), lo);
}

#[test]
fn exact_powers_of_two_sit_at_their_own_upper_bound() {
    // An exact 2^e must satisfy v <= le of its bucket with equality,
    // not round up a binade.
    for e in (MIN_EXP + 1)..=MAX_EXP {
        let v = 2f64.powi(e);
        let b = bucket_for(v);
        assert_eq!(bucket_le(b), v, "2^{e} lands at its own boundary");
        assert_eq!(bucket_for(v * (1.0 + f64::EPSILON)), b + 1, "nudging past 2^{e} moves up");
    }
    assert_eq!(bucket_for(1.0), bucket_for(0.75), "1.0 shares the (0.5, 1] binade");
}

#[test]
fn huge_values_saturate_in_the_overflow_bucket() {
    let top = 2f64.powi(MAX_EXP);
    assert_ne!(bucket_for(top), BUCKETS - 1, "2^MAX_EXP itself is still bucketed");
    assert_eq!(bucket_for(top * (1.0 + f64::EPSILON)), BUCKETS - 1);
    assert_eq!(bucket_for(1e300), BUCKETS - 1);
    assert_eq!(bucket_for(f64::MAX), BUCKETS - 1);
    assert_eq!(bucket_for(f64::INFINITY), BUCKETS - 1);
    assert_eq!(bucket_for(f64::NAN), BUCKETS - 1);
    assert_eq!(bucket_le(BUCKETS - 1), f64::INFINITY);
}

#[test]
fn every_value_falls_inside_its_bucket_bounds() {
    let samples =
        [1e-12, 3e-10, 1e-6, 0.001, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 1000.0, 1e6, 8.5e9, 1e10];
    for v in samples {
        let b = bucket_for(v);
        assert!(v <= bucket_le(b), "{v} must sit at or below its bucket's le");
        if b > 1 {
            assert!(v > bucket_le(b - 1), "{v} must sit above the previous bucket's le");
        }
    }
}

/// The golden snapshot: a small registry with one counter, one gauge
/// and one histogram must serialize to exactly these bytes. Any format
/// drift (label spelling, float rendering, row truncation) fails here
/// first, on a diffable string.
#[test]
fn exposition_formats_match_golden_snapshot() {
    let reg = Registry::new();
    reg.counter("train_steps_total").add(4);
    reg.gauge("train_last_loss").set(0.25);
    let h = reg.histogram("step_seconds");
    h.observe(0.0); // zero bucket
    h.observe(2e-10); // underflow bucket (below 2^-30)
    let snap = reg.snapshot();

    let golden_text = "\
# TYPE train_steps_total counter
train_steps_total 4
# TYPE train_last_loss gauge
train_last_loss 0.25
# TYPE step_seconds histogram
step_seconds_bucket{le=\"0e0\"} 1
step_seconds_bucket{le=\"9.313225746154785e-10\"} 2
step_seconds_bucket{le=\"+Inf\"} 2
step_seconds_sum 0.0000000002
step_seconds_count 2
";
    assert_eq!(snap.to_prometheus_text(), golden_text);

    let golden_json = "{\"counters\":{\"train_steps_total\":4},\
\"gauges\":{\"train_last_loss\":0.25},\
\"histograms\":{\"step_seconds\":{\"count\":2,\"sum\":0.0000000002,\
\"buckets\":[[\"0e0\",1],[\"9.313225746154785e-10\",2],[\"+Inf\",2]]}}}";
    assert_eq!(snap.to_json(), golden_json);
}

// ----------------------------------------------- cluster exposition

fn snapshot(rank: u16, step: u32, seq: u64, metrics: Vec<(u16, u64)>) -> TelemetrySnapshot {
    TelemetrySnapshot { rank, current_step: step, seq, metrics, flight_dropped: 0, flight: vec![] }
}

/// The aggregated scrape: two ranks with different step latencies
/// (rank 1 is 2000us behind) plus one out-of-schema id must serialize
/// to exactly these bytes. Rank labels, series order, TYPE lines, and
/// float rendering are all pinned — dashboards parse this.
#[test]
fn cluster_prometheus_text_matches_golden_snapshot() {
    let mut view = ClusterView::new(StragglerPolicy::default());
    view.ingest(snapshot(
        0,
        5,
        9,
        vec![(metric::STEPS_COMMITTED, 4), (metric::STEP_LATENCY_US, 1000), (42, 7)],
    ));
    view.ingest(snapshot(
        1,
        5,
        3,
        vec![(metric::STEPS_COMMITTED, 4), (metric::STEP_LATENCY_US, 3000)],
    ));

    let golden = "\
# TYPE train_steps_committed_total counter
train_steps_committed_total{rank=\"0\"} 4
train_steps_committed_total{rank=\"1\"} 4
# TYPE train_step_latency_us gauge
train_step_latency_us{rank=\"0\"} 1000
train_step_latency_us{rank=\"1\"} 3000
# TYPE telemetry_metric_42 gauge
telemetry_metric_42{rank=\"0\"} 7
# TYPE train_current_step gauge
train_current_step{rank=\"0\"} 5
train_current_step{rank=\"1\"} 5
# TYPE train_straggler_lateness_us gauge
train_straggler_lateness_us{rank=\"0\"} 0
train_straggler_lateness_us{rank=\"1\"} 2000
# TYPE cluster_ranks_total gauge
cluster_ranks_total 2
# TYPE cluster_ranks_alive gauge
cluster_ranks_alive 2
";
    assert_eq!(view.to_prometheus_text(), golden);
}

/// The JSON twin of the scrape, same fixture.
#[test]
fn cluster_json_matches_golden_snapshot() {
    let mut view = ClusterView::new(StragglerPolicy::default());
    view.ingest(snapshot(
        0,
        5,
        9,
        vec![(metric::STEPS_COMMITTED, 4), (metric::STEP_LATENCY_US, 1000), (42, 7)],
    ));
    view.ingest(snapshot(
        1,
        5,
        3,
        vec![(metric::STEPS_COMMITTED, 4), (metric::STEP_LATENCY_US, 3000)],
    ));

    let golden = "{\"ranks\":{\
\"0\":{\"alive\":true,\"current_step\":5,\"seq\":9,\"ewma_step_us\":1000,\"lateness_us\":0,\"flight_dropped\":0,\
\"metrics\":{\"train_steps_committed_total\":4,\"train_step_latency_us\":1000,\"telemetry_metric_42\":7}},\
\"1\":{\"alive\":true,\"current_step\":5,\"seq\":3,\"ewma_step_us\":3000,\"lateness_us\":2000,\"flight_dropped\":0,\
\"metrics\":{\"train_steps_committed_total\":4,\"train_step_latency_us\":3000}}},\
\"cluster\":{\"ranks_total\":2,\"ranks_alive\":2}}";
    assert_eq!(view.to_json(), golden);
}

/// The crash flight record for a dead rank: alive flips to false, the
/// last step and flight tail are preserved, labels are escaped.
#[test]
fn flight_json_matches_golden_snapshot() {
    let mut view = ClusterView::new(StragglerPolicy::default());
    let mut snap = snapshot(2, 7, 11, vec![(metric::STEPS_COMMITTED, 7)]);
    snap.flight.push(FlightEvent {
        cat: "MPI_ALLREDUCE".into(),
        name: "exchange".into(),
        step: 7,
        ts_us: 123,
        dur_us: 45,
        a0: 0,
    });
    view.ingest(snap);
    view.mark_dead(2);

    let golden = "{
  \"rank\": 2,
  \"alive\": false,
  \"last_step\": 7,
  \"seq\": 11,
  \"flight_dropped\": 0,
  \"metrics\": {
    \"train_steps_committed_total\": 7
  },
  \"flight\": [
    {\"cat\": \"MPI_ALLREDUCE\", \"name\": \"exchange\", \"step\": 7, \"ts_us\": 123, \"dur_us\": 45, \"a0\": 0}
  ]
}
";
    assert_eq!(view.flight_json(2).as_deref(), Some(golden));
    assert_eq!(view.flight_json(3), None, "never-heard-from ranks have no post-mortem");
}
