//! Adversarial property tests for the telemetry snapshot codec:
//! arbitrary worker state must roundtrip exactly, and arbitrary
//! garbage, truncations, bit flips, and version skew must come back as
//! clean `TelemetryError`s — never a panic, never a bogus snapshot
//! that claims to be well-formed. Mirrors the wire-frame suite in
//! `transport/tests/frame_proptests.rs`.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use trace::telemetry::{decode, metric, TelemetryError, WorkerTelemetry, TELEMETRY_VERSION};

/// Labels from arbitrary bytes (lossily decoded, so multi-byte
/// replacement chars exercise the UTF-8-boundary truncation).
fn label_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255, 0..24).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// `(cat, name, step, dur_us, a0)` — one flight span's worth of input.
type Span = (String, String, u32, u32, u64);

fn span_strategy() -> impl Strategy<Value = Span> {
    (label_strategy(), label_strategy(), 0u32..=u32::MAX, 0u32..=u32::MAX, 0u64..=u64::MAX)
}

/// Arbitrary worker telemetry state: rank, step, one value per metric
/// slot, and a pile of flight spans (more than the ring holds).
fn state_strategy() -> impl Strategy<Value = (u16, u32, Vec<u64>, Vec<Span>)> {
    (
        0u16..=u16::MAX,
        0u32..=u32::MAX,
        prop::collection::vec(0u64..=u64::MAX, metric::COUNT),
        prop::collection::vec(span_strategy(), 0..48),
    )
}

fn build(rank: u16, step: u32, values: &[u64], spans: &[Span]) -> WorkerTelemetry {
    let tel = WorkerTelemetry::new(rank);
    tel.begin_step(step);
    for (id, &v) in values.iter().enumerate() {
        tel.set(id as u16, v);
    }
    for (cat, name, s, dur, a0) in spans {
        tel.flight(cat, name, *s, *dur, *a0);
    }
    tel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever state a worker accumulates, its own encoding decodes
    /// back to exactly that state (modulo the bounded flight ring).
    #[test]
    fn roundtrip_is_identity((rank, step, values, spans) in state_strategy()) {
        let tel = build(rank, step, &values, &spans);
        let mut buf = Vec::new();
        let seq = tel.encode_into(&mut buf);
        let snap = decode(&buf).expect("own encoding must decode");
        prop_assert_eq!(snap.rank, rank);
        prop_assert_eq!(snap.current_step, step);
        prop_assert_eq!(snap.seq, seq);
        for (id, &v) in values.iter().enumerate() {
            prop_assert_eq!(snap.metric(id as u16), Some(v));
        }
        // The ring keeps the most recent spans; what survived must
        // match the tail of what went in, field for field.
        let kept = snap.flight.len();
        prop_assert!(kept <= spans.len());
        for (ev, (_, _, s, dur, a0)) in snap.flight.iter().zip(&spans[spans.len() - kept..]) {
            prop_assert_eq!(ev.step, *s);
            prop_assert_eq!(ev.dur_us, *dur);
            prop_assert_eq!(ev.a0, *a0);
        }
        prop_assert_eq!(snap.flight_dropped as usize, spans.len() - kept);
    }

    /// Every proper prefix of a valid encoding is rejected cleanly —
    /// a snapshot is all-or-nothing.
    #[test]
    fn truncation_never_decodes((rank, step, values, spans) in state_strategy(), cut in 0usize..1 << 20) {
        let tel = build(rank, step, &values, &spans);
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        let at = cut % buf.len(); // always a proper prefix
        prop_assert!(decode(&buf[..at]).is_err(), "prefix of {} bytes decoded", at);
    }

    /// A single flipped bit must never panic the decoder. (It may
    /// still decode — telemetry rides CRC-tailed frames, so corruption
    /// is caught a layer below — but the codec itself stays total.)
    #[test]
    fn bit_flips_never_panic(
        (rank, step, values, spans) in state_strategy(),
        pos in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let tel = build(rank, step, &values, &spans);
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        let at = pos % buf.len();
        buf[at] ^= 1 << bit;
        let _ = decode(&buf);
    }

    /// A snapshot from a future (or garbage) version is refused by
    /// version, before any field is trusted.
    #[test]
    fn version_skew_is_refused(
        (rank, step, values, spans) in state_strategy(),
        skew in 0u8..=255,
    ) {
        prop_assume!(skew != TELEMETRY_VERSION);
        let tel = build(rank, step, &values, &spans);
        let mut buf = Vec::new();
        tel.encode_into(&mut buf);
        buf[0] = skew;
        prop_assert_eq!(decode(&buf), Err(TelemetryError::BadVersion(skew)));
    }

    /// Decoding arbitrary bytes is total: an error or a snapshot,
    /// never a panic, and trailing garbage is never silently eaten.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = decode(&bytes);
        // Appending a byte to anything that decoded must trip the
        // exact-consumption check.
        if decode(&bytes).is_ok() {
            let mut longer = bytes.clone();
            longer.push(0);
            prop_assert_eq!(decode(&longer), Err(TelemetryError::TrailingBytes(1)));
        }
    }
}
