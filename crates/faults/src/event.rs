//! Structured fault events: what the chaos machinery observed and did.
//!
//! Events split into a **deterministic core** — plan-driven injections
//! and confirmed topology changes, identical on every replay of the
//! same seed — and **timing-dependent recovery noise** (spurious
//! timeouts, duplicate deliveries) that depends on OS scheduling. The
//! chaos suite asserts equality on the former
//! ([`FaultEvent::is_deterministic`]) and only sanity bounds on the
//! latter.

use std::fmt;
use std::time::Instant;

use parking_lot::Mutex;

use crate::plan::FaultKind;

/// One observed fault or recovery action. `rank` fields are original
/// (world) rank ids throughout.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// A plan injection actually fired.
    Injected { step: usize, rank: usize, round: usize, kind: FaultKind },
    /// A receive deadline expired; a resend request (NACK) was sent.
    RetryTimeout { step: usize, rank: usize, peer: usize, round: usize, attempt: u32 },
    /// A payload failed its CRC check and was rejected.
    CrcReject { step: usize, rank: usize, peer: usize, round: usize, seq: u64 },
    /// A sender re-sent a buffered payload in answer to a NACK.
    Resend { step: usize, rank: usize, peer: usize, seq: u64 },
    /// A duplicate delivery (already-applied sequence number) was
    /// discarded idempotently.
    DuplicateDropped { step: usize, rank: usize, peer: usize, seq: u64 },
    /// A rank gave up on a peer and declared it dead.
    PeerDead { step: usize, rank: usize, peer: usize, round: usize },
    /// The elastic layer rebuilt the collective over the survivors.
    Degraded { step: usize, dead: Vec<usize>, new_world: usize },
    /// The trainer wrote a checkpoint after `step`.
    CheckpointSave { step: usize },
    /// The trainer resumed from a checkpoint at `step`.
    CheckpointRestore { step: usize },
}

impl FaultEvent {
    /// True for events that must replay identically from the same seed:
    /// injections, confirmed deaths, degradations, and checkpoint
    /// lifecycle. Timeout/resend/duplicate noise is timing-dependent.
    pub fn is_deterministic(&self) -> bool {
        matches!(
            self,
            FaultEvent::Injected { .. }
                | FaultEvent::PeerDead { .. }
                | FaultEvent::Degraded { .. }
                | FaultEvent::CheckpointSave { .. }
                | FaultEvent::CheckpointRestore { .. }
        )
    }

    /// Short stable category name for counters/timelines.
    pub fn name(&self) -> &'static str {
        match self {
            FaultEvent::Injected { kind, .. } => kind.name(),
            FaultEvent::RetryTimeout { .. } => "retry-timeout",
            FaultEvent::CrcReject { .. } => "crc-reject",
            FaultEvent::Resend { .. } => "resend",
            FaultEvent::DuplicateDropped { .. } => "duplicate-dropped",
            FaultEvent::PeerDead { .. } => "peer-dead",
            FaultEvent::Degraded { .. } => "degraded",
            FaultEvent::CheckpointSave { .. } => "checkpoint-save",
            FaultEvent::CheckpointRestore { .. } => "checkpoint-restore",
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Injected { step, rank, round, kind } => {
                write!(f, "inject {} step {step} rank {rank} round {round}", kind.name())
            }
            FaultEvent::RetryTimeout { step, rank, peer, round, attempt } => write!(
                f,
                "timeout step {step} rank {rank} waiting on {peer} round {round} attempt {attempt}"
            ),
            FaultEvent::CrcReject { step, rank, peer, round, seq } => {
                write!(f, "crc-reject step {step} rank {rank} from {peer} round {round} seq {seq}")
            }
            FaultEvent::Resend { step, rank, peer, seq } => {
                write!(f, "resend step {step} rank {rank} -> {peer} seq {seq}")
            }
            FaultEvent::DuplicateDropped { step, rank, peer, seq } => {
                write!(f, "dup-dropped step {step} rank {rank} from {peer} seq {seq}")
            }
            FaultEvent::PeerDead { step, rank, peer, round } => {
                write!(f, "peer-dead step {step} rank {rank} declares {peer} round {round}")
            }
            FaultEvent::Degraded { step, dead, new_world } => {
                write!(f, "degraded step {step} dead {dead:?} new world {new_world}")
            }
            FaultEvent::CheckpointSave { step } => write!(f, "checkpoint-save step {step}"),
            FaultEvent::CheckpointRestore { step } => write!(f, "checkpoint-restore step {step}"),
        }
    }
}

/// An event plus when it was observed (seconds since the log was
/// created) — enough to render a Horovod-timeline lane of fault
/// activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped {
    pub t: f64,
    pub event: FaultEvent,
}

/// A thread-safe, timestamped append-only event log.
#[derive(Debug)]
pub struct EventLog {
    start: Instant,
    events: Mutex<Vec<Stamped>>,
}

impl EventLog {
    pub fn new() -> Self {
        EventLog { start: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    pub fn push(&self, event: FaultEvent) {
        let t = self.start.elapsed().as_secs_f64();
        self.events.lock().push(Stamped { t, event });
    }

    /// Every event observed so far, in arrival order.
    pub fn snapshot(&self) -> Vec<Stamped> {
        self.events.lock().clone()
    }

    /// The deterministic core, stripped of timestamps — the part a
    /// replay from the same seed must reproduce exactly. Sorted into a
    /// canonical order so concurrent arrival order doesn't matter.
    ///
    /// `PeerDead` needs one normalization: *which* rank declares *which*
    /// peer dead at *which step* replays exactly (the abort cascade is
    /// schedule-driven), but the `round` a survivor happens to be in
    /// when it notices a cascading hang-up depends on how many of the
    /// aborting peer's in-flight messages drained first — real thread
    /// timing. The core zeroes that field; the raw [`snapshot`] keeps
    /// the observed round for diagnostics.
    ///
    /// [`snapshot`]: EventLog::snapshot
    pub fn deterministic_core(&self) -> Vec<FaultEvent> {
        let mut core: Vec<FaultEvent> = self
            .events
            .lock()
            .iter()
            .filter(|s| s.event.is_deterministic())
            .map(|s| match &s.event {
                FaultEvent::PeerDead { step, rank, peer, .. } => {
                    FaultEvent::PeerDead { step: *step, rank: *rank, peer: *peer, round: 0 }
                }
                other => other.clone(),
            })
            .collect();
        core.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        core
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_orders_and_stamps() {
        let log = EventLog::new();
        log.push(FaultEvent::CheckpointSave { step: 1 });
        log.push(FaultEvent::RetryTimeout { step: 0, rank: 1, peer: 2, round: 3, attempt: 1 });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].t <= snap[1].t);
        assert_eq!(snap[0].event, FaultEvent::CheckpointSave { step: 1 });
    }

    #[test]
    fn deterministic_core_filters_noise() {
        let log = EventLog::new();
        log.push(FaultEvent::RetryTimeout { step: 0, rank: 0, peer: 1, round: 0, attempt: 1 });
        log.push(FaultEvent::Degraded { step: 2, dead: vec![1], new_world: 3 });
        log.push(FaultEvent::DuplicateDropped { step: 0, rank: 0, peer: 1, seq: 4 });
        log.push(FaultEvent::Injected { step: 0, rank: 1, round: 0, kind: FaultKind::Crash });
        let core = log.deterministic_core();
        assert_eq!(core.len(), 2);
        assert!(core.iter().all(|e| e.is_deterministic()));
    }

    #[test]
    fn peer_dead_round_is_normalized_out_of_the_core() {
        // The round a survivor notices a cascading hang-up in is real
        // thread timing; two runs of the same seed may differ there.
        let a = EventLog::new();
        a.push(FaultEvent::PeerDead { step: 0, rank: 2, peer: 1, round: 3 });
        let b = EventLog::new();
        b.push(FaultEvent::PeerDead { step: 0, rank: 2, peer: 1, round: 4 });
        assert_eq!(a.deterministic_core(), b.deterministic_core());
        assert_eq!(
            a.deterministic_core(),
            vec![FaultEvent::PeerDead { step: 0, rank: 2, peer: 1, round: 0 }]
        );
    }

    #[test]
    fn canonical_order_is_arrival_independent() {
        let a = EventLog::new();
        a.push(FaultEvent::Degraded { step: 1, dead: vec![2], new_world: 3 });
        a.push(FaultEvent::PeerDead { step: 1, rank: 0, peer: 2, round: 0 });
        let b = EventLog::new();
        b.push(FaultEvent::PeerDead { step: 1, rank: 0, peer: 2, round: 0 });
        b.push(FaultEvent::Degraded { step: 1, dead: vec![2], new_world: 3 });
        assert_eq!(a.deterministic_core(), b.deterministic_core());
    }
}
